//! # `anon-urb`
//!
//! A complete Rust reproduction of Tang, Larrea, Arévalo & Jiménez,
//! *"Implementing Uniform Reliable Broadcast in Anonymous Distributed
//! Systems with Fair Lossy Channels"* (IPPS 2015).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] ([`urb_core`]) — the paper's Algorithm 1 (majority URB) and
//!   Algorithm 2 (quiescent URB with `AΘ`/`AP*`), plus baseline broadcasts;
//! * [`fd`] ([`urb_fd`]) — the anonymous failure detectors (audited oracle
//!   and realistic heartbeat implementations);
//! * [`sim`] ([`urb_sim`]) — the discrete-event simulator, fair-lossy
//!   channels, crash adversaries, URB property checker, scenarios and the
//!   declarative scenario plane (`spec` + the adversarial schedule
//!   library);
//! * [`check`] ([`urb_check`]) — the exploration plane: a bounded
//!   systematic schedule checker with replayable counterexamples;
//! * [`runtime`] ([`urb_runtime`]) — a threaded deployment of the same
//!   state machines;
//! * [`types`] ([`urb_types`]) — shared identifiers, wire format and the
//!   sans-io protocol trait.
//!
//! ## Quick taste
//!
//! ```
//! use anon_urb::prelude::*;
//!
//! // Simulated: 5 anonymous processes, 30% message loss, 4 of 5 crash.
//! // Algorithm 2 still implements URB (Theorem 3 of the paper).
//! let outcome = urb_sim::run(
//!     urb_sim::scenario::lossy_crashy(5, Algorithm::Quiescent, 0.3, 4, 1, 7),
//! );
//! assert!(outcome.all_ok());
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use urb_apps as apps;
pub use urb_check as check;
pub use urb_core as core;
pub use urb_fd as fd;
pub use urb_runtime as runtime;
pub use urb_sim as sim;
pub use urb_types as types;

/// The names most programs want in scope.
pub mod prelude {
    pub use urb_core::{self, Algorithm, MajorityUrb, QuiescentUrb};
    pub use urb_runtime::{self, ClusterConfig, UrbCluster};
    pub use urb_sim::{self, CrashPlan, LossModel, RunOutcome, ScenarioSpec, Schedule, SimConfig};
    pub use urb_types::{AnonProcess, Delivery, Payload, Tag};
}

// Compile and run the README's code blocks as doctests (`cargo test
// --doc`), so the quick-start and library-taste snippets can never drift
// from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Algorithm::Majority.name();
        let _ = Payload::from("x");
    }
}
