//! Offline API-subset shim of
//! [`proptest`](https://crates.io/crates/proptest)
//! (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer/float range strategies, tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`option::of`],
//! [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the values the test's
//!   own assertion message interpolates; it is not minimized.
//! * **Deterministic.** Case generation is seeded from the test's name, so
//!   every run and every CI machine explores the same inputs. Set
//!   `PROPTEST_CASES` to change the per-test case count (default 64).
//!
//! Both trade-offs keep the tests reproducible and the shim small; the
//! real crate can be swapped back in without touching the test files.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;

/// Runner internals used by the [`proptest!`] expansion.
pub mod test_runner {
    /// SplitMix64 — the shim's only RNG. Self-contained so the shim has no
    /// dependencies (not even on the workspace).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test-name string.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            let m = (self.next_u64() as u128).wrapping_mul(bound as u128);
            (m >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (the shim honours `cases`; other fields exist so
/// `..ProptestConfig::default()` update syntax compiles).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Accepted and ignored (no shrinking in the shim).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`], for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (the [`prop_oneof!`] backend).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        // Rejection-free: modulo bias is irrelevant for test generation.
        self.start + (u128::arbitrary(rng) % span)
    }
}

macro_rules! impl_strategy_sint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_sint_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection-size specification: an exact size or a half-open range (the
/// real crate's `SizeRange`, minus the inclusive-range forms).
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.0.clone().generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// `Vec` of values from `element`, length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.sizes.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    /// `BTreeSet` of values from `element`; up to `sizes` draws (duplicates
    /// collapse, as in the real crate's best-effort size handling).
    pub fn btree_set<S>(element: S, sizes: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.sizes.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly four times out of five, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Shim semantics: each function body runs `config.cases` times with
/// deterministically seeded inputs; assertion failures panic immediately
/// (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$attr:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` under the proptest name (the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under the proptest name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u64..20, z in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..20).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn collections_and_tuples(v in crate::collection::vec((any::<bool>(), 0u8..4), 0..10)) {
            prop_assert!(v.len() < 10);
            for (_, small) in v {
                prop_assert!(small < 4);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            (100u32..110).prop_map(|v| v as u64),
        ]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn option_produces_both(samples in crate::collection::vec(crate::option::of(0u8..5), 40..41)) {
            // With 40 draws at 1-in-5 None odds, both variants appear with
            // overwhelming probability under the deterministic seed.
            prop_assert!(samples.iter().any(|s| s.is_none()));
            prop_assert!(samples.iter().any(|s| s.is_some()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_is_honoured(_x in 0u8..2) {
            // Body runs; the case count itself is exercised by compiling
            // the config path. Nothing to assert per-case.
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
