//! Offline shim of `serde_json` (see `vendor/README.md`).
//!
//! Unlike the `serde` shim (whose derives are no-ops), this crate is a
//! *real*, if small, JSON implementation: a [`Value`] model, a conforming
//! recursive-descent parser ([`from_str`]) and a string escaper
//! ([`escape`]) used by the workspace's hand-rolled JSON emitters. The
//! subset intentionally mirrors the real crate's API for these names, so
//! swapping the real dependency back in requires no call-site changes
//! (the workspace never calls the generic `to_string*` entry points).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when this is `null` (also returned by out-of-range [`Index`]).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// A parse error with byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Escapes a string for inclusion in a JSON document (no surrounding
/// quotes). Used by the workspace's hand-rolled emitters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's emitters; map them to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the input.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(
            r#"{"events": [{"time": 7, "kind": "Send", "ok": true}, {"time": 8}], "truncated": false}"#,
        )
        .unwrap();
        assert_eq!(v["events"].as_array().unwrap().len(), 2);
        assert_eq!(v["events"][0]["time"], 7);
        assert_eq!(v["events"][0]["kind"], "Send");
        assert_eq!(v["truncated"], false);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = from_str(r#"[-1.5, 2e3, "a\"b\n", null]"#).unwrap();
        assert_eq!(v[0].as_f64(), Some(-1.5));
        assert_eq!(v[1].as_u64(), Some(2000));
        assert_eq!(v[2], "a\"b\n");
        assert!(v[3].is_null());
    }

    #[test]
    fn escape_roundtrips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(from_str(&doc).unwrap(), nasty);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("123 x").is_err());
        assert!(from_str("truthy").is_err());
    }
}
