//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline `serde` shim.
//!
//! The workspace annotates its data types with serde derives so that the
//! real `serde` can be dropped in the moment the build environment gains
//! registry access. Until then these derives expand to nothing: the
//! annotations compile, and every place that actually needs JSON emits or
//! parses it through the first-party code in the `serde_json` shim and the
//! hand-rolled `to_json` methods. Nothing in the workspace relies on a
//! generated `Serialize`/`Deserialize` implementation.

use proc_macro::TokenStream;

/// Expands to nothing (placeholder for serde's `Serialize` derive).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (placeholder for serde's `Deserialize` derive).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
