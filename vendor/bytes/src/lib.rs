//! Offline API-subset shim of the [`bytes`](https://crates.io/crates/bytes)
//! crate.
//!
//! The build environment of this workspace has no access to a crates
//! registry, so the handful of external dependencies are vendored as
//! first-party subsets exposing exactly the API surface the workspace uses
//! (see `vendor/README.md`). This shim provides:
//!
//! * [`Bytes`] — cheaply clonable, immutable, reference-counted byte
//!   storage, including zero-copy [`Bytes::slice`] sub-views (the wire
//!   codec's shared-payload decode path relies on them);
//! * [`BytesMut`] — an append-only growable buffer that freezes into
//!   [`Bytes`];
//! * [`Buf`] / [`BufMut`] — the cursor traits, implemented for `&[u8]` and
//!   [`BytesMut`] respectively, with the big-endian accessors the wire
//!   codec uses.
//!
//! Semantics (byte order, panics on underflow, content equality) match the
//! real crate for this subset, so swapping the real dependency back in is a
//! one-line manifest change.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable reference-counted bytes. Cloning is `O(1)`, and so is
/// [`Bytes::slice`]: a sub-view shares the same storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            offset: 0,
            len: 0,
        }
    }

    /// Copies a slice into new storage.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let len = data.len();
        Bytes {
            data: Arc::from(data),
            offset: 0,
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view: the returned `Bytes` shares this one's
    /// storage (refcount bump, no byte is copied). Panics when the range
    /// is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(begin <= end, "slice range reversed: {begin} > {end}");
        assert!(end <= self.len, "slice out of bounds: {end} > {}", self.len);
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + begin,
            len: end - begin,
        }
    }

    /// Copies into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Converts into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

/// Read cursor over a byte source. Big-endian accessors, as in the real
/// crate. All getters panic on underflow (matching `bytes`' contract);
/// callers bound-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read-only view of the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        let mut raw = [0u8; 16];
        raw.copy_from_slice(&self.chunk()[..16]);
        self.advance(16);
        u128::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor. Big-endian writers, as in the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u128`.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_u128(u128::MAX - 1);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(rd.get_u128(), u128::MAX - 1);
        assert_eq!(rd.remaining(), 4);
        assert_eq!(rd.chunk(), b"tail");
        rd.advance(4);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_clone_are_by_content() {
        let a = Bytes::copy_from_slice(b"xyz");
        let b = Bytes::from(b"xyz".to_vec());
        assert_eq!(a, b);
        let c = a.clone();
        assert_eq!(c.len(), 3);
        assert_eq!(&*c, b"xyz");
    }

    #[test]
    fn big_endian_layout_matches_to_be_bytes() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(&*buf, &[0, 0, 0, 1]);
    }

    #[test]
    fn slice_is_a_shared_view() {
        let b = Bytes::copy_from_slice(b"hello world");
        let hello = b.slice(0..5);
        let world = b.slice(6..);
        assert_eq!(&*hello, b"hello");
        assert_eq!(&*world, b"world");
        // Sub-views share storage with the parent (refcount, not copy).
        assert_eq!(Arc::strong_count(&b.data), 3);
        // Slicing a slice composes offsets.
        let ell = hello.slice(1..=3);
        assert_eq!(&*ell, b"ell");
        assert_eq!(ell.len(), 3);
        let empty = b.slice(4..4);
        assert!(empty.is_empty());
        assert_eq!(b.slice(..), b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::copy_from_slice(b"abc").slice(1..5);
    }

    #[test]
    fn bytes_mut_reserve_and_capacity() {
        let mut buf = BytesMut::new();
        buf.reserve(100);
        assert!(buf.capacity() >= 100);
        buf.put_slice(b"xy");
        let cap = buf.capacity();
        buf.clear();
        assert_eq!(buf.capacity(), cap, "clear keeps the allocation");
    }
}
