//! Offline API-subset shim of
//! [`criterion`](https://crates.io/crates/criterion)
//! (see `vendor/README.md`).
//!
//! A plain wall-clock timing harness behind criterion's API names, so the
//! workspace's `benches/` files compile and run under `cargo bench`
//! (`harness = false`) without the real dependency. Per benchmark it runs
//! a warm-up, then `sample_size` samples of an adaptively chosen iteration
//! count, and prints `min / mean / max` nanoseconds per iteration plus a
//! throughput line when one was declared.
//!
//! No statistical analysis, outlier rejection, or HTML reports — the
//! numbers are comparative evidence, not publication-grade measurements.
//! Swap the real criterion back in (same manifest line, same bench code)
//! when a registry is available.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state (configuration only, in the shim).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measuring time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            name,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            None,
            &mut f,
        );
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Declared units of work per iteration, for derived throughput output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` sizes its setup batches. Accepted and ignored: the
/// shim sets up one input per iteration.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id.label);
        run_benchmark(
            &name,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Runs one benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id.label);
        run_benchmark(
            &name,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records what to measure.
pub struct Bencher {
    /// Iterations per timed sample (chosen by calibration).
    iters_per_sample: u64,
    /// Collected per-sample durations.
    samples: Vec<Duration>,
    mode: Mode,
}

enum Mode {
    Calibrate,
    Measure,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                self.samples.push(start.elapsed());
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                self.samples.push(start.elapsed());
            }
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        match self.mode {
            Mode::Calibrate => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                self.samples.push(start.elapsed());
            }
            Mode::Measure => {
                let inputs: Vec<I> = (0..self.iters_per_sample).map(|_| setup()).collect();
                let start = Instant::now();
                for input in inputs {
                    black_box(routine(input));
                }
                self.samples.push(start.elapsed());
            }
        }
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibration: time single iterations until the warm-up budget is spent.
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: Mode::Calibrate,
    };
    let warm_start = Instant::now();
    let mut one_iter = Duration::from_nanos(0);
    let mut calibration_runs = 0u64;
    while warm_start.elapsed() < warm_up || calibration_runs < 3 {
        bencher.samples.clear();
        f(&mut bencher);
        if let Some(d) = bencher.samples.last() {
            one_iter = *d;
        }
        calibration_runs += 1;
        if calibration_runs >= 1000 {
            break;
        }
    }
    // Pick iterations per sample so one sample is ≥ ~1/(2·samples) of the
    // measurement budget but at least 1.
    let per_sample_budget = measurement.as_nanos() / (sample_size as u128).max(1) / 2;
    let iters = if one_iter.as_nanos() == 0 {
        1000
    } else {
        (per_sample_budget / one_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
    };

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
        mode: Mode::Measure,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;

    println!(
        "{name:<44} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        sample_size,
        iters
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Bytes(b) => (b as f64, "MiB/s"),
            Throughput::Elements(e) => (e as f64, "Melem/s"),
        };
        if mean > 0.0 {
            let per_sec = amount * 1e9 / mean;
            let scaled = match t {
                Throughput::Bytes(_) => per_sec / (1024.0 * 1024.0),
                Throughput::Elements(_) => per_sec / 1e6,
            };
            println!("{:<44} thrpt: {scaled:.1} {unit}", "");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the shim
            // runs everything unconditionally and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Bytes(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        tiny_bench(&mut c);
    }
}
