//! Offline API-subset shim of
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel)
//! (see `vendor/README.md`).
//!
//! A multi-producer multi-consumer FIFO channel built on
//! `Mutex<VecDeque>` + `Condvar`. The subset covers what the workspace
//! uses: [`unbounded`], [`bounded`], clonable [`Sender`]/[`Receiver`],
//! blocking `recv`, non-blocking `try_send`, `try_recv`, `recv_timeout`,
//! and disconnection
//! semantics (recv fails once all senders are gone *and* the queue is
//! drained; send fails once all receivers are gone). The `select!` macro
//! is deliberately not provided — the runtime's node loop multiplexes by
//! funnelling its event sources into one channel instead.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<Shared<T>>,
    /// Signalled when a message is pushed or the last sender leaves.
    readable: Condvar,
    /// Signalled when a message is popped or the last receiver leaves
    /// (bounded channels: senders block on this).
    writable: Condvar,
    capacity: Option<usize>,
}

struct Shared<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Sending half of a channel. Clonable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of a channel. Clonable; clones *share* the queue (each
/// message is consumed by exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone. The
/// unsent message is returned inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`]. The unsent message is returned
/// inside either variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is full right now.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message ready right now.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` in-flight messages; sends block
/// while full. `cap = 0` is treated as capacity 1 (the shim does not
/// implement rendezvous channels; the workspace never uses `bounded(0)`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(Shared {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, Shared<T>> {
    // The shim holds the lock only for queue operations that cannot panic,
    // so poisoning is unreachable; recover defensively anyway.
    inner.queue.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut shared = lock(&self.inner);
        loop {
            if shared.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if shared.items.len() >= cap => {
                    shared = self
                        .inner
                        .writable
                        .wait(shared)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        shared.items.push_back(value);
        drop(shared);
        self.inner.readable.notify_one();
        Ok(())
    }

    /// Sends a message without blocking: a full bounded channel returns
    /// [`TrySendError::Full`] instead of waiting for a pop.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut shared = lock(&self.inner);
        if shared.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.inner.capacity {
            if shared.items.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        shared.items.push_back(value);
        drop(shared);
        self.inner.readable.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.inner).senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut shared = lock(&self.inner);
        shared.senders -= 1;
        let last = shared.senders == 0;
        drop(shared);
        if last {
            self.inner.readable.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut shared = lock(&self.inner);
        loop {
            if let Some(v) = shared.items.pop_front() {
                drop(shared);
                self.inner.writable.notify_one();
                return Ok(v);
            }
            if shared.senders == 0 {
                return Err(RecvError);
            }
            shared = self
                .inner
                .readable
                .wait(shared)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns a ready message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut shared = lock(&self.inner);
        if let Some(v) = shared.items.pop_front() {
            drop(shared);
            self.inner.writable.notify_one();
            return Ok(v);
        }
        if shared.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut shared = lock(&self.inner);
        loop {
            if let Some(v) = shared.items.pop_front() {
                drop(shared);
                self.inner.writable.notify_one();
                return Ok(v);
            }
            if shared.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .inner
                .readable
                .wait_timeout(shared, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            shared = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.inner).receivers += 1;
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut shared = lock(&self.inner);
        shared.receivers -= 1;
        let last = shared.receivers == 0;
        drop(shared);
        if last {
            self.inner.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
    }

    #[test]
    fn cloned_receivers_compete_for_messages() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn bounded_send_blocks_until_pop() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }

    #[test]
    fn cross_thread_fanout() {
        let (tx, rx) = unbounded::<usize>();
        let mut handles = Vec::new();
        for i in 0..4 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for j in 0..100 {
                    tx.send(i * 100 + j).unwrap();
                }
            }));
        }
        drop(tx);
        let mut seen = Vec::new();
        while let Ok(v) = rx.recv() {
            seen.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.len(), 400);
    }
}
