//! Offline shim of the `serde` facade (see `vendor/README.md`).
//!
//! Exposes the `Serialize` / `Deserialize` derive names so that the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without the real dependency. The derives expand to nothing; actual JSON
//! I/O in this workspace goes through hand-rolled emitters and the
//! first-party parser in the `serde_json` shim. Swap this crate for the
//! real `serde` (same name, same import paths) once a registry is
//! available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
