//! Offline API-subset shim of
//! [`parking_lot`](https://crates.io/crates/parking_lot)
//! (see `vendor/README.md`).
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's non-poisoning
//! API (`lock()` / `read()` / `write()` return guards directly). A
//! poisoned std lock — only possible if a holder panicked — is recovered
//! rather than propagated, which matches parking_lot's behaviour of not
//! having poisoning at all.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
