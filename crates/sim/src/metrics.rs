//! Run-wide measurement: traffic counters, latency records, quiescence
//! detection and state-size sampling.
//!
//! Everything the experiment suite (E4–E10) reports is collected here, in
//! one pass, while the simulation runs — no post-hoc trace scraping.

use serde::Serialize;
use urb_types::{Payload, ProcessStats, Tag, TopicId, WireKind};

/// One URB-broadcast invocation, as observed by the driver.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct BroadcastRecord {
    /// Broadcasting process.
    pub pid: usize,
    /// The URB instance (topic) the broadcast went to ([`TopicId::ZERO`]
    /// on single-topic runs).
    pub topic: TopicId,
    /// Tag the protocol assigned.
    pub tag: Tag,
    /// Invocation time.
    pub time: u64,
    /// The broadcast application message (cheap refcounted clone).
    pub payload: Payload,
}

/// One URB-delivery, as observed by the driver.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DeliveryRecord {
    /// Delivering process.
    pub pid: usize,
    /// The URB instance (topic) that delivered ([`TopicId::ZERO`] on
    /// single-topic runs).
    pub topic: TopicId,
    /// Tag of the delivered message.
    pub tag: Tag,
    /// Delivery time.
    pub time: u64,
    /// The paper's fast-delivery case (ACK majority before the MSG copy).
    pub fast: bool,
    /// The delivered application message.
    pub payload: Payload,
}

/// A timed sample of every process's state sizes (experiment E9).
#[derive(Clone, Debug, Serialize)]
pub struct StatsSample {
    /// Sample time.
    pub time: u64,
    /// Per-process protocol state sizes.
    pub per_process: Vec<ProcessStats>,
}

/// All measurements for one simulated run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Metrics {
    /// Transmissions attempted, per message kind (one broadcast to `n`
    /// processes counts `n` transmissions).
    pub sent: [u64; 3],
    /// Transmissions delivered, per kind.
    pub received: [u64; 3],
    /// Transmissions dropped by channels, per kind.
    pub dropped: [u64; 3],
    /// Protocol transmissions (MSG + ACK, heartbeats excluded) per time
    /// window — the quiescence curve of experiment E4.
    pub sends_per_window: Vec<u64>,
    /// Width of the histogram windows, in ticks.
    pub window: u64,
    /// Every URB-broadcast.
    pub broadcasts: Vec<BroadcastRecord>,
    /// Every URB-delivery.
    pub deliveries: Vec<DeliveryRecord>,
    /// Periodic state-size samples (empty unless sampling was enabled).
    pub stats_samples: Vec<StatsSample>,
    /// Time of the last MSG/ACK transmission — "the protocol went silent
    /// at" (quiescence instant, when the run ended quiescent).
    pub last_protocol_send: u64,
    /// Simulated time at which the run ended.
    pub ended_at: u64,
    /// True when the run ended with every correct process quiescent and no
    /// protocol messages in flight.
    pub quiescent_at_end: bool,
    /// FNV-1a hash over the full event sequence (determinism checks).
    pub trace_hash: u64,
    /// Frames offered to channels: one per `(transmitting step,
    /// destination)` pair. On the multiplexed topic plane a multi-topic
    /// step still counts **one** frame per destination; with
    /// `mux_frames = false` (the E19 A/B arm) each topic pays its own
    /// frame. Message counts above are unaffected — this is the routing
    /// overhead the mux plane amortizes (DESIGN.md §12).
    pub frames_sent: u64,
}

impl Metrics {
    /// New metrics collector with the given histogram window (ticks).
    pub fn new(window: u64) -> Self {
        Metrics {
            window: window.max(1),
            ..Metrics::default()
        }
    }

    /// Records one transmission attempt.
    pub fn on_send(&mut self, kind: WireKind, time: u64) {
        self.sent[kind.index()] += 1;
        if kind != WireKind::Heartbeat {
            let w = (time / self.window) as usize;
            if self.sends_per_window.len() <= w {
                self.sends_per_window.resize(w + 1, 0);
            }
            self.sends_per_window[w] += 1;
            self.last_protocol_send = self.last_protocol_send.max(time);
        }
    }

    /// Records one successful channel delivery.
    pub fn on_receive(&mut self, kind: WireKind) {
        self.received[kind.index()] += 1;
    }

    /// Records one channel drop.
    pub fn on_drop(&mut self, kind: WireKind) {
        self.dropped[kind.index()] += 1;
    }

    /// Records one frame offered to a channel (per destination).
    pub fn on_frame(&mut self) {
        self.frames_sent += 1;
    }

    /// Topics that appear in this run's broadcast/delivery records,
    /// ascending and deduplicated ([`TopicId::ZERO`] alone on
    /// single-topic runs with traffic).
    pub fn topics(&self) -> Vec<TopicId> {
        let mut topics: Vec<TopicId> = self
            .broadcasts
            .iter()
            .map(|b| b.topic)
            .chain(self.deliveries.iter().map(|d| d.topic))
            .collect();
        topics.sort_unstable();
        topics.dedup();
        topics
    }

    /// Number of URB-deliveries on one topic.
    pub fn deliveries_for(&self, topic: TopicId) -> usize {
        self.deliveries.iter().filter(|d| d.topic == topic).count()
    }

    /// Folds an event into the determinism hash.
    pub fn hash_event(&mut self, time: u64, discriminant: u64, detail: u64) {
        let mut h = self.trace_hash ^ 0xcbf2_9ce4_8422_2325;
        for word in [time, discriminant, detail] {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        self.trace_hash = h;
    }

    /// Total MSG + ACK transmissions (the protocol's message complexity).
    pub fn protocol_sends(&self) -> u64 {
        self.sent[WireKind::Msg.index()] + self.sent[WireKind::Ack.index()]
    }

    /// Delivery latency records: for every `(broadcast, delivering process)`
    /// pair, the ticks from broadcast to that delivery.
    pub fn latencies(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.deliveries.len());
        for d in &self.deliveries {
            if let Some(b) = self.broadcasts.iter().find(|b| b.tag == d.tag) {
                out.push(d.time.saturating_sub(b.time));
            }
        }
        out
    }

    /// Percentile (0–100) of a sorted copy of `latencies()`. `None` when no
    /// deliveries happened.
    pub fn latency_percentile(&self, pct: f64) -> Option<u64> {
        let mut lat = self.latencies();
        if lat.is_empty() {
            return None;
        }
        lat.sort_unstable();
        let rank = ((pct / 100.0) * (lat.len() - 1) as f64).round() as usize;
        Some(lat[rank.min(lat.len() - 1)])
    }

    /// Fraction of deliveries with the fast flag (experiment E10).
    pub fn fast_delivery_fraction(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries.iter().filter(|d| d.fast).count() as f64 / self.deliveries.len() as f64
    }

    /// Protocol sends in windows after `time` — "residual traffic", used by
    /// E4/E7 to show Algorithm 1 keeps chattering while Algorithm 2 stops.
    pub fn sends_after(&self, time: u64) -> u64 {
        let first = (time / self.window) as usize;
        self.sends_per_window.iter().skip(first).copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_histogram_buckets_by_window() {
        let mut m = Metrics::new(100);
        m.on_send(WireKind::Msg, 5);
        m.on_send(WireKind::Ack, 150);
        m.on_send(WireKind::Ack, 199);
        m.on_send(WireKind::Msg, 350);
        assert_eq!(m.sends_per_window, vec![1, 2, 0, 1]);
        assert_eq!(m.last_protocol_send, 350);
        assert_eq!(m.protocol_sends(), 4);
    }

    #[test]
    fn heartbeats_do_not_count_as_protocol_traffic() {
        let mut m = Metrics::new(10);
        m.on_send(WireKind::Heartbeat, 5);
        assert_eq!(m.protocol_sends(), 0);
        assert!(m.sends_per_window.is_empty());
        assert_eq!(m.last_protocol_send, 0);
        assert_eq!(m.sent[WireKind::Heartbeat.index()], 1);
    }

    #[test]
    fn latencies_pair_deliveries_with_broadcasts() {
        let mut m = Metrics::new(10);
        m.broadcasts.push(BroadcastRecord {
            pid: 0,
            topic: TopicId::ZERO,
            tag: Tag(1),
            time: 100,
            payload: Payload::empty(),
        });
        for (pid, t) in [(0usize, 120u64), (1, 150), (2, 130)] {
            m.deliveries.push(DeliveryRecord {
                pid,
                topic: TopicId::ZERO,
                tag: Tag(1),
                time: t,
                fast: pid == 1,
                payload: Payload::empty(),
            });
        }
        let mut lat = m.latencies();
        lat.sort_unstable();
        assert_eq!(lat, vec![20, 30, 50]);
        assert_eq!(m.latency_percentile(0.0), Some(20));
        assert_eq!(m.latency_percentile(100.0), Some(50));
        assert_eq!(m.latency_percentile(50.0), Some(30));
        assert!((m.fast_delivery_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_latencies() {
        let m = Metrics::new(10);
        assert!(m.latencies().is_empty());
        assert_eq!(m.latency_percentile(50.0), None);
        assert_eq!(m.fast_delivery_fraction(), 0.0);
    }

    #[test]
    fn sends_after_sums_tail_windows() {
        let mut m = Metrics::new(100);
        for t in [10u64, 110, 210, 310] {
            m.on_send(WireKind::Msg, t);
        }
        assert_eq!(m.sends_after(0), 4);
        assert_eq!(m.sends_after(200), 2);
        assert_eq!(m.sends_after(400), 0);
    }

    #[test]
    fn hash_event_changes_with_inputs() {
        let mut a = Metrics::new(1);
        let mut b = Metrics::new(1);
        a.hash_event(1, 2, 3);
        b.hash_event(1, 2, 4);
        assert_ne!(a.trace_hash, b.trace_hash);
        let mut c = Metrics::new(1);
        c.hash_event(1, 2, 3);
        assert_eq!(a.trace_hash, c.trace_hash);
    }
}
