//! The simulation driver: executes one run of a protocol over the anonymous
//! fair-lossy network.
//!
//! A run is a pure function of its [`SimConfig`] (including the seed):
//! processes tick with jittered phases, every transmission gets a fate and a
//! delay from the channel models, crashes fire per the [`CrashPlan`], and
//! the failure-detector service is consulted before every protocol step.
//! The driver enforces the anonymity contract structurally — the protocol
//! only ever sees [`urb_types::WireMessage`]s and [`urb_types::FdSnapshot`]s,
//! never process indices or the global clock.
//!
//! Protocol stepping itself lives in `urb-engine`
//! ([`urb_engine::TopicEngine`] / `drive_step`): the simulator is an
//! *adapter* that owns scheduling, the channel mesh, crash injection and
//! measurement, and funnels every step through the same engine code the
//! threaded runtime and the unit-test harness execute. Each node runs one
//! protocol instance per topic (DESIGN.md §12); outbound traffic moves on
//! the multiplexed message plane — everything one step emits, across
//! every topic, travels as a single topic-tagged frame per destination,
//! with loss still decided per message (DESIGN.md D8).
//!
//! The outcome bundles the raw metrics, the URB property-checker report,
//! the failure-detector audit (oracle runs) and quiescence information, so
//! every experiment gets its full verdict from a single call to [`run`].

use crate::channel::{ChannelMatrix, DelayModel, LossModel};
use crate::checker::{check_urb, check_urb_per_topics, CheckReport, TopicReport};
use crate::crash::{CrashPlan, CrashRule};
use crate::event::{Event, EventQueue, SchedulerPolicy};
use crate::metrics::{BroadcastRecord, DeliveryRecord, Metrics, StatsSample};
use crate::trace::{Trace, TraceConfig, TraceRecorder};
use urb_core::Algorithm;
use urb_engine::{EngineCounters, StepBuffers, StepInput, TopicEngine};
use urb_fd::{FdService, HeartbeatConfig, HeartbeatService, NoFd, OracleConfig, OracleFd};
use urb_types::{
    Delivery, MemoryConfig, MuxPool, Payload, ProcessStats, RandomSource, SplitMix64, Tag, TopicId,
    WireKind, WireMessage, Xoshiro256,
};

/// Which failure-detector implementation a run uses.
#[derive(Clone, Copy, Debug)]
pub enum FdKind {
    /// No detector (Algorithm 1 and the baselines).
    None,
    /// The crash-schedule-aware oracle (faithful `AΘ`/`AP*`).
    Oracle(OracleConfig),
    /// The realistic heartbeat estimator (E8).
    Heartbeat(HeartbeatConfig),
}

/// One planned `URB_broadcast` invocation.
#[derive(Clone, Debug)]
pub struct PlannedBroadcast {
    /// Invocation time.
    pub time: u64,
    /// Invoking process.
    pub pid: usize,
    /// Target URB instance ([`TopicId::ZERO`] on single-topic runs; must
    /// be `< SimConfig::topics` or created by a [`TopicEventCfg`] — the
    /// invocation is refused unless the topic is live at `time`).
    pub topic: TopicId,
    /// The application message.
    pub payload: Payload,
}

/// A planned topic-lifecycle change (DESIGN.md §15). In the simulator,
/// lifecycle is deterministic **global configuration** — like crash plans:
/// the event applies at every non-crashed process at `time`, atomically
/// from the run's point of view. The wire-level [`urb_types::TopicControl`]
/// gossip (where nodes learn lifecycle from each other's frames, with
/// races) is exercised by the engine tests and the runtime/daemon plane;
/// keeping the simulator's plan global costs no randomness, which is what
/// pins static runs byte-identical.
#[derive(Clone, Debug)]
pub struct TopicEventCfg {
    /// Instant the change applies.
    pub time: u64,
    /// What changes.
    pub action: TopicAction,
}

/// The two lifecycle transitions a plan can schedule.
#[derive(Clone, Copy, Debug)]
pub enum TopicAction {
    /// Bring a topic live (lazy instantiation): every process creates a
    /// fresh protocol instance for `topic`. Idempotent — creating an
    /// already-live topic is a no-op. A previously retired id is
    /// re-created clean.
    Create {
        /// The topic to instantiate.
        topic: TopicId,
        /// Algorithm for the new instance; `None` inherits the run's
        /// [`SimConfig::algorithm`].
        algorithm: Option<Algorithm>,
    },
    /// Retire a live topic: it stops accepting broadcasts, drains
    /// in-flight tags (retransmitting as usual) until quiescent or the
    /// drain budget expires, then its state is compacted and freed
    /// ([`urb_engine::TopicEngine::reap_drained`]).
    Retire {
        /// The topic to retire.
        topic: TopicId,
    },
}

impl TopicAction {
    /// The topic this action touches.
    pub fn topic(&self) -> TopicId {
        match *self {
            TopicAction::Create { topic, .. } | TopicAction::Retire { topic } => topic,
        }
    }
}

/// A directed-link loss override (partition adversaries).
#[derive(Clone, Copy, Debug)]
pub struct LinkOverride {
    /// Sender side of the link.
    pub from: usize,
    /// Receiver side of the link.
    pub to: usize,
    /// Replacement loss model.
    pub loss: LossModel,
}

/// A directed-link delay override (targeted-delay adversaries): the link
/// keeps its loss model but draws arrival delays from its own
/// [`DelayModel`] instead of the mesh-wide one. The scenario plane's
/// `targeted-delay` schedule compiles to these.
#[derive(Clone, Copy, Debug)]
pub struct DelayOverride {
    /// Sender side of the link.
    pub from: usize,
    /// Receiver side of the link.
    pub to: usize,
    /// Replacement delay model.
    pub delay: DelayModel,
}

/// A temporary total outage of one directed link: every copy sent on
/// `from → to` during `[start, end)` is lost. Unlike [`LinkOverride`] this
/// is time-bounded, which makes *healing* partitions expressible — the
/// fairness axiom is suspended only during the window, so URB must still
/// complete after the heal (tested in `partition_heals_and_urb_completes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blackout {
    /// Sender side of the link.
    pub from: usize,
    /// Receiver side of the link.
    pub to: usize,
    /// First instant of the outage.
    pub start: u64,
    /// First instant after the outage.
    pub end: u64,
}

impl Blackout {
    /// A full bidirectional cut between two sets of processes over a time
    /// window (both directions of every cross link).
    pub fn partition(a: &[usize], b: &[usize], start: u64, end: u64) -> Vec<Blackout> {
        let mut v = Vec::with_capacity(a.len() * b.len() * 2);
        for &x in a {
            for &y in b {
                v.push(Blackout {
                    from: x,
                    to: y,
                    start,
                    end,
                });
                v.push(Blackout {
                    from: y,
                    to: x,
                    start,
                    end,
                });
            }
        }
        v
    }

    /// Does this blackout swallow a copy on `from → to` at `time`?
    pub fn covers(&self, from: usize, to: usize, time: u64) -> bool {
        self.from == from && self.to == to && (self.start..self.end).contains(&time)
    }
}

/// Full description of one simulated run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// System size `n`.
    pub n: usize,
    /// Protocol under test.
    pub algorithm: Algorithm,
    /// Root seed — everything random derives from it.
    pub seed: u64,
    /// Loss model applied to every non-self link (unless overridden).
    pub loss: LossModel,
    /// Delay model for all links.
    pub delay: DelayModel,
    /// Per-link loss overrides.
    pub link_overrides: Vec<LinkOverride>,
    /// Per-link delay overrides (straggler links).
    pub delay_overrides: Vec<DelayOverride>,
    /// Time-windowed total outages (healing partitions).
    pub blackouts: Vec<Blackout>,
    /// Task-1 sweep period, in ticks.
    pub tick_interval: u64,
    /// Uniform jitter added to each tick period (de-synchronizes sweeps).
    pub tick_jitter: u64,
    /// Hard horizon: the run stops at this simulated time.
    pub max_time: u64,
    /// Failure-detector implementation.
    pub fd: FdKind,
    /// Crash adversary.
    pub crashes: CrashPlan,
    /// Application workload.
    pub broadcasts: Vec<PlannedBroadcast>,
    /// State-size sampling period (0 = off). Experiment E9.
    pub stats_interval: u64,
    /// Histogram window for the quiescence curve (E4).
    pub window: u64,
    /// Stop as soon as the system is quiescent (all planned broadcasts
    /// issued, every correct process quiescent, no protocol messages in
    /// flight).
    pub stop_on_quiescence: bool,
    /// Stop as soon as every plan-correct process has delivered every
    /// broadcast message. Essential for bounding Algorithm-1 runs (which
    /// never quiesce) in correctness grids: once full delivery is reached,
    /// all three URB properties are decided.
    pub stop_on_full_delivery: bool,
    /// Event-trace recording policy (off by default).
    pub trace: TraceConfig,
    /// How same-instant events are ordered (the scheduler injection point,
    /// DESIGN.md §11). [`SchedulerPolicy::Fifo`] reproduces the classic
    /// fixed event-queue order byte for byte; the exploration plane and
    /// schedule-sensitivity tests swap in seeded tie shuffles.
    pub scheduler: SchedulerPolicy,
    /// Number of concurrent URB instances (topics) per node (DESIGN.md
    /// §12). Every node runs one protocol instance per topic, all topics
    /// share the channel mesh, and a node's step output travels as one
    /// multiplexed frame. `1` (the default) is byte-identical to the
    /// pre-topic simulator.
    pub topics: u32,
    /// Whether a multi-topic step's output travels as **one** multiplexed
    /// frame (`true`, the default) or as one frame per topic (`false` —
    /// the E19 A/B arm measuring what multiplexing saves). Message-level
    /// behaviour (loss, ordering within a topic, verdicts) is identical
    /// either way; only `Metrics::frames_sent` and event-queue granularity
    /// differ.
    pub mux_frames: bool,
    /// Planned topic-lifecycle events (DESIGN.md §15), applied in time
    /// order at every non-crashed process. Empty (the default) keeps the
    /// run byte-identical to the static-topic simulator: the tick sweep
    /// visits exactly the configured `0..topics` directory, no drain
    /// bookkeeping runs, and no extra randomness is drawn.
    pub topic_events: Vec<TopicEventCfg>,
    /// Drain budget for retiring topics: how many Task-1 sweeps a draining
    /// instance may survive without reaching quiescence before it is
    /// reaped anyway (state compacted and freed). Only consulted when
    /// `topic_events` is non-empty.
    pub drain_ticks: u32,
    /// Bounded-memory mode (DESIGN.md §14): when set, every engine runs
    /// with this compaction configuration and one compaction sweep fires
    /// after each node tick. `None` (the default) keeps the simulator
    /// byte-identical to the pre-memory-plane driver — no extra RNG
    /// draws, no state reclaim, no counter movement.
    pub memory: Option<MemoryConfig>,
}

impl SimConfig {
    /// A sensible default configuration: `n` processes, no loss, no crashes,
    /// one broadcast from process 0.
    pub fn new(n: usize, algorithm: Algorithm) -> Self {
        SimConfig {
            n,
            algorithm,
            seed: 1,
            loss: LossModel::None,
            delay: DelayModel::default(),
            link_overrides: Vec::new(),
            delay_overrides: Vec::new(),
            blackouts: Vec::new(),
            tick_interval: 10,
            tick_jitter: 3,
            max_time: 100_000,
            fd: if algorithm.needs_fd() {
                FdKind::Oracle(OracleConfig::default())
            } else {
                FdKind::None
            },
            crashes: CrashPlan::none(n),
            broadcasts: vec![PlannedBroadcast {
                time: 10,
                pid: 0,
                topic: TopicId::ZERO,
                payload: Payload::from("m0"),
            }],
            stats_interval: 0,
            window: 1_000,
            stop_on_quiescence: true,
            stop_on_full_delivery: false,
            trace: TraceConfig::disabled(),
            scheduler: SchedulerPolicy::Fifo,
            topics: 1,
            mux_frames: true,
            topic_events: Vec::new(),
            drain_ticks: urb_engine::DEFAULT_DRAIN_LIMIT,
            memory: None,
        }
    }

    /// Schedules a topic-lifecycle event (builder style).
    pub fn topic_event(mut self, time: u64, action: TopicAction) -> Self {
        self.topic_events.push(TopicEventCfg { time, action });
        self
    }

    /// Sets the drain budget for retiring topics (builder style).
    pub fn drain_ticks(mut self, ticks: u32) -> Self {
        self.drain_ticks = ticks;
        self
    }

    /// Switches the run into bounded-memory mode (builder style).
    pub fn memory(mut self, cfg: MemoryConfig) -> Self {
        self.memory = Some(cfg);
        self
    }

    /// Sets the number of concurrent URB instances (builder style).
    pub fn topics(mut self, topics: u32) -> Self {
        self.topics = topics.max(1);
        self
    }

    /// Sets the tie-order scheduler policy (builder style).
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = policy;
        self
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the uniform loss model.
    pub fn loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the crash plan.
    pub fn crashes(mut self, plan: CrashPlan) -> Self {
        self.crashes = plan;
        self
    }

    /// Replaces the workload with `k` broadcasts from round-robin senders,
    /// spaced `spacing` ticks apart starting at t=10.
    pub fn workload(mut self, k: usize, spacing: u64) -> Self {
        self.broadcasts = (0..k)
            .map(|i| PlannedBroadcast {
                time: 10 + i as u64 * spacing,
                pid: i % self.n,
                topic: TopicId::ZERO,
                payload: Payload::from(format!("m{i}").as_str()),
            })
            .collect();
        self
    }

    /// Replaces the workload with `k` broadcasts round-robined across both
    /// senders **and** this config's topics, spaced `spacing` ticks apart
    /// (the multi-topic twin of [`SimConfig::workload`]; with `topics = 1`
    /// it is identical to it).
    ///
    /// Reads the **current** topic count, so call [`SimConfig::topics`]
    /// *first* — `cfg.topics(4).workload_topics(8, 50)`, never the other
    /// way around (the reversed order would silently plan a single-topic
    /// workload next to three idle instances; [`run`] asserts against
    /// out-of-range topics but cannot detect that inversion).
    pub fn workload_topics(mut self, k: usize, spacing: u64) -> Self {
        let topics = self.topics.max(1);
        self.broadcasts = (0..k)
            .map(|i| PlannedBroadcast {
                time: 10 + i as u64 * spacing,
                pid: i % self.n,
                topic: TopicId(i as u32 % topics),
                payload: Payload::from(format!("m{i}").as_str()),
            })
            .collect();
        self
    }

    /// Sets the horizon.
    pub fn max_time(mut self, t: u64) -> Self {
        self.max_time = t;
        self
    }
}

/// Everything observed in one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// System size.
    pub n: usize,
    /// Name of the algorithm that ran.
    pub algorithm: &'static str,
    /// `correct[i]` — process `i` was *declared correct by the crash plan*.
    /// (A process the adversary marked faulty counts as faulty even if the
    /// run ended before its crash fired: "eventually" properties bind only
    /// plan-correct processes; see `checker` module docs.)
    pub correct: Vec<bool>,
    /// Raw measurements.
    pub metrics: Metrics,
    /// URB property verdicts over the whole run (tags are globally
    /// unique, so the union of all topics is itself checkable; on a
    /// single-topic run this is exactly the pre-topic report).
    pub report: CheckReport,
    /// Per-topic URB verdicts (DESIGN.md §12): one entry per topic that
    /// carried traffic, ascending; exactly one topic-0 entry on
    /// single-topic runs.
    pub per_topic: Vec<TopicReport>,
    /// Final per-process state sizes.
    pub final_stats: Vec<ProcessStats>,
    /// Final per-process engine counters (steps, deliveries, compaction
    /// totals — all zero compactions unless [`SimConfig::memory`] was set).
    pub counters: Vec<EngineCounters>,
    /// Oracle-audit result (`None` for non-oracle runs or when dynamic
    /// crash triggers never resolved).
    pub fd_audit: Option<Result<(), String>>,
    /// True when the run ended quiescent (see [`SimConfig::stop_on_quiescence`]).
    pub quiescent: bool,
    /// Instant of the last protocol (MSG/ACK) transmission.
    pub last_protocol_send: u64,
    /// Recorded event trace (empty unless [`SimConfig::trace`] enabled it).
    pub trace: Trace,
    /// Counters of the routed-sub-batch vector pool (DESIGN.md §10): in
    /// steady state `created` plateaus while `recycled` tracks routing
    /// volume — the no-allocation claim, observable per run.
    pub batch_pool: urb_types::PoolStats,
}

impl RunOutcome {
    /// Tags delivered by process `pid`.
    pub fn delivered_set(&self, pid: usize) -> std::collections::BTreeSet<Tag> {
        self.metrics
            .deliveries
            .iter()
            .filter(|d| d.pid == pid)
            .map(|d| d.tag)
            .collect()
    }

    /// Tags delivered by process `pid` on one topic.
    pub fn delivered_set_for(&self, pid: usize, topic: TopicId) -> std::collections::BTreeSet<Tag> {
        self.metrics
            .deliveries
            .iter()
            .filter(|d| d.pid == pid && d.topic == topic)
            .map(|d| d.tag)
            .collect()
    }

    /// Every per-topic verdict holds (and the global report, and the FD
    /// audit where applicable).
    pub fn all_topics_ok(&self) -> bool {
        self.all_ok() && self.per_topic.iter().all(|t| t.report.all_ok())
    }

    /// All URB properties hold and (for oracle runs) the detector audit
    /// passed.
    pub fn all_ok(&self) -> bool {
        self.report.all_ok() && !matches!(&self.fd_audit, Some(Err(_)))
    }

    /// Total topic instances reclaimed across all processes (the
    /// lifecycle plane's state-reclamation proof, DESIGN.md §15): a
    /// retire applied at `k` live processes eventually counts `k` here.
    /// Zero on static runs.
    pub fn topics_reclaimed(&self) -> u64 {
        self.counters.iter().map(|c| c.topics_reclaimed).sum()
    }
}

struct Runner {
    config: SimConfig,
    /// One topic engine per process: the shared per-node driving layer
    /// (`urb-engine`) that the runtime and the harness also step through —
    /// one protocol instance per topic, sharing the node's RNG stream.
    engines: Vec<TopicEngine>,
    /// Reusable step buffers (cleared by every step; zero steady-state
    /// allocation on the hot path).
    scratch: StepBuffers,
    /// Reusable per-link batch verdicts.
    verdicts: Vec<bool>,
    /// Reusable failure-detector outbox (heartbeat traffic, topic-less —
    /// tagged [`TopicId::ZERO`] on the wire).
    fd_out: Vec<WireMessage>,
    /// Recycled topic-tagged entry vectors for routed multiplexed
    /// sub-batches (DESIGN.md §10/§12): every `Deliver` event's entry list
    /// is drawn from and returned to this pool, so steady-state routing
    /// allocates no vectors.
    batches: MuxPool,
    tick_rng: SplitMix64,
    channels: ChannelMatrix,
    fd: Box<dyn FdService>,
    oracle_audit_handle: bool,
    crashed: Vec<bool>,
    crash_times: Vec<Option<u64>>,
    crash_armed: Vec<bool>,
    queue: EventQueue,
    /// Tie-breaking stream of the scheduler policy (`None` = FIFO).
    tie_rng: Option<SplitMix64>,
    metrics: Metrics,
    /// Protocol (non-heartbeat) deliveries currently in flight.
    inflight_protocol: usize,
    /// Client broadcasts not yet executed.
    pending_broadcasts: usize,
    /// Topic-lifecycle events not yet applied (quiescence must wait for
    /// them — a pending retire is work the run still owes).
    pending_topic_events: usize,
    /// Reusable per-tick sweep directory (the node's current instance
    /// topics — zero steady-state allocation, like the other scratch).
    sweep: Vec<TopicId>,
    /// Distinct-tag delivery count per process (stop_on_full_delivery).
    deliveries_per_pid: Vec<usize>,
    tracer: TraceRecorder,
    now: u64,
}

/// Executes one run. See the module docs.
pub fn run(config: SimConfig) -> RunOutcome {
    let n = config.n;
    assert!(n >= 1);
    assert_eq!(config.crashes.n(), n, "crash plan size mismatch");
    let topics = config.topics.max(1);
    let dynamic: std::collections::BTreeSet<TopicId> = config
        .topic_events
        .iter()
        .filter_map(|e| match e.action {
            TopicAction::Create { topic, .. } => Some(topic),
            TopicAction::Retire { .. } => None,
        })
        .collect();
    for b in &config.broadcasts {
        assert!(
            b.topic.0 < topics || dynamic.contains(&b.topic),
            "broadcast targets topic {} but the run has {} topic(s) and no create event for it",
            b.topic,
            topics
        );
    }
    let root = Xoshiro256::new(config.seed);

    let mut channels = ChannelMatrix::uniform(n, config.loss, config.delay, &root);
    for ov in &config.link_overrides {
        channels.override_links(&[(ov.from, ov.to)], ov.loss);
    }
    for ov in &config.delay_overrides {
        channels.override_delay(ov.from, ov.to, ov.delay);
    }

    let seed_mix = SplitMix64::new(config.seed ^ 0x5EED_0F00_D000_0001);
    let mut engines: Vec<TopicEngine> = (0..n)
        .map(|i| {
            TopicEngine::new(
                (0..topics)
                    .map(|_| config.algorithm.instantiate(n))
                    .collect(),
                seed_mix.split(i as u64),
            )
        })
        .collect();
    if let Some(mem) = config.memory {
        for e in &mut engines {
            e.configure_memory(mem);
        }
    }
    for e in &mut engines {
        e.set_drain_limit(config.drain_ticks);
    }
    let tick_rng = seed_mix.split(0xFFFF);

    let (fd, oracle_audit_handle): (Box<dyn FdService>, bool) = match config.fd {
        FdKind::None => (Box::new(NoFd), false),
        FdKind::Oracle(cfg) => (
            Box::new(OracleFd::new(
                config.crashes.static_times(),
                config.seed,
                cfg,
            )),
            true,
        ),
        FdKind::Heartbeat(cfg) => {
            let (svc, _labels) = HeartbeatService::new(n, config.seed, cfg);
            (Box::new(svc), false)
        }
    };

    let mut runner = Runner {
        engines,
        scratch: StepBuffers::new(),
        verdicts: Vec::new(),
        fd_out: Vec::new(),
        // Retention sized to in-flight peaks: every scheduled Deliver event
        // holds one pooled vector, and a lossy long-horizon run keeps
        // thousands of them in flight at once. (The default bound of 64
        // suits per-node pools, not a whole event queue.)
        batches: MuxPool::new(1 << 16),
        tick_rng,
        channels,
        fd,
        oracle_audit_handle,
        crashed: vec![false; n],
        crash_times: vec![None; n],
        crash_armed: vec![false; n],
        queue: EventQueue::new(),
        tie_rng: config.scheduler.rng(),
        metrics: Metrics::new(config.window),
        inflight_protocol: 0,
        pending_broadcasts: config.broadcasts.len(),
        pending_topic_events: config.topic_events.len(),
        sweep: Vec::new(),
        deliveries_per_pid: vec![0; n],
        tracer: TraceRecorder::new(config.trace),
        now: 0,
        config,
    };
    runner.seed_initial_events();
    runner.main_loop();
    runner.finish()
}

impl Runner {
    fn seed_initial_events(&mut self) {
        let n = self.config.n;
        for pid in 0..n {
            let phase = self.tick_rng.gen_range(self.config.tick_interval.max(1));
            self.queue.push(phase, Event::Tick { pid });
            if let CrashRule::At(t) = self.config.crashes.rule(pid) {
                self.queue.push(t, Event::Crash { pid });
            }
        }
        let planned = self.config.broadcasts.clone();
        for b in planned {
            self.queue.push(
                b.time,
                Event::ClientBroadcast {
                    pid: b.pid,
                    topic: b.topic,
                    payload: b.payload,
                },
            );
        }
        for (index, ev) in self.config.topic_events.iter().enumerate() {
            self.queue.push(ev.time, Event::TopicEvent { index });
        }
        if self.config.stats_interval > 0 {
            self.queue
                .push(self.config.stats_interval, Event::SampleStats);
        }
    }

    fn main_loop(&mut self) {
        while let Some((t, ev)) = self.queue.pop_with(&mut self.tie_rng) {
            if t > self.config.max_time {
                break;
            }
            self.now = t;
            match ev {
                Event::Tick { pid } => self.on_tick(pid),
                Event::Deliver { to, from, entries } => self.on_deliver(to, from, entries),
                Event::Crash { pid } => self.on_crash(pid),
                Event::ClientBroadcast {
                    pid,
                    topic,
                    payload,
                } => self.on_client_broadcast(pid, topic, payload),
                Event::SampleStats => self.on_sample(),
                Event::TopicEvent { index } => self.on_topic_event(index),
            }
            if self.config.stop_on_quiescence && self.is_system_quiescent() {
                self.metrics.quiescent_at_end = true;
                break;
            }
            if self.config.stop_on_full_delivery && self.is_fully_delivered() {
                break;
            }
        }
        // A run that drained its queue (no-loss, quiescent algorithms) is
        // also quiescent even without the early-stop flag.
        if !self.metrics.quiescent_at_end && self.is_system_quiescent() {
            self.metrics.quiescent_at_end = true;
        }
        self.metrics.ended_at = self.now;
    }

    /// System quiescence: workload finished, every plan-correct process has
    /// nothing to retransmit, and no protocol message is in flight.
    fn is_system_quiescent(&self) -> bool {
        self.pending_broadcasts == 0
            && self.pending_topic_events == 0
            && self.inflight_protocol == 0
            && self
                .engines
                .iter()
                .enumerate()
                .all(|(i, e)| self.crashed[i] || e.is_quiescent())
    }

    /// Full delivery: every plan-correct process has delivered one distinct
    /// tag per issued broadcast. (Tags are unique and correct protocols
    /// deliver each at most once, so counting suffices.)
    fn is_fully_delivered(&self) -> bool {
        if self.pending_broadcasts > 0 || self.pending_topic_events > 0 {
            return false;
        }
        let k = self.metrics.broadcasts.len();
        (0..self.config.n).all(|pid| {
            !matches!(self.config.crashes.rule(pid), CrashRule::Never)
                || self.deliveries_per_pid[pid] >= k
        })
    }

    /// Runs one engine step of `pid`'s `topic` instance (the shared
    /// `urb-engine` code path), records its deliveries, and returns
    /// leaving the step's emissions in `self.scratch.outbox` for the
    /// caller to tag and transmit. One failure-detector snapshot per
    /// step, shared by every topic instance — detectors observe
    /// processes, not topics.
    fn engine_step(&mut self, pid: usize, topic: TopicId, input: StepInput) -> Option<Tag> {
        let snapshot = self.fd.snapshot(pid, self.now);
        let tag = self.engines[pid].step(topic, input, &snapshot, &mut self.scratch);
        let deliveries = std::mem::take(&mut self.scratch.deliveries);
        self.handle_deliveries(pid, topic, &deliveries);
        self.scratch.deliveries = deliveries;
        tag
    }

    fn on_tick(&mut self, pid: usize) {
        if self.crashed[pid] {
            return; // crash-stop: no further steps, no re-scheduling
        }
        self.metrics.hash_event(self.now, 1, pid as u64);
        let mut entries = self.batches.acquire();
        // Detector traffic first (preserving the unbatched order);
        // heartbeats are per-node, not per-topic — they ride topic 0.
        let mut fd_out = std::mem::take(&mut self.fd_out);
        fd_out.clear();
        self.fd.on_tick(pid, self.now, &mut fd_out);
        entries.extend(fd_out.drain(..).map(|m| (TopicId::ZERO, m)));
        self.fd_out = fd_out;
        // One Task-1 sweep per topic instance — live *and* draining
        // (retransmission is what drains a retiring topic) — ascending,
        // all into the same multiplexed outbox: one frame per node tick
        // (DESIGN.md §12). Without lifecycle events the instance
        // directory is exactly the configured `0..topics`, so this is
        // byte-identical to the fixed-range sweep (and with one topic,
        // to the pre-topic sweep).
        let mut sweep = std::mem::take(&mut self.sweep);
        sweep.clear();
        sweep.extend(self.engines[pid].instance_topics());
        for &topic in &sweep {
            self.engine_step(pid, topic, StepInput::Tick);
            entries.extend(self.scratch.outbox.drain(..).map(|m| (topic, m)));
        }
        self.sweep = sweep;
        // Reap draining instances that went quiescent or exhausted the
        // drain budget — compacting their state through the memory plane
        // and freeing the slot (DESIGN.md §15). Gated on the lifecycle
        // plane being in use at all: static runs take no detector
        // snapshot here and stay byte-identical.
        if !self.config.topic_events.is_empty() {
            let snapshot = self.fd.snapshot(pid, self.now);
            self.engines[pid].reap_drained(&snapshot);
        }
        // Bounded-memory mode: one compaction sweep per node tick, under
        // the same detector the sweeps just observed. Draws no randomness
        // and emits nothing, so the gated path stays byte-identical.
        if self.config.memory.is_some() {
            let snapshot = self.fd.snapshot(pid, self.now);
            self.engines[pid].compact_all(&snapshot);
        }
        if entries.is_empty() {
            self.batches.release(entries);
        } else {
            self.transmit(pid, entries);
        }
        // Schedule the next sweep.
        let jitter = if self.config.tick_jitter == 0 {
            0
        } else {
            self.tick_rng.gen_range(self.config.tick_jitter + 1)
        };
        let next = self.now + self.config.tick_interval.max(1) + jitter;
        self.queue.push(next, Event::Tick { pid });
    }

    fn on_deliver(&mut self, to: usize, _from: usize, entries: Vec<(TopicId, WireMessage)>) {
        self.inflight_protocol -= entries
            .iter()
            .filter(|(_, m)| m.kind() != WireKind::Heartbeat)
            .count();
        let mut arrived = entries;
        if self.crashed[to] {
            // Arrived at a dead process: silently gone (vector recycled).
            self.batches.release(arrived);
            return;
        }
        // Everything this frame's steps emit leaves as one frame again.
        // Processing ascending topic groups in order keeps the emitted
        // entries grouped ascending too.
        let mut emitted = self.batches.acquire();
        for (topic, msg) in arrived.drain(..) {
            self.metrics
                .hash_event(self.now, 2, msg.content_hash() ^ to as u64);
            self.metrics.on_receive(msg.kind());
            self.tracer.receive(self.now, to, msg.kind(), msg.tag());
            self.fd.on_receive(to, self.now, &msg);
            // In-flight traffic for a topic holding no instance here —
            // reclaimed after retirement, or never created — is dropped
            // inert *after* detector processing: the channel delivered
            // it, the protocol just has nobody to hand it to (DESIGN.md
            // §15). Static runs always hold every configured instance.
            if !self.engines[to].has_instance(topic) {
                continue;
            }
            // Snapshot taken per message, exactly as in unbatched delivery.
            self.engine_step(to, topic, StepInput::Receive(msg));
            emitted.extend(self.scratch.outbox.drain(..).map(|m| (topic, m)));
        }
        self.batches.release(arrived);
        if emitted.is_empty() {
            self.batches.release(emitted);
        } else {
            self.transmit(to, emitted);
        }
    }

    fn on_crash(&mut self, pid: usize) {
        if self.crashed[pid] {
            return;
        }
        self.crashed[pid] = true;
        self.crash_times[pid] = Some(self.now);
        self.metrics.hash_event(self.now, 3, pid as u64);
        self.tracer.crash(self.now, pid);
        self.fd.on_crash(pid, self.now);
    }

    fn on_client_broadcast(&mut self, pid: usize, topic: TopicId, payload: Payload) {
        self.pending_broadcasts -= 1;
        if self.crashed[pid] {
            return; // invoking a crashed process is a no-op
        }
        if !self.engines[pid].is_live(topic) {
            // The instance is not live at this process — not yet created,
            // draining, or retired. The invocation is refused: a retiring
            // topic accepts no new broadcasts (the quiescence rule,
            // DESIGN.md §15). Unreachable without lifecycle events, where
            // every configured topic is live for the whole run.
            return;
        }
        self.metrics.hash_event(self.now, 4, pid as u64);
        let tag = self
            .engine_step(pid, topic, StepInput::Broadcast(payload.clone()))
            .expect("urb_broadcast assigns a tag");
        let rec = BroadcastRecord {
            pid,
            topic,
            tag,
            time: self.now,
            payload,
        };
        self.tracer.urb_broadcast(&rec);
        self.metrics.broadcasts.push(rec);
        if !self.scratch.outbox.is_empty() {
            let mut out = self.batches.acquire();
            out.extend(self.scratch.outbox.drain(..).map(|m| (topic, m)));
            self.transmit(pid, out);
        }
    }

    /// Applies lifecycle plan entry `index` at every non-crashed process
    /// (DESIGN.md §15). Crashed processes execute nothing — their stale
    /// instances are unreachable state, exactly like the rest of a dead
    /// process's memory.
    fn on_topic_event(&mut self, index: usize) {
        self.pending_topic_events -= 1;
        let action = self.config.topic_events[index].action;
        let n = self.config.n;
        match action {
            TopicAction::Create { topic, algorithm } => {
                self.metrics.hash_event(self.now, 5, topic.0 as u64);
                let alg = algorithm.unwrap_or(self.config.algorithm);
                for pid in 0..n {
                    if !self.crashed[pid] {
                        self.engines[pid].create_topic(topic, alg.instantiate(n));
                    }
                }
            }
            TopicAction::Retire { topic } => {
                self.metrics.hash_event(self.now, 6, topic.0 as u64);
                for pid in 0..n {
                    if !self.crashed[pid] {
                        self.engines[pid].retire_topic(topic);
                    }
                }
            }
        }
    }

    fn on_sample(&mut self) {
        let per_process = self.engines.iter().map(|e| e.stats()).collect();
        self.metrics.stats_samples.push(StatsSample {
            time: self.now,
            per_process,
        });
        let next = self.now + self.config.stats_interval;
        if next <= self.config.max_time {
            self.queue.push(next, Event::SampleStats);
        }
    }

    fn handle_deliveries(&mut self, pid: usize, topic: TopicId, deliveries: &[Delivery]) {
        for d in deliveries {
            self.deliveries_per_pid[pid] += 1;
            let rec = DeliveryRecord {
                pid,
                topic,
                tag: d.tag,
                time: self.now,
                fast: d.fast,
                payload: d.payload.clone(),
            };
            self.tracer.urb_deliver(&rec);
            self.metrics.deliveries.push(rec);
            // Crash-on-first-delivery triggers (Theorem 2 / E11 adversary).
            if !self.crash_armed[pid] {
                if let CrashRule::OnFirstDelivery { delay } = self.config.crashes.rule(pid) {
                    self.crash_armed[pid] = true;
                    self.queue.push(self.now + delay, Event::Crash { pid });
                }
            }
        }
    }

    /// The paper's `broadcast` primitive over the multiplexed topic plane
    /// (DESIGN.md §12): one frame per destination (self included), each
    /// member's fate decided by that destination's own lossy channel, per
    /// message. One delivery event is scheduled per destination instead
    /// of one per message — or one per topic — which is where the routing
    /// overhead saving comes from; loss and metrics accounting remain per
    /// message, with fairness identities decorrelated per topic
    /// ([`TopicId::mix`]). Survivor sub-batches draw their vectors from
    /// the entry pool, and the consumed input vector returns to it —
    /// steady-state routing allocates nothing (DESIGN.md §10).
    ///
    /// With `mux_frames = false` (the E19 A/B arm) a multi-topic outbox is
    /// split into one frame per topic before routing: message behaviour is
    /// identical, but every topic pays its own per-destination frame.
    fn transmit(&mut self, from: usize, entries: Vec<(TopicId, WireMessage)>) {
        if !self.config.mux_frames {
            if let Some(first_topic) = entries.first().map(|(t, _)| *t) {
                if entries.iter().any(|(t, _)| *t != first_topic) {
                    // Split into ascending per-topic frames (entries are
                    // grouped ascending already) and route each alone.
                    let mut rest = entries;
                    while !rest.is_empty() {
                        let topic = rest[0].0;
                        let cut = rest
                            .iter()
                            .position(|(t, _)| *t != topic)
                            .unwrap_or(rest.len());
                        let mut group = self.batches.acquire();
                        group.extend(rest.drain(..cut));
                        self.transmit_frame(from, group);
                    }
                    self.batches.release(rest);
                    return;
                }
            }
        }
        self.transmit_frame(from, entries);
    }

    /// Routes one frame's entries to every destination. See
    /// [`Runner::transmit`].
    fn transmit_frame(&mut self, from: usize, entries: Vec<(TopicId, WireMessage)>) {
        for (_, m) in &entries {
            self.tracer.send(self.now, from, m.kind(), m.tag());
        }
        for to in 0..self.config.n {
            for (_, m) in &entries {
                self.metrics.on_send(m.kind(), self.now);
            }
            self.metrics.on_frame();
            if self
                .config
                .blackouts
                .iter()
                .any(|b| b.covers(from, to, self.now))
            {
                for (_, m) in &entries {
                    self.metrics.on_drop(m.kind());
                    self.tracer.drop_copy(self.now, from, to, m.kind(), m.tag());
                }
                continue;
            }
            let mut verdicts = std::mem::take(&mut self.verdicts);
            let delay = self
                .channels
                .link_mut(from, to)
                .transmit_entries(&entries, &mut verdicts);
            for ((_, m), ok) in entries.iter().zip(&verdicts) {
                if !ok {
                    self.metrics.on_drop(m.kind());
                    self.tracer.drop_copy(self.now, from, to, m.kind(), m.tag());
                }
            }
            if let Some(delay) = delay {
                let mut survivors = self.batches.acquire();
                survivors.extend(
                    entries
                        .iter()
                        .zip(&verdicts)
                        .filter(|&(_, ok)| *ok)
                        .map(|(e, _)| e.clone()),
                );
                self.inflight_protocol += survivors
                    .iter()
                    .filter(|(_, m)| m.kind() != WireKind::Heartbeat)
                    .count();
                self.queue.push(
                    self.now + delay,
                    Event::Deliver {
                        to,
                        from,
                        entries: survivors,
                    },
                );
            }
            self.verdicts = verdicts;
        }
        self.batches.release(entries);
    }

    fn finish(self) -> RunOutcome {
        let n = self.config.n;
        let correct: Vec<bool> = (0..n)
            .map(|i| matches!(self.config.crashes.rule(i), CrashRule::Never))
            .collect();
        let report = check_urb(
            n,
            &correct,
            &self.metrics.broadcasts,
            &self.metrics.deliveries,
        );
        // The verdict directory: every statically configured topic plus
        // every dynamically created one. A retired topic keeps its row —
        // retirement truncates "eventually", it does not erase
        // obligations incurred while live (DESIGN.md §15).
        let mut known: Vec<TopicId> = (0..self.config.topics.max(1)).map(TopicId).collect();
        known.extend(
            self.config
                .topic_events
                .iter()
                .filter_map(|e| match e.action {
                    TopicAction::Create { topic, .. } => Some(topic),
                    TopicAction::Retire { .. } => None,
                }),
        );
        known.sort_unstable();
        known.dedup();
        let per_topic = check_urb_per_topics(
            n,
            &correct,
            &known,
            &self.metrics.broadcasts,
            &self.metrics.deliveries,
        );
        let final_stats = self.engines.iter().map(|e| e.stats()).collect();

        // Oracle audit: reconstruct a reference oracle with the *actual*
        // crash times (dynamic triggers resolved during the run), then
        // machine-check the AΘ/AP* clauses over a horizon that clears every
        // removal clock. Skipped when a declared-faulty process never
        // crashed within the horizon (its removal clocks never started).
        let fd_audit = match self.config.fd {
            FdKind::Oracle(cfg) if self.oracle_audit_handle => {
                let mut actual = self.config.crashes.static_times();
                let mut resolvable = true;
                for (slot, resolved) in actual.iter_mut().zip(&self.crash_times) {
                    if *slot == Some(u64::MAX) {
                        match resolved {
                            Some(t) => *slot = Some(*t),
                            None => resolvable = false,
                        }
                    }
                }
                if resolvable {
                    // The completeness clauses are evaluated at the horizon,
                    // which must clear every crash (even ones planned after
                    // the run ended early) plus all removal clocks.
                    let latest_crash = actual.iter().flatten().copied().max().unwrap_or(0);
                    let oracle = OracleFd::new(actual, self.config.seed, cfg);
                    let horizon = self
                        .metrics
                        .ended_at
                        .max(latest_crash)
                        .max(oracle.pstar_ready_at())
                        .saturating_add(cfg.theta_removal_delay)
                        .saturating_add(cfg.pstar_removal_delay)
                        .saturating_add(cfg.appearance_spread)
                        .saturating_add(1);
                    Some(oracle.audit(horizon))
                } else {
                    None
                }
            }
            _ => None,
        };
        self.finish_with(correct, report, per_topic, final_stats, fd_audit)
    }

    fn finish_with(
        self,
        correct: Vec<bool>,
        report: CheckReport,
        per_topic: Vec<TopicReport>,
        final_stats: Vec<ProcessStats>,
        fd_audit: Option<Result<(), String>>,
    ) -> RunOutcome {
        RunOutcome {
            n: self.config.n,
            algorithm: self.config.algorithm.name(),
            counters: self.engines.iter().map(|e| e.counters()).collect(),
            correct,
            quiescent: self.metrics.quiescent_at_end,
            last_protocol_send: self.metrics.last_protocol_send,
            trace: self.tracer.into_trace(),
            metrics: self.metrics,
            report,
            per_topic,
            final_stats,
            fd_audit,
            batch_pool: self.batches.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_alg1_delivers_everywhere() {
        let out = run(SimConfig::new(5, Algorithm::Majority).seed(7));
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        for pid in 0..5 {
            assert_eq!(out.delivered_set(pid).len(), 1, "pid {pid}");
        }
        assert!(!out.quiescent, "Algorithm 1 never quiesces");
    }

    #[test]
    fn clean_run_alg2_delivers_and_quiesces() {
        let out = run(SimConfig::new(5, Algorithm::Quiescent)
            .seed(8)
            .max_time(500_000));
        assert!(out.all_ok(), "{:?}", out.report.violations());
        for pid in 0..5 {
            assert_eq!(out.delivered_set(pid).len(), 1, "pid {pid}");
        }
        assert!(out.quiescent, "Algorithm 2 must go quiescent");
        assert!(matches!(out.fd_audit, Some(Ok(()))));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let a = run(SimConfig::new(4, Algorithm::Majority).seed(42));
        let b = run(SimConfig::new(4, Algorithm::Majority).seed(42));
        assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
        assert_eq!(a.metrics.sent, b.metrics.sent);
        let c = run(SimConfig::new(4, Algorithm::Majority).seed(43));
        assert_ne!(a.metrics.trace_hash, c.metrics.trace_hash);
    }

    #[test]
    fn seeded_tie_scheduler_changes_order_not_correctness() {
        // Same config seed, different scheduler seeds: the runs replay
        // different same-instant orders (distinct trace hashes) yet URB
        // still holds on each — the schedule-sensitivity smoke the
        // exploration plane generalizes (DESIGN.md §11).
        let base = || {
            SimConfig::new(5, Algorithm::Majority)
                .seed(21)
                .loss(LossModel::Bernoulli { p: 0.15 })
                .workload(3, 50)
                .max_time(40_000)
        };
        let fifo = run(base());
        let shuffled = |s: u64| run(base().scheduler(SchedulerPolicy::SeededTies { seed: s }));
        let a = shuffled(1);
        let b = shuffled(1);
        assert_eq!(
            a.metrics.trace_hash, b.metrics.trace_hash,
            "deterministic per scheduler seed"
        );
        let c = shuffled(2);
        assert_ne!(a.metrics.trace_hash, c.metrics.trace_hash);
        assert_ne!(
            fifo.metrics.trace_hash, a.metrics.trace_hash,
            "tie shuffle visits a schedule the seed alone never produces"
        );
        for out in [&fifo, &a, &c] {
            assert!(out.report.all_ok(), "{:?}", out.report.violations());
        }
    }

    #[test]
    fn batch_pool_reaches_steady_state_over_a_long_run() {
        // The pooled-message-buffer claim, end to end: a lossy multi-message
        // run schedules thousands of sub-batch deliveries, yet the pool
        // stops allocating vectors almost immediately.
        let cfg = SimConfig::new(6, Algorithm::Majority)
            .seed(17)
            .loss(LossModel::Bernoulli { p: 0.2 })
            .workload(5, 100)
            .max_time(30_000);
        let out = run(cfg);
        let s = out.batch_pool;
        assert!(s.acquired > 100_000, "routing volume: {s:?}");
        // `created` tracks the peak number of simultaneously in-flight
        // sub-batches (a few hundred), not routing volume (a million+).
        assert!(
            s.created <= 1_024,
            "steady-state routing must recycle, not allocate: {s:?}"
        );
        assert_eq!(s.discarded, 0, "retention bound must cover in-flight peaks");
        assert!(s.hit_rate() > 0.99, "{s:?}");
    }

    #[test]
    fn multi_topic_run_delivers_per_topic_verdicts() {
        // 3 topics × 6 broadcasts round-robined: every topic's instance
        // delivers everywhere, the per-topic verdicts all hold, and the
        // records partition exactly.
        let cfg = SimConfig::new(4, Algorithm::Majority)
            .topics(3)
            .seed(19)
            .workload_topics(6, 60);
        let mut cfg = cfg;
        cfg.stop_on_full_delivery = true;
        let out = run(cfg);
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        assert!(out.all_topics_ok());
        assert_eq!(out.per_topic.len(), 3);
        for (i, t) in out.per_topic.iter().enumerate() {
            assert_eq!(t.topic, TopicId(i as u32));
            assert_eq!(t.broadcasts, 2, "6 broadcasts round-robin 3 topics");
            assert_eq!(t.deliveries, 8, "2 msgs × 4 procs");
            assert!(t.report.all_ok(), "topic {i}: {:?}", t.report.violations());
        }
        for pid in 0..4 {
            assert_eq!(out.delivered_set(pid).len(), 6);
            assert_eq!(out.delivered_set_for(pid, TopicId(1)).len(), 2);
        }
    }

    #[test]
    fn multi_topic_runs_are_deterministic_and_seed_sensitive() {
        let mk = |seed: u64| {
            let mut cfg = SimConfig::new(4, Algorithm::Majority)
                .topics(4)
                .seed(seed)
                .workload_topics(8, 40)
                .loss(LossModel::Bernoulli { p: 0.15 });
            cfg.stop_on_full_delivery = true;
            run(cfg)
        };
        let a = mk(5);
        let b = mk(5);
        assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
        assert_eq!(a.metrics.frames_sent, b.metrics.frames_sent);
        assert_ne!(a.metrics.trace_hash, mk(6).metrics.trace_hash);
    }

    #[test]
    fn mux_frames_beat_separate_frames_on_frames_sent() {
        // The E19 claim in miniature: identical multi-topic workload, one
        // run multiplexing every step's topics into one frame, the other
        // paying one frame per topic. Message counts and verdicts agree;
        // the multiplexed run sends strictly fewer frames.
        let base = |mux: bool| {
            let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
                .topics(4)
                .seed(23)
                .workload_topics(8, 10)
                .max_time(400_000);
            cfg.mux_frames = mux;
            run(cfg)
        };
        let muxed = base(true);
        let separate = base(false);
        assert!(muxed.all_topics_ok(), "{:?}", muxed.report.violations());
        assert!(separate.all_topics_ok());
        assert_eq!(
            muxed.metrics.deliveries.len(),
            separate.metrics.deliveries.len(),
            "same workload delivered either way"
        );
        assert!(
            muxed.metrics.frames_sent < separate.metrics.frames_sent,
            "multiplexing must amortize frames: {} vs {}",
            muxed.metrics.frames_sent,
            separate.metrics.frames_sent
        );
    }

    #[test]
    #[should_panic(expected = "targets topic")]
    fn broadcast_to_unconfigured_topic_panics() {
        let mut cfg = SimConfig::new(2, Algorithm::Majority);
        cfg.broadcasts[0].topic = TopicId(3); // only 1 topic configured
        let _ = run(cfg);
    }

    /// The ISSUE acceptance scenario in miniature: create a topic at tick
    /// T, run a workload on it, retire it at T'. Per-topic URB verdicts
    /// hold, the counters show every process reclaimed the instance, and
    /// the run is deterministic.
    #[test]
    fn dynamic_topic_create_workload_retire_reclaims() {
        let mk = || {
            let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
                .seed(31)
                .max_time(500_000)
                .topic_event(
                    100,
                    TopicAction::Create {
                        topic: TopicId(1),
                        algorithm: None,
                    },
                )
                .topic_event(4_000, TopicAction::Retire { topic: TopicId(1) });
            cfg.broadcasts = vec![
                PlannedBroadcast {
                    time: 10,
                    pid: 0,
                    topic: TopicId::ZERO,
                    payload: Payload::from("static"),
                },
                PlannedBroadcast {
                    time: 150,
                    pid: 1,
                    topic: TopicId(1),
                    payload: Payload::from("dyn-a"),
                },
                PlannedBroadcast {
                    time: 300,
                    pid: 2,
                    topic: TopicId(1),
                    payload: Payload::from("dyn-b"),
                },
            ];
            run(cfg)
        };
        let out = mk();
        assert!(out.all_topics_ok(), "{:?}", out.report.violations());
        assert_eq!(out.per_topic.len(), 2, "static topic 0 + dynamic topic 1");
        assert_eq!(out.per_topic[1].topic, TopicId(1));
        assert_eq!(out.per_topic[1].broadcasts, 2);
        assert_eq!(out.per_topic[1].deliveries, 8, "2 msgs × 4 procs");
        assert_eq!(
            out.topics_reclaimed(),
            4,
            "every process reclaimed the retired instance"
        );
        assert!(out.quiescent, "retired state cannot block quiescence");
        // The per-process stats no longer include topic 1's state.
        for c in &out.counters {
            assert_eq!(c.topics_created, 1);
            assert_eq!(c.topics_retired, 1);
            assert_eq!(c.topics_reclaimed, 1);
        }
        let again = mk();
        assert_eq!(
            out.metrics.trace_hash, again.metrics.trace_hash,
            "lifecycle runs replay byte-deterministically"
        );
    }

    /// Broadcasts outside a topic's live window are refused — before the
    /// create, and after the retire (a draining topic accepts no new
    /// broadcasts, DESIGN.md §15). Refusals leave no records, so the
    /// verdicts still hold.
    #[test]
    fn broadcasts_outside_the_live_window_are_refused() {
        let mut cfg = SimConfig::new(3, Algorithm::Quiescent)
            .seed(33)
            .max_time(500_000)
            .topic_event(
                200,
                TopicAction::Create {
                    topic: TopicId(1),
                    algorithm: None,
                },
            )
            .topic_event(2_000, TopicAction::Retire { topic: TopicId(1) });
        cfg.broadcasts = vec![
            PlannedBroadcast {
                time: 50, // before the create: refused
                pid: 0,
                topic: TopicId(1),
                payload: Payload::from("early"),
            },
            PlannedBroadcast {
                time: 400, // live window: accepted
                pid: 1,
                topic: TopicId(1),
                payload: Payload::from("live"),
            },
            PlannedBroadcast {
                time: 9_000, // after the retire: refused
                pid: 2,
                topic: TopicId(1),
                payload: Payload::from("late"),
            },
        ];
        let out = run(cfg);
        assert!(out.all_topics_ok(), "{:?}", out.report.violations());
        assert_eq!(out.metrics.broadcasts.len(), 1, "only the live one lands");
        assert_eq!(&out.metrics.broadcasts[0].payload.bytes()[..], b"live");
        assert_eq!(out.topics_reclaimed(), 3);
    }

    /// A retired id re-created later starts clean and serves a second
    /// generation of traffic; a dynamic topic may run a *different*
    /// algorithm than the static plane.
    #[test]
    fn recreated_topic_serves_a_second_generation() {
        let mut cfg = SimConfig::new(3, Algorithm::Quiescent)
            .seed(37)
            .max_time(800_000)
            .topic_event(
                100,
                TopicAction::Create {
                    topic: TopicId(7),
                    algorithm: Some(Algorithm::Quiescent),
                },
            )
            .topic_event(3_000, TopicAction::Retire { topic: TopicId(7) })
            .topic_event(
                6_000,
                TopicAction::Create {
                    topic: TopicId(7),
                    algorithm: None,
                },
            )
            .topic_event(10_000, TopicAction::Retire { topic: TopicId(7) });
        cfg.broadcasts = vec![
            PlannedBroadcast {
                time: 10,
                pid: 0,
                topic: TopicId::ZERO,
                payload: Payload::from("m0"),
            },
            PlannedBroadcast {
                time: 500,
                pid: 1,
                topic: TopicId(7),
                payload: Payload::from("gen1"),
            },
            PlannedBroadcast {
                time: 6_500,
                pid: 2,
                topic: TopicId(7),
                payload: Payload::from("gen2"),
            },
        ];
        let out = run(cfg);
        assert!(out.all_topics_ok(), "{:?}", out.report.violations());
        let t7 = out
            .per_topic
            .iter()
            .find(|t| t.topic == TopicId(7))
            .expect("dynamic topic reported");
        assert_eq!(t7.broadcasts, 2, "one broadcast per generation");
        assert_eq!(t7.deliveries, 6, "2 msgs × 3 procs across generations");
        assert_eq!(out.topics_reclaimed(), 6, "both generations reclaimed");
        for c in &out.counters {
            assert_eq!(c.topics_created, 2);
            assert_eq!(c.topics_retired, 2);
            assert_eq!(c.topics_reclaimed, 2);
        }
    }

    /// Retiring under Algorithm 1 (which never quiesces) exercises the
    /// drain *budget*: the instance cannot drain to quiescence, so the
    /// reap fires when the budget expires — retirement must not hang on
    /// a chatty protocol.
    #[test]
    fn drain_budget_reaps_non_quiescent_algorithms() {
        let mut cfg = SimConfig::new(3, Algorithm::Majority)
            .seed(41)
            .max_time(30_000)
            .drain_ticks(5)
            .topic_event(
                100,
                TopicAction::Create {
                    topic: TopicId(1),
                    algorithm: None,
                },
            )
            .topic_event(5_000, TopicAction::Retire { topic: TopicId(1) });
        cfg.broadcasts = vec![
            PlannedBroadcast {
                time: 10,
                pid: 0,
                topic: TopicId::ZERO,
                payload: Payload::from("m0"),
            },
            PlannedBroadcast {
                time: 200,
                pid: 1,
                topic: TopicId(1),
                payload: Payload::from("m1"),
            },
        ];
        cfg.stop_on_quiescence = false;
        // Control arm: identical run, except the topic is never retired.
        let mut control = cfg.clone();
        control.topic_events.truncate(1);
        let out = run(cfg);
        let kept = run(control);
        assert!(out.all_topics_ok(), "{:?}", out.report.violations());
        assert_eq!(out.topics_reclaimed(), 3, "budget-expiry reap fired");
        assert_eq!(kept.topics_reclaimed(), 0);
        // Reclaimed means reclaimed: with the instance freed, every
        // process ends the run holding strictly less protocol state than
        // the control arm that kept the topic alive.
        for pid in 0..3 {
            assert!(
                out.final_stats[pid].total() < kept.final_stats[pid].total(),
                "pid {pid}: {} vs control {}",
                out.final_stats[pid].total(),
                kept.final_stats[pid].total()
            );
        }
    }

    #[test]
    fn lossy_run_alg1_still_correct() {
        let cfg = SimConfig::new(5, Algorithm::Majority)
            .seed(9)
            .loss(LossModel::Bernoulli { p: 0.3 })
            .max_time(50_000);
        let out = run(cfg);
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        assert!(out.metrics.dropped.iter().sum::<u64>() > 0, "loss happened");
    }

    #[test]
    fn minority_crashes_alg1_ok() {
        let cfg = SimConfig::new(5, Algorithm::Majority)
            .seed(10)
            .crashes(CrashPlan::random(5, 2, 300, 10, Some(0)))
            .max_time(50_000);
        let out = run(cfg);
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
    }

    #[test]
    fn majority_crashes_alg2_ok() {
        // The headline claim: URB with any number of crashes under AΘ/AP*.
        let cfg = SimConfig::new(5, Algorithm::Quiescent)
            .seed(11)
            .crashes(CrashPlan::random(5, 4, 300, 11, Some(0)))
            .max_time(500_000);
        let out = run(cfg);
        assert!(out.all_ok(), "{:?}", out.report.violations());
        assert!(out.quiescent);
    }

    #[test]
    fn crashed_process_stops_completely() {
        let cfg = SimConfig::new(3, Algorithm::Majority)
            .seed(12)
            .crashes(CrashPlan::from_rules(vec![
                CrashRule::At(5), // broadcaster dies almost immediately
                CrashRule::Never,
                CrashRule::Never,
            ]))
            .max_time(20_000);
        let out = run(cfg);
        // Process 0 crashed at t=5, broadcast was at t=10 → no-op.
        assert!(out.metrics.broadcasts.is_empty());
        assert!(out.metrics.deliveries.is_empty());
        assert!(out.report.all_ok());
    }

    #[test]
    fn stats_sampling_collects() {
        let mut cfg = SimConfig::new(3, Algorithm::Majority)
            .seed(13)
            .max_time(5_000);
        cfg.stats_interval = 500;
        cfg.stop_on_quiescence = false;
        let out = run(cfg);
        assert!(out.metrics.stats_samples.len() >= 8);
        assert_eq!(out.metrics.stats_samples[0].per_process.len(), 3);
    }

    #[test]
    fn heartbeat_fd_runs_alg2() {
        let mut cfg = SimConfig::new(4, Algorithm::Quiescent)
            .seed(14)
            .max_time(100_000);
        cfg.fd = FdKind::Heartbeat(HeartbeatConfig::default());
        let out = run(cfg);
        // With no loss and no crashes the heartbeat estimator is exact
        // after warm-up, so the run must be correct and quiescent.
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        assert!(out.quiescent);
        assert!(out.fd_audit.is_none(), "no audit for heartbeat runs");
    }

    #[test]
    fn partition_heals_and_urb_completes() {
        // Processes {0,1} and {2,3} are fully cut from each other for the
        // first 2000 ticks — longer than any normal convergence. Fairness
        // resumes at the heal, so Algorithm 1 must still finish URB.
        let mut cfg = SimConfig::new(4, Algorithm::Majority)
            .seed(33)
            .max_time(50_000);
        cfg.blackouts = Blackout::partition(&[0, 1], &[2, 3], 0, 2_000);
        cfg.stop_on_full_delivery = true;
        let out = run(cfg);
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        for pid in 0..4 {
            assert_eq!(out.delivered_set(pid).len(), 1, "pid {pid}");
        }
        // No delivery can cross the cut before the heal: with {0,1} alone,
        // only 2 distinct ACKs exist < majority 3.
        for d in &out.metrics.deliveries {
            assert!(
                d.time >= 2_000,
                "delivery at t={} predates the heal",
                d.time
            );
        }
    }

    #[test]
    fn blackout_covers_window_edges() {
        let b = Blackout {
            from: 0,
            to: 1,
            start: 10,
            end: 20,
        };
        assert!(!b.covers(0, 1, 9));
        assert!(b.covers(0, 1, 10));
        assert!(b.covers(0, 1, 19));
        assert!(!b.covers(0, 1, 20));
        assert!(!b.covers(1, 0, 15), "directed");
    }

    #[test]
    fn trace_records_full_message_lifecycle() {
        let mut cfg = SimConfig::new(3, Algorithm::Majority).seed(20);
        cfg.trace = crate::trace::TraceConfig::full(100_000);
        cfg.stop_on_full_delivery = true;
        let out = run(cfg);
        assert!(!out.trace.is_empty());
        let tag = out.metrics.broadcasts[0].tag;
        let tl = out.trace.timeline(tag);
        use crate::trace::TraceKind;
        assert!(tl.iter().any(|e| e.kind == TraceKind::UrbBroadcast));
        assert!(tl.iter().any(|e| e.kind == TraceKind::Send));
        assert!(tl.iter().any(|e| e.kind == TraceKind::Receive));
        assert_eq!(
            tl.iter()
                .filter(|e| e.kind == TraceKind::UrbDeliver)
                .count(),
            3,
            "every process delivers exactly once"
        );
        // JSON export is well-formed enough to round-trip a parse.
        let json = out.trace.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["events"].as_array().unwrap().len() == out.trace.len());
    }

    #[test]
    fn trace_disabled_by_default_and_costless() {
        let out = run(SimConfig::new(3, Algorithm::Majority).seed(21));
        assert!(out.trace.is_empty());
        assert!(!out.trace.truncated);
    }

    #[test]
    fn partition_override_blocks_links() {
        // Sever every link out of process 0; its broadcast reaches nobody,
        // Algorithm 1 cannot gather a quorum anywhere — nobody delivers.
        let mut cfg = SimConfig::new(4, Algorithm::Majority)
            .seed(15)
            .max_time(20_000);
        cfg.link_overrides = (1..4)
            .map(|to| LinkOverride {
                from: 0,
                to,
                loss: LossModel::Always,
            })
            .collect();
        let out = run(cfg);
        // Process 0 ACKs itself (self-channel is reliable) but 1 < 3.
        assert!(out.metrics.deliveries.is_empty());
        // Agreement and integrity hold vacuously; validity is *violated* —
        // and rightly so: a forever-severed link breaks the fair-lossy
        // Fairness axiom, so this run is outside the paper's model and the
        // correct broadcaster can indeed never deliver its own message.
        assert!(out.report.agreement.ok());
        assert!(out.report.integrity.ok());
        assert!(!out.report.validity.ok(), "severed links break validity");
    }
}
