//! Parallel multi-run executor: fan a set of [`SimConfig`]s across a
//! thread pool.
//!
//! A simulated run is a pure function of its configuration (including the
//! seed), so runs are embarrassingly parallel: no shared state, no
//! ordering constraints, bit-identical results whether executed serially
//! or concurrently. The executor exploits that for the experiment grids
//! (seeds × n × loss × algorithm) and the CLI sweep, which previously
//! used one core.
//!
//! Work is distributed by a shared iterator (cheap work stealing — run
//! times vary wildly across a grid, so static chunking would leave cores
//! idle), and outcomes are returned **in input order** regardless of
//! completion order, so callers aggregate exactly as they would over a
//! serial loop.

use crate::sim::{run, RunOutcome, SimConfig};
use std::sync::Mutex;

/// Number of worker threads the executor uses by default: the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Generic work-stealing map: applies `f` to every item on at most
/// `threads` workers and returns the outputs **in input order**. This is
/// the deterministic-executor template the whole workspace shares — the
/// multi-run grids wrap it below, and `urb-check`'s parallel frontier
/// drives each exploration epoch through it — so "parallel == serial,
/// result for result" is proved in one place. `threads <= 1` degenerates
/// to a plain inline loop with no thread spawning at all.
pub fn map_indexed_on<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let total = items.len();
    let jobs = Mutex::new(items.into_iter().enumerate());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Hold the job lock only for the pop, never during work.
                let job = jobs.lock().unwrap_or_else(|e| e.into_inner()).next();
                let Some((index, item)) = job else { break };
                let output = f(index, item);
                results
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((index, output));
            });
        }
    });
    let mut results = results.into_inner().unwrap_or_else(|e| e.into_inner());
    results.sort_unstable_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, output)| output).collect()
}

/// Executes every configuration, using all available cores. Outcomes come
/// back in input order. Equivalent to `configs.into_iter().map(run)` in
/// results, faster in wall-clock.
pub fn run_many(configs: Vec<SimConfig>) -> Vec<RunOutcome> {
    run_many_on(configs, default_threads())
}

/// Executes every configuration on at most `threads` workers (clamped to
/// at least 1). `threads == 1` degenerates to a plain serial loop with no
/// thread spawning at all.
pub fn run_many_on(configs: Vec<SimConfig>, threads: usize) -> Vec<RunOutcome> {
    map_indexed_on(configs, threads, &|_, config| run(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use urb_core::Algorithm;

    fn grid() -> Vec<SimConfig> {
        let mut configs = Vec::new();
        for n in [3usize, 4] {
            for seed in 0..4u64 {
                configs.push(scenario::lossy_crashy(
                    n,
                    Algorithm::Majority,
                    0.1,
                    0,
                    1,
                    seed * 31 + 5,
                ));
            }
        }
        configs
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial: Vec<RunOutcome> = grid().into_iter().map(run).collect();
        let parallel = run_many_on(grid(), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.metrics.trace_hash, p.metrics.trace_hash, "determinism");
            assert_eq!(s.metrics.sent, p.metrics.sent);
            assert_eq!(s.metrics.deliveries.len(), p.metrics.deliveries.len());
            assert_eq!(s.n, p.n, "input order preserved");
        }
    }

    #[test]
    fn single_thread_path_runs_inline() {
        let out = run_many_on(grid(), 1);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|o| o.report.all_ok()));
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_many(Vec::new()).is_empty());
    }
}
