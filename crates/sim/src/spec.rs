//! The declarative scenario plane: serde-backed scenario specs, loadable
//! from TOML or JSON, compiled onto the event-queue machinery.
//!
//! A [`ScenarioSpec`] is a complete, self-contained description of one
//! adversarial run — topology, workload, per-link loss and delay models,
//! crash plans, partition/churn windows and the named adversary shapes of
//! the [`crate::adversary`] scheduler library. Specs exist so that
//! scenario diversity is *data*, not Rust: users, CI and fuzzers author
//! `scenarios/*.toml` files and replay them with `urb scenario <file>`,
//! without recompiling anything.
//!
//! The pipeline:
//!
//! ```text
//! .toml ── minitoml::parse ──┐
//!                            ├──► serde_json::Value ──► ScenarioSpec::from_value
//! .json ── serde_json ───────┘            │
//!                                         ▼
//!            ScenarioSpec::compile ──► SimConfig ──► sim::run ──► RunOutcome
//!                                         ▲                          │
//!            Schedule::apply (adversary library)      Expectations::check
//! ```
//!
//! Everything is checked: decoding rejects unknown keys (typos fail loudly,
//! not silently), [`ScenarioSpec::compile`] validates ranges and resilience
//! bounds, and [`Expectations`] turn the run's machine-checked URB verdict
//! into a scenario-level pass/fail — a spec can legitimately *expect* a
//! violation (the Theorem-2 corpus entry does).
//!
//! The schema is documented in DESIGN.md §9; the shipped corpus lives in
//! `scenarios/` and is embedded here via [`corpus`] so tests, benches and
//! examples replay it regardless of working directory.

use crate::adversary::Schedule;
use crate::channel::{DelayModel, LossModel};
use crate::crash::{CrashPlan, CrashRule};
use crate::minitoml;
use crate::sim::{
    Blackout, DelayOverride, FdKind, LinkOverride, PlannedBroadcast, RunOutcome, SimConfig,
    TopicAction,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use urb_core::Algorithm;
use urb_fd::{HeartbeatConfig, OracleConfig};
use urb_types::{MemoryConfig, Payload, SpillPolicy, TopicId};

/// A scenario-file error: what went wrong, in words a spec author acts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec error: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// When a compiled run should end (beyond the hard horizon).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StopRule {
    /// Stop once the system is quiescent (the default; right for
    /// Algorithm 2, which provably stops).
    #[default]
    Quiescence,
    /// Stop at quiescence *or* once every plan-correct process delivered
    /// everything — the bound for Algorithm-1 runs, which never quiesce.
    FullDelivery,
    /// Run to the horizon regardless (quiescence-curve measurements,
    /// impossibility adversaries that must observe continued silence).
    Horizon,
}

impl StopRule {
    fn as_str(self) -> &'static str {
        match self {
            StopRule::Quiescence => "quiescence",
            StopRule::FullDelivery => "full-delivery",
            StopRule::Horizon => "horizon",
        }
    }

    fn from_str(s: &str) -> Result<Self, SpecError> {
        Ok(match s {
            "quiescence" => StopRule::Quiescence,
            "full-delivery" => StopRule::FullDelivery,
            "horizon" => StopRule::Horizon,
            other => {
                return Err(SpecError::new(format!(
                    "unknown stop rule {other:?} (quiescence | full-delivery | horizon)"
                )))
            }
        })
    }
}

/// Failure-detector selection in a spec. Absent = pick by algorithm
/// (exactly what [`SimConfig::new`] does).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FdSpec {
    /// No detector.
    None,
    /// The audited `AΘ`/`AP*` oracle (DESIGN.md D5/D6).
    Oracle(OracleConfig),
    /// The realistic heartbeat estimator.
    Heartbeat(HeartbeatConfig),
}

/// The application workload of a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// `count` broadcasts from round-robin senders, `spacing` ticks apart,
    /// starting at `start` (all on topic 0 — the single-table `[workload]`
    /// form).
    Generated {
        /// Number of URB broadcasts.
        count: usize,
        /// Ticks between consecutive broadcasts.
        spacing: u64,
        /// Invocation time of the first broadcast.
        start: u64,
    },
    /// One generated workload **per topic** — the `[[workload]]`
    /// array-of-tables form of the topic plane (DESIGN.md §12): each entry
    /// names its topic and contributes its own round-robin broadcast
    /// stream, so skewed topic loads (one hot topic, many cold ones) are
    /// a few lines of TOML.
    PerTopic(Vec<TopicWorkload>),
    /// Explicit `[[workload.explicit]]` entries (each may name a topic).
    Explicit(Vec<BroadcastSpec>),
}

/// One topic's generated workload (`[[workload]]` entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopicWorkload {
    /// The topic this stream broadcasts on (must be `< [topics].count`).
    pub topic: u32,
    /// Number of URB broadcasts.
    pub count: usize,
    /// Ticks between consecutive broadcasts.
    pub spacing: u64,
    /// Invocation time of the first broadcast.
    pub start: u64,
}

/// One `[[topics.events]]` entry: a planned topic-lifecycle change
/// (DESIGN.md §15, schema in §9). Events compile to
/// [`crate::sim::TopicEventCfg`]s applied at every non-crashed process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopicEventSpec {
    /// Instant the change applies.
    pub at: u64,
    /// What changes.
    pub action: TopicActionSpec,
}

/// The lifecycle transition of one `[[topics.events]]` entry — exactly one
/// of the `create` / `retire` keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopicActionSpec {
    /// `create = <topic>`: bring a dynamic topic live. The id must lie
    /// outside the static `[topics].count` range and must not already be
    /// live at `at`.
    Create {
        /// The topic to instantiate.
        topic: u32,
        /// Optional `algorithm` key: the new instance's protocol; absent
        /// inherits the scenario's algorithm.
        algorithm: Option<Algorithm>,
    },
    /// `retire = <topic>`: drain and reclaim a live topic (static or
    /// dynamic).
    Retire {
        /// The topic to retire.
        topic: u32,
    },
}

impl TopicActionSpec {
    /// The topic this action touches.
    pub fn topic(&self) -> u32 {
        match *self {
            TopicActionSpec::Create { topic, .. } | TopicActionSpec::Retire { topic } => topic,
        }
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::Generated {
            count: 1,
            spacing: 100,
            start: 10,
        }
    }
}

/// One explicit `URB_broadcast` invocation in a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastSpec {
    /// Invocation time.
    pub time: u64,
    /// Invoking process.
    pub pid: usize,
    /// Target URB instance (`0` when omitted; must be `< [topics].count`).
    pub topic: u32,
    /// The application message (UTF-8).
    pub payload: String,
}

/// One explicit `[[crash]]` entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashRuleSpec {
    /// The crashing process.
    pub pid: usize,
    /// When it crashes.
    pub rule: CrashRule,
}

/// The `[crash_random]` table: `count` random victims with crash times in
/// `[0, horizon]`, derived deterministically from the scenario seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomCrashSpec {
    /// Number of crashing processes.
    pub count: usize,
    /// Crash times are drawn in `[0, horizon]`.
    pub horizon: u64,
    /// A process index never selected (usually the broadcaster).
    pub protect: Option<usize>,
}

/// One `[[link]]` entry: a directed link with its own loss and/or delay
/// model (the mesh-wide models apply where a field is absent).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Sender side of the link.
    pub from: usize,
    /// Receiver side of the link.
    pub to: usize,
    /// Replacement loss model, if any.
    pub loss: Option<LossModel>,
    /// Replacement delay model, if any.
    pub delay: Option<DelayModel>,
}

/// The `[expect]` table: the scenario-level verdict, checked against the
/// run's machine-checked [`RunOutcome`]. An empty table (or an absent one)
/// means "everything must hold" (`all_ok = true`); a spec can instead
/// *expect a violation* — the executable-impossibility corpus entry
/// expects `agreement = false`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Expectations {
    /// All URB properties and (oracle runs) the FD audit.
    pub all_ok: Option<bool>,
    /// The validity verdict.
    pub validity: Option<bool>,
    /// The uniform-agreement verdict.
    pub agreement: Option<bool>,
    /// The uniform-integrity verdict.
    pub integrity: Option<bool>,
    /// Whether the run must end quiescent.
    pub quiescent: Option<bool>,
    /// Minimum number of URB deliveries across all processes.
    pub min_deliveries: Option<usize>,
    /// Every per-topic URB verdict must hold (DESIGN.md §12). `all_ok`
    /// checks the global union of records; this key additionally demands
    /// each instance's own partitioned verdict.
    pub topics_all_ok: Option<bool>,
    /// Minimum URB deliveries on **each** topic that appears in the run.
    pub min_deliveries_per_topic: Option<usize>,
    /// Minimum total topic instances reclaimed across all processes
    /// (DESIGN.md §15): a retire applied at `k` live processes counts `k`
    /// once drained and freed. The state-reclamation proof of the
    /// lifecycle plane — `topics_all_ok` says retirement kept URB sound,
    /// this key says it actually freed the memory.
    pub min_reclaimed_topics: Option<u64>,
}

impl Expectations {
    /// True when no expectation is spelled out (→ `all_ok` is implied).
    pub fn is_unconstrained(&self) -> bool {
        *self == Expectations::default()
    }

    /// Checks a finished run against these expectations. Empty vector =
    /// the scenario passed.
    pub fn check(&self, out: &RunOutcome) -> Vec<String> {
        let eff = if self.is_unconstrained() {
            Expectations {
                all_ok: Some(true),
                ..Expectations::default()
            }
        } else {
            *self
        };
        let mut fails = Vec::new();
        let mut want = |name: &str, expected: Option<bool>, got: bool| {
            if let Some(w) = expected {
                if got != w {
                    fails.push(format!("expected {name} = {w}, run produced {got}"));
                }
            }
        };
        want("all_ok", eff.all_ok, out.all_ok());
        want("validity", eff.validity, out.report.validity.ok());
        want("agreement", eff.agreement, out.report.agreement.ok());
        want("integrity", eff.integrity, out.report.integrity.ok());
        want("quiescent", eff.quiescent, out.quiescent);
        want(
            "topics_all_ok",
            eff.topics_all_ok,
            out.per_topic.iter().all(|t| t.report.all_ok()),
        );
        if let Some(min) = eff.min_deliveries {
            let got = out.metrics.deliveries.len();
            if got < min {
                fails.push(format!(
                    "expected at least {min} deliveries, run produced {got}"
                ));
            }
        }
        if let Some(min) = eff.min_deliveries_per_topic {
            for t in &out.per_topic {
                if t.deliveries < min {
                    fails.push(format!(
                        "expected at least {min} deliveries on topic {}, run produced {}",
                        t.topic, t.deliveries
                    ));
                }
            }
        }
        if let Some(min) = eff.min_reclaimed_topics {
            let got = out.topics_reclaimed();
            if got < min {
                fails.push(format!(
                    "expected at least {min} reclaimed topic instances, run produced {got}"
                ));
            }
        }
        fails
    }
}

/// The `[check]` table: per-scenario bounds for the systematic explorer
/// (`urb-check`, DESIGN.md §11). A scenario ships the exploration budget
/// that makes its interesting schedules reachable — depth of the choice
/// tree, the adversarial loss budget, per-process Task-1 sweeps, the
/// `dpor-lite` deviation budget and the random-walk count — so `urb check
/// <file>` needs no hand-tuned flags. Absent table = library defaults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckBounds {
    /// Maximum choices along one explored execution.
    pub depth: u32,
    /// Adversarial message-drop budget per execution (batch thinning).
    pub max_drops: u32,
    /// Task-1 sweeps the explorer may schedule per process.
    pub tick_budget: u32,
    /// Deviation budget of the `dpor-lite` delay-bounded strategy.
    pub delay_budget: u32,
    /// Number of walks of the seeded random-walk strategy.
    pub walks: u32,
    /// Default strategy for this scenario (`"dfs"`, `"dpor-lite"` or
    /// `"random"`; `None` = the CLI default).
    pub strategy: Option<String>,
}

impl Default for CheckBounds {
    fn default() -> Self {
        CheckBounds {
            depth: 96,
            max_drops: 2,
            tick_budget: 1,
            delay_budget: 4,
            walks: 64,
            strategy: None,
        }
    }
}

/// A complete declarative scenario. See the module docs for the pipeline
/// and DESIGN.md §9 for the file schema.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and experiment tables).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Root RNG seed.
    pub seed: u64,
    /// System size `n`.
    pub n: usize,
    /// Number of concurrent URB instances (topics); `1` when the
    /// `[topics]` table is absent (DESIGN.md §12).
    pub topics: u32,
    /// Planned topic-lifecycle events (`[[topics.events]]`, DESIGN.md
    /// §15), in file order; compiled sorted by time.
    pub topic_events: Vec<TopicEventSpec>,
    /// `[topics].drain_ticks`: the drain budget for retiring topics
    /// (absent = the engine default).
    pub drain_ticks: Option<u32>,
    /// Protocol under test.
    pub algorithm: Algorithm,
    /// Hard horizon in ticks.
    pub horizon: u64,
    /// Task-1 sweep period.
    pub tick_interval: u64,
    /// Uniform jitter added to each sweep period.
    pub tick_jitter: u64,
    /// State-size sampling period (0 = off).
    pub stats_interval: u64,
    /// Histogram window for the quiescence curve.
    pub window: u64,
    /// Early-stop policy.
    pub stop: StopRule,
    /// Mesh-wide loss model.
    pub loss: LossModel,
    /// Mesh-wide delay model.
    pub delay: DelayModel,
    /// Failure-detector selection (absent = by algorithm).
    pub fd: Option<FdSpec>,
    /// Per-link loss/delay overrides.
    pub links: Vec<LinkSpec>,
    /// Raw time-windowed link outages.
    pub blackouts: Vec<Blackout>,
    /// The application workload.
    pub workload: WorkloadSpec,
    /// Explicit per-process crash rules.
    pub crashes: Vec<CrashRuleSpec>,
    /// Random crash adversary (composes with explicit rules; explicit
    /// rules win on conflict).
    pub crash_random: Option<RandomCrashSpec>,
    /// Named adversary shapes, applied in order.
    pub schedules: Vec<Schedule>,
    /// The scenario-level verdict.
    pub expect: Expectations,
    /// Exploration bounds for `urb check` (DESIGN.md §11).
    pub check: CheckBounds,
    /// Bounded-memory mode (`[memory]` table, DESIGN.md §14); absent =
    /// unbounded, byte-identical to the pre-memory-plane simulator.
    pub memory: Option<MemoryConfig>,
}

impl ScenarioSpec {
    /// A minimal spec with library defaults: one broadcast, reliable
    /// links, no crashes, stop on quiescence.
    pub fn new(name: &str, n: usize, algorithm: Algorithm) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            description: String::new(),
            seed: 1,
            n,
            topics: 1,
            topic_events: Vec::new(),
            drain_ticks: None,
            algorithm,
            horizon: 100_000,
            tick_interval: 10,
            tick_jitter: 3,
            stats_interval: 0,
            window: 1_000,
            stop: StopRule::default(),
            loss: LossModel::None,
            delay: DelayModel::default(),
            fd: None,
            links: Vec::new(),
            blackouts: Vec::new(),
            workload: WorkloadSpec::default(),
            crashes: Vec::new(),
            crash_random: None,
            schedules: Vec::new(),
            expect: Expectations::default(),
            check: CheckBounds::default(),
            memory: None,
        }
    }

    /// Parses a TOML scenario file (see [`crate::minitoml`] for the
    /// supported subset).
    pub fn from_toml_str(input: &str) -> Result<Self, SpecError> {
        let value = minitoml::parse(input).map_err(|e| SpecError::new(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parses a JSON scenario file (same schema, JSON syntax).
    pub fn from_json_str(input: &str) -> Result<Self, SpecError> {
        let value = serde_json::from_str(input).map_err(|e| SpecError::new(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parses scenario text, choosing the format from the file name
    /// (`.json` → JSON, anything else → TOML).
    pub fn from_named_str(path: &str, input: &str) -> Result<Self, SpecError> {
        if path.ends_with(".json") {
            Self::from_json_str(input)
        } else {
            Self::from_toml_str(input)
        }
    }

    /// Decodes a spec from the shared [`Value`] tree. Unknown keys are
    /// rejected at every level.
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        let map = as_table(value, "scenario")?;
        check_keys(
            map,
            &[
                "name",
                "description",
                "seed",
                "n",
                "topics",
                "algorithm",
                "horizon",
                "tick_interval",
                "tick_jitter",
                "stats_interval",
                "window",
                "stop",
                "loss",
                "delay",
                "fd",
                "link",
                "blackout",
                "workload",
                "crash",
                "crash_random",
                "schedule",
                "expect",
                "check",
                "memory",
            ],
            "scenario",
        )?;
        let n = req_usize(map, "n")?;
        let mut spec = ScenarioSpec::new(&req_str(map, "name")?, n, Algorithm::Quiescent);
        if let Some(v) = map.get("topics") {
            let t = as_table(v, "topics")?;
            check_keys(t, &["count", "drain_ticks", "events"], "topics")?;
            spec.topics = req_u64(t, "count")? as u32;
            if let Some(d) = t.get("drain_ticks") {
                spec.drain_ticks = Some(as_u64(d, "topics.drain_ticks")? as u32);
            }
            if let Some(evs) = t.get("events") {
                for item in as_array(evs, "topics.events")? {
                    spec.topic_events.push(decode_topic_event(item)?);
                }
            }
        }
        spec.algorithm = match map.get("algorithm") {
            Some(v) => parse_algorithm(as_str(v, "algorithm")?)?,
            None => Algorithm::Quiescent,
        };
        spec.description = opt_str(map, "description", "")?;
        spec.seed = opt_u64(map, "seed", spec.seed)?;
        spec.horizon = opt_u64(map, "horizon", spec.horizon)?;
        spec.tick_interval = opt_u64(map, "tick_interval", spec.tick_interval)?;
        spec.tick_jitter = opt_u64(map, "tick_jitter", spec.tick_jitter)?;
        spec.stats_interval = opt_u64(map, "stats_interval", spec.stats_interval)?;
        spec.window = opt_u64(map, "window", spec.window)?;
        if let Some(v) = map.get("stop") {
            spec.stop = StopRule::from_str(as_str(v, "stop")?)?;
        }
        if let Some(v) = map.get("loss") {
            spec.loss = decode_loss(v)?;
        }
        if let Some(v) = map.get("delay") {
            spec.delay = decode_delay(v)?;
        }
        if let Some(v) = map.get("fd") {
            spec.fd = Some(decode_fd(v)?);
        }
        if let Some(v) = map.get("link") {
            for item in as_array(v, "link")? {
                spec.links.push(decode_link(item)?);
            }
        }
        if let Some(v) = map.get("blackout") {
            for item in as_array(v, "blackout")? {
                spec.blackouts.push(decode_blackout(item)?);
            }
        }
        if let Some(v) = map.get("workload") {
            spec.workload = decode_workload(v)?;
        }
        if let Some(v) = map.get("crash") {
            for item in as_array(v, "crash")? {
                spec.crashes.push(decode_crash(item)?);
            }
        }
        if let Some(v) = map.get("crash_random") {
            spec.crash_random = Some(decode_crash_random(v)?);
        }
        if let Some(v) = map.get("schedule") {
            for item in as_array(v, "schedule")? {
                spec.schedules.push(decode_schedule(item)?);
            }
        }
        if let Some(v) = map.get("expect") {
            spec.expect = decode_expect(v)?;
        }
        if let Some(v) = map.get("check") {
            spec.check = decode_check(v)?;
        }
        if let Some(v) = map.get("memory") {
            spec.memory = Some(decode_memory(v)?);
        }
        Ok(spec)
    }

    /// Renders the spec as canonical TOML. The guarantee the round-trip
    /// property test enforces: `from_toml_str(spec.to_toml()) == spec`.
    pub fn to_toml(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = writeln!(s, "name = {}", toml_str(&self.name));
        if !self.description.is_empty() {
            let _ = writeln!(s, "description = {}", toml_str(&self.description));
        }
        let _ = writeln!(s, "seed = {}", self.seed);
        let _ = writeln!(s, "n = {}", self.n);
        let _ = writeln!(
            s,
            "algorithm = {}",
            toml_str(&format_algorithm(self.algorithm))
        );
        let _ = writeln!(s, "horizon = {}", self.horizon);
        let _ = writeln!(s, "tick_interval = {}", self.tick_interval);
        let _ = writeln!(s, "tick_jitter = {}", self.tick_jitter);
        if self.stats_interval != 0 {
            let _ = writeln!(s, "stats_interval = {}", self.stats_interval);
        }
        let _ = writeln!(s, "window = {}", self.window);
        let _ = writeln!(s, "stop = {}", toml_str(self.stop.as_str()));
        let _ = writeln!(s, "loss = {}", encode_loss(&self.loss));
        let _ = writeln!(s, "delay = {}", encode_delay(&self.delay));
        if let Some(fd) = &self.fd {
            s.push_str(&encode_fd(fd));
        }
        if self.topics != 1 || self.drain_ticks.is_some() || !self.topic_events.is_empty() {
            let _ = writeln!(s, "\n[topics]");
            let _ = writeln!(s, "count = {}", self.topics);
            if let Some(d) = self.drain_ticks {
                let _ = writeln!(s, "drain_ticks = {d}");
            }
            for e in &self.topic_events {
                let _ = writeln!(s, "\n[[topics.events]]");
                let _ = writeln!(s, "at = {}", e.at);
                match e.action {
                    TopicActionSpec::Create { topic, algorithm } => {
                        let _ = writeln!(s, "create = {topic}");
                        if let Some(a) = algorithm {
                            let _ = writeln!(s, "algorithm = {}", toml_str(&format_algorithm(a)));
                        }
                    }
                    TopicActionSpec::Retire { topic } => {
                        let _ = writeln!(s, "retire = {topic}");
                    }
                }
            }
        }
        match &self.workload {
            WorkloadSpec::Generated {
                count,
                spacing,
                start,
            } => {
                let _ = writeln!(s, "\n[workload]");
                let _ = writeln!(s, "count = {count}");
                let _ = writeln!(s, "spacing = {spacing}");
                let _ = writeln!(s, "start = {start}");
            }
            WorkloadSpec::PerTopic(list) => {
                for w in list {
                    let _ = writeln!(s, "\n[[workload]]");
                    let _ = writeln!(s, "topic = {}", w.topic);
                    let _ = writeln!(s, "count = {}", w.count);
                    let _ = writeln!(s, "spacing = {}", w.spacing);
                    let _ = writeln!(s, "start = {}", w.start);
                }
            }
            WorkloadSpec::Explicit(list) => {
                for b in list {
                    let _ = writeln!(s, "\n[[workload.explicit]]");
                    let _ = writeln!(s, "time = {}", b.time);
                    let _ = writeln!(s, "pid = {}", b.pid);
                    if b.topic != 0 {
                        let _ = writeln!(s, "topic = {}", b.topic);
                    }
                    let _ = writeln!(s, "payload = {}", toml_str(&b.payload));
                }
            }
        }
        for c in &self.crashes {
            let _ = writeln!(s, "\n[[crash]]");
            let _ = writeln!(s, "pid = {}", c.pid);
            match c.rule {
                CrashRule::At(t) => {
                    let _ = writeln!(s, "at = {t}");
                }
                CrashRule::OnFirstDelivery { delay } => {
                    let _ = writeln!(s, "on_first_delivery = true");
                    let _ = writeln!(s, "delay = {delay}");
                }
                // `never` exempts the pid from a [crash_random] draw.
                CrashRule::Never => {
                    let _ = writeln!(s, "never = true");
                }
            }
        }
        if let Some(r) = &self.crash_random {
            let _ = writeln!(s, "\n[crash_random]");
            let _ = writeln!(s, "count = {}", r.count);
            let _ = writeln!(s, "horizon = {}", r.horizon);
            if let Some(p) = r.protect {
                let _ = writeln!(s, "protect = {p}");
            }
        }
        for l in &self.links {
            let _ = writeln!(s, "\n[[link]]");
            let _ = writeln!(s, "from = {}", l.from);
            let _ = writeln!(s, "to = {}", l.to);
            if let Some(loss) = &l.loss {
                let _ = writeln!(s, "loss = {}", encode_loss(loss));
            }
            if let Some(delay) = &l.delay {
                let _ = writeln!(s, "delay = {}", encode_delay(delay));
            }
        }
        for b in &self.blackouts {
            let _ = writeln!(s, "\n[[blackout]]");
            let _ = writeln!(s, "from = {}", b.from);
            let _ = writeln!(s, "to = {}", b.to);
            let _ = writeln!(s, "start = {}", b.start);
            let _ = writeln!(s, "end = {}", b.end);
        }
        for sched in &self.schedules {
            s.push_str(&encode_schedule(sched));
        }
        if !self.expect.is_unconstrained() {
            let _ = writeln!(s, "\n[expect]");
            let mut bool_line = |key: &str, v: Option<bool>| {
                if let Some(b) = v {
                    let _ = writeln!(s, "{key} = {b}");
                }
            };
            bool_line("all_ok", self.expect.all_ok);
            bool_line("validity", self.expect.validity);
            bool_line("agreement", self.expect.agreement);
            bool_line("integrity", self.expect.integrity);
            bool_line("quiescent", self.expect.quiescent);
            bool_line("topics_all_ok", self.expect.topics_all_ok);
            if let Some(m) = self.expect.min_deliveries {
                let _ = writeln!(s, "min_deliveries = {m}");
            }
            if let Some(m) = self.expect.min_deliveries_per_topic {
                let _ = writeln!(s, "min_deliveries_per_topic = {m}");
            }
            if let Some(m) = self.expect.min_reclaimed_topics {
                let _ = writeln!(s, "min_reclaimed_topics = {m}");
            }
        }
        if self.check != CheckBounds::default() {
            let d = CheckBounds::default();
            let _ = writeln!(s, "\n[check]");
            let mut num_line = |key: &str, v: u32, default: u32| {
                if v != default {
                    let _ = writeln!(s, "{key} = {v}");
                }
            };
            num_line("depth", self.check.depth, d.depth);
            num_line("max_drops", self.check.max_drops, d.max_drops);
            num_line("tick_budget", self.check.tick_budget, d.tick_budget);
            num_line("delay_budget", self.check.delay_budget, d.delay_budget);
            num_line("walks", self.check.walks, d.walks);
            if let Some(st) = &self.check.strategy {
                let _ = writeln!(s, "strategy = {}", toml_str(st));
            }
        }
        if let Some(m) = &self.memory {
            let _ = writeln!(s, "\n[memory]");
            let _ = writeln!(s, "grace_ticks = {}", m.grace_ticks);
            let _ = writeln!(s, "conservative = {}", m.conservative);
            let _ = writeln!(s, "tombstones = {}", m.tombstones);
            if let Some(c) = m.ceiling {
                let _ = writeln!(s, "ceiling = {c}");
            }
            let _ = writeln!(
                s,
                "spill = {}",
                toml_str(match m.spill {
                    SpillPolicy::StableOnly => "stable-only",
                    SpillPolicy::Tombstones => "tombstones",
                })
            );
        }
        s
    }

    /// Compiles the spec into a runnable [`SimConfig`], validating every
    /// cross-field constraint on the way (pid ranges, resilience bounds,
    /// probability ranges, window sanity).
    pub fn compile(&self) -> Result<SimConfig, SpecError> {
        let n = self.n;
        if n == 0 {
            return Err(SpecError::new("n must be positive"));
        }
        if self.topics == 0 {
            return Err(SpecError::new("topics.count must be positive"));
        }
        let mut cfg = SimConfig::new(n, self.algorithm)
            .seed(self.seed)
            .max_time(self.horizon);
        cfg.topics = self.topics;
        cfg.tick_interval = self.tick_interval;
        cfg.tick_jitter = self.tick_jitter;
        cfg.stats_interval = self.stats_interval;
        cfg.window = self.window.max(1);
        cfg.loss = self.loss;
        cfg.delay = self.delay;
        cfg.memory = self.memory;
        check_loss(&self.loss)?;
        (cfg.stop_on_quiescence, cfg.stop_on_full_delivery) = match self.stop {
            StopRule::Quiescence => (true, false),
            StopRule::FullDelivery => (true, true),
            StopRule::Horizon => (false, false),
        };
        if let Some(fd) = &self.fd {
            cfg.fd = match fd {
                FdSpec::None => FdKind::None,
                FdSpec::Oracle(c) => FdKind::Oracle(*c),
                FdSpec::Heartbeat(c) => FdKind::Heartbeat(*c),
            };
        }

        // Lifecycle plan (DESIGN.md §15): events apply in time order
        // (file order among equal times). Validation walks the plan with
        // a live-set: creates must target ids outside the static range
        // that are not currently live; retires must target something
        // live at that instant.
        let mut events = self.topic_events.clone();
        events.sort_by_key(|e| e.at);
        let mut live: std::collections::BTreeSet<u32> = (0..self.topics).collect();
        let mut dynamic: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for e in &events {
            match e.action {
                TopicActionSpec::Create { topic, .. } => {
                    if topic < self.topics {
                        return Err(SpecError::new(format!(
                            "topics.events: create of topic {topic} which is statically \
                             configured (topics.count = {})",
                            self.topics
                        )));
                    }
                    if !live.insert(topic) {
                        return Err(SpecError::new(format!(
                            "topics.events: create of topic {topic} at t={} while it is \
                             already live",
                            e.at
                        )));
                    }
                    dynamic.insert(topic);
                }
                TopicActionSpec::Retire { topic } => {
                    if !live.remove(&topic) {
                        return Err(SpecError::new(format!(
                            "topics.events: retire of topic {topic} at t={} while it is \
                             not live",
                            e.at
                        )));
                    }
                }
            }
        }
        cfg.topic_events = events
            .iter()
            .map(|e| crate::sim::TopicEventCfg {
                time: e.at,
                action: match e.action {
                    TopicActionSpec::Create { topic, algorithm } => TopicAction::Create {
                        topic: TopicId(topic),
                        algorithm,
                    },
                    TopicActionSpec::Retire { topic } => TopicAction::Retire {
                        topic: TopicId(topic),
                    },
                },
            })
            .collect();
        if let Some(d) = self.drain_ticks {
            cfg.drain_ticks = d;
        }

        let check_topic = |topic: u32, what: &str| -> Result<(), SpecError> {
            if topic >= self.topics && !dynamic.contains(&topic) {
                Err(SpecError::new(format!(
                    "{what} {topic} out of range for topics.count = {} (and no \
                     [[topics.events]] create for it)",
                    self.topics
                )))
            } else {
                Ok(())
            }
        };
        cfg.broadcasts = match &self.workload {
            WorkloadSpec::Generated {
                count,
                spacing,
                start,
            } => (0..*count)
                .map(|i| PlannedBroadcast {
                    time: start + i as u64 * spacing,
                    pid: i % n,
                    topic: TopicId::ZERO,
                    payload: Payload::from(format!("m{i}").as_str()),
                })
                .collect(),
            WorkloadSpec::PerTopic(list) => {
                let mut planned = Vec::new();
                for w in list {
                    check_topic(w.topic, "workload topic")?;
                    for i in 0..w.count {
                        planned.push(PlannedBroadcast {
                            time: w.start + i as u64 * w.spacing,
                            pid: i % n,
                            topic: TopicId(w.topic),
                            payload: Payload::from(format!("t{}m{i}", w.topic).as_str()),
                        });
                    }
                }
                // Deterministic event-queue order: by time, then topic,
                // then the stream's own index order (already stable).
                planned.sort_by_key(|b| (b.time, b.topic));
                planned
            }
            WorkloadSpec::Explicit(list) => list
                .iter()
                .map(|b| {
                    check_pid(n, b.pid, "workload pid")?;
                    check_topic(b.topic, "workload topic")?;
                    Ok(PlannedBroadcast {
                        time: b.time,
                        pid: b.pid,
                        topic: TopicId(b.topic),
                        payload: Payload::from(b.payload.as_str()),
                    })
                })
                .collect::<Result<_, SpecError>>()?,
        };

        // Crash plan: random base first, explicit rules on top.
        let mut rules: Vec<CrashRule> = match &self.crash_random {
            Some(r) => {
                if r.count >= n {
                    return Err(SpecError::new(format!(
                        "crash_random.count {} leaves no correct process (n = {n})",
                        r.count
                    )));
                }
                if let Some(p) = r.protect {
                    check_pid(n, p, "crash_random.protect")?;
                }
                let plan =
                    CrashPlan::random(n, r.count, r.horizon, self.seed ^ 0xAD7E_C5A1, r.protect);
                (0..n).map(|i| plan.rule(i)).collect()
            }
            None => vec![CrashRule::Never; n],
        };
        for c in &self.crashes {
            check_pid(n, c.pid, "crash pid")?;
            rules[c.pid] = c.rule;
        }
        cfg.crashes = CrashPlan::from_rules(rules);
        if cfg.crashes.faulty_count() >= n {
            return Err(SpecError::new(
                "crash plan leaves no correct process (the model requires one)",
            ));
        }

        for l in &self.links {
            check_pid(n, l.from, "link.from")?;
            check_pid(n, l.to, "link.to")?;
            if l.loss.is_none() && l.delay.is_none() {
                return Err(SpecError::new(format!(
                    "link {} → {} overrides neither loss nor delay",
                    l.from, l.to
                )));
            }
            if let Some(loss) = l.loss {
                check_loss(&loss)?;
                cfg.link_overrides.push(LinkOverride {
                    from: l.from,
                    to: l.to,
                    loss,
                });
            }
            if let Some(delay) = l.delay {
                cfg.delay_overrides.push(DelayOverride {
                    from: l.from,
                    to: l.to,
                    delay,
                });
            }
        }
        for b in &self.blackouts {
            check_pid(n, b.from, "blackout.from")?;
            check_pid(n, b.to, "blackout.to")?;
            if b.start >= b.end {
                return Err(SpecError::new(format!(
                    "blackout window [{}, {}) never opens",
                    b.start, b.end
                )));
            }
            cfg.blackouts.push(*b);
        }
        for sched in &self.schedules {
            sched
                .apply(&mut cfg)
                .map_err(|e| SpecError::new(format!("schedule {:?}: {e}", sched.kind())))?;
        }
        Ok(cfg)
    }

    /// Compiles and runs the scenario, returning the outcome and the list
    /// of violated expectations (empty = the scenario passed).
    pub fn run(&self) -> Result<(RunOutcome, Vec<String>), SpecError> {
        let out = crate::sim::run(self.compile()?);
        let fails = self.expect.check(&out);
        Ok((out, fails))
    }
}

// ------------------------------------------------------------------
// The embedded corpus.

/// The shipped scenario corpus (`scenarios/*.toml`), embedded so tests,
/// benches and examples replay it regardless of working directory. Pairs
/// of `(file stem, TOML text)`.
pub fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "clean_smoke",
            include_str!("../../../scenarios/clean_smoke.toml"),
        ),
        (
            "lossy_crashes",
            include_str!("../../../scenarios/lossy_crashes.toml"),
        ),
        (
            "partition_heal",
            include_str!("../../../scenarios/partition_heal.toml"),
        ),
        (
            "ack_starvation",
            include_str!("../../../scenarios/ack_starvation.toml"),
        ),
        ("churn", include_str!("../../../scenarios/churn.toml")),
        (
            "crash_storm",
            include_str!("../../../scenarios/crash_storm.toml"),
        ),
        (
            "targeted_delay",
            include_str!("../../../scenarios/targeted_delay.toml"),
        ),
        (
            "theorem2_violation",
            include_str!("../../../scenarios/theorem2_violation.toml"),
        ),
        (
            "two_topics_smoke",
            include_str!("../../../scenarios/two_topics_smoke.toml"),
        ),
        (
            "cross_topic_storm",
            include_str!("../../../scenarios/cross_topic_storm.toml"),
        ),
        (
            "bounded_memory",
            include_str!("../../../scenarios/bounded_memory.toml"),
        ),
        (
            "dynamic_topics",
            include_str!("../../../scenarios/dynamic_topics.toml"),
        ),
    ]
}

// ------------------------------------------------------------------
// Algorithm names.

/// Parses the spec-file algorithm string (`"majority"`, `"quiescent"`,
/// `"quiescent-literal"`, `"best-effort"`, `"eager-rb"`, `"backoff:<cap>"`,
/// `"weakened:<threshold>"`).
pub fn parse_algorithm(s: &str) -> Result<Algorithm, SpecError> {
    if let Some(cap) = s.strip_prefix("backoff:") {
        let cap: u32 = cap
            .parse()
            .map_err(|_| SpecError::new(format!("bad backoff cap in {s:?}")))?;
        return Ok(Algorithm::MajorityBackoff { cap });
    }
    if let Some(th) = s.strip_prefix("weakened:") {
        let threshold: u32 = th
            .parse()
            .map_err(|_| SpecError::new(format!("bad weakened threshold in {s:?}")))?;
        return Ok(Algorithm::WeakenedMajority { threshold });
    }
    Ok(match s {
        "majority" => Algorithm::Majority,
        "quiescent" => Algorithm::Quiescent,
        "quiescent-literal" => Algorithm::QuiescentLiteral,
        "best-effort" => Algorithm::BestEffort,
        "eager-rb" => Algorithm::EagerRb,
        other => {
            return Err(SpecError::new(format!(
                "unknown algorithm {other:?} (majority | quiescent | quiescent-literal | \
                 best-effort | eager-rb | backoff:<cap> | weakened:<threshold>)"
            )))
        }
    })
}

/// Inverse of [`parse_algorithm`].
pub fn format_algorithm(alg: Algorithm) -> String {
    match alg {
        Algorithm::Majority => "majority".into(),
        Algorithm::Quiescent => "quiescent".into(),
        Algorithm::QuiescentLiteral => "quiescent-literal".into(),
        Algorithm::BestEffort => "best-effort".into(),
        Algorithm::EagerRb => "eager-rb".into(),
        Algorithm::MajorityBackoff { cap } => format!("backoff:{cap}"),
        Algorithm::WeakenedMajority { threshold } => format!("weakened:{threshold}"),
    }
}

// ------------------------------------------------------------------
// Value-tree decoding helpers.

fn as_table<'a>(v: &'a Value, what: &str) -> Result<&'a BTreeMap<String, Value>, SpecError> {
    match v {
        Value::Object(map) => Ok(map),
        _ => Err(SpecError::new(format!("{what} must be a table"))),
    }
}

fn as_array<'a>(v: &'a Value, what: &str) -> Result<&'a Vec<Value>, SpecError> {
    v.as_array()
        .ok_or_else(|| SpecError::new(format!("{what} must be an array")))
}

fn as_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, SpecError> {
    v.as_str()
        .ok_or_else(|| SpecError::new(format!("{what} must be a string")))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, SpecError> {
    v.as_u64()
        .ok_or_else(|| SpecError::new(format!("{what} must be a non-negative integer")))
}

fn as_f64(v: &Value, what: &str) -> Result<f64, SpecError> {
    v.as_f64()
        .ok_or_else(|| SpecError::new(format!("{what} must be a number")))
}

fn as_bool(v: &Value, what: &str) -> Result<bool, SpecError> {
    v.as_bool()
        .ok_or_else(|| SpecError::new(format!("{what} must be a boolean")))
}

fn check_keys(
    map: &BTreeMap<String, Value>,
    allowed: &[&str],
    what: &str,
) -> Result<(), SpecError> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(SpecError::new(format!(
                "unknown key `{key}` in {what} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn req_str(map: &BTreeMap<String, Value>, key: &str) -> Result<String, SpecError> {
    match map.get(key) {
        Some(v) => Ok(as_str(v, key)?.to_string()),
        None => Err(SpecError::new(format!("missing required key `{key}`"))),
    }
}

fn opt_str(map: &BTreeMap<String, Value>, key: &str, default: &str) -> Result<String, SpecError> {
    match map.get(key) {
        Some(v) => Ok(as_str(v, key)?.to_string()),
        None => Ok(default.to_string()),
    }
}

fn req_u64(map: &BTreeMap<String, Value>, key: &str) -> Result<u64, SpecError> {
    match map.get(key) {
        Some(v) => as_u64(v, key),
        None => Err(SpecError::new(format!("missing required key `{key}`"))),
    }
}

fn opt_u64(map: &BTreeMap<String, Value>, key: &str, default: u64) -> Result<u64, SpecError> {
    match map.get(key) {
        Some(v) => as_u64(v, key),
        None => Ok(default),
    }
}

fn req_usize(map: &BTreeMap<String, Value>, key: &str) -> Result<usize, SpecError> {
    Ok(req_u64(map, key)? as usize)
}

fn opt_f64(map: &BTreeMap<String, Value>, key: &str, default: f64) -> Result<f64, SpecError> {
    match map.get(key) {
        Some(v) => as_f64(v, key),
        None => Ok(default),
    }
}

fn pid_list(v: &Value, what: &str) -> Result<Vec<usize>, SpecError> {
    as_array(v, what)?
        .iter()
        .map(|item| Ok(as_u64(item, what)? as usize))
        .collect()
}

fn check_pid(n: usize, pid: usize, what: &str) -> Result<(), SpecError> {
    if pid >= n {
        Err(SpecError::new(format!(
            "{what} {pid} out of range for n = {n}"
        )))
    } else {
        Ok(())
    }
}

fn check_probability(p: f64, what: &str) -> Result<(), SpecError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(SpecError::new(format!("{what} {p} not in [0, 1]")))
    }
}

fn check_loss(loss: &LossModel) -> Result<(), SpecError> {
    match loss {
        LossModel::None | LossModel::Always => Ok(()),
        LossModel::Bernoulli { p } | LossModel::BoundedBernoulli { p, .. } => {
            check_probability(*p, "loss probability")
        }
        LossModel::Burst {
            p_enter,
            p_exit,
            p_loss,
        } => {
            check_probability(*p_enter, "burst p_enter")?;
            check_probability(*p_exit, "burst p_exit")?;
            check_probability(*p_loss, "burst p_loss")
        }
    }
}

fn decode_loss(v: &Value) -> Result<LossModel, SpecError> {
    if let Some(s) = v.as_str() {
        return match s {
            "none" => Ok(LossModel::None),
            "always" => Ok(LossModel::Always),
            other => Err(SpecError::new(format!(
                "loss {other:?} needs a table form (only \"none\" and \"always\" are bare)"
            ))),
        };
    }
    let map = as_table(v, "loss")?;
    let model = req_str(map, "model")?;
    match model.as_str() {
        "none" => {
            check_keys(map, &["model"], "loss")?;
            Ok(LossModel::None)
        }
        "always" => {
            check_keys(map, &["model"], "loss")?;
            Ok(LossModel::Always)
        }
        "bernoulli" => {
            check_keys(map, &["model", "p"], "loss")?;
            Ok(LossModel::Bernoulli {
                p: as_f64(
                    map.get("p")
                        .ok_or_else(|| SpecError::new("bernoulli loss needs `p`"))?,
                    "p",
                )?,
            })
        }
        "bounded-bernoulli" => {
            check_keys(map, &["model", "p", "max_consecutive"], "loss")?;
            Ok(LossModel::BoundedBernoulli {
                p: opt_f64(map, "p", 0.0)?,
                max_consecutive: req_u64(map, "max_consecutive")? as u32,
            })
        }
        "burst" => {
            check_keys(map, &["model", "p_enter", "p_exit", "p_loss"], "loss")?;
            Ok(LossModel::Burst {
                p_enter: opt_f64(map, "p_enter", 0.0)?,
                p_exit: opt_f64(map, "p_exit", 1.0)?,
                p_loss: opt_f64(map, "p_loss", 0.0)?,
            })
        }
        other => Err(SpecError::new(format!(
            "unknown loss model {other:?} (none | bernoulli | bounded-bernoulli | burst | always)"
        ))),
    }
}

fn encode_loss(loss: &LossModel) -> String {
    match loss {
        LossModel::None => "{ model = \"none\" }".into(),
        LossModel::Always => "{ model = \"always\" }".into(),
        LossModel::Bernoulli { p } => format!("{{ model = \"bernoulli\", p = {p:?} }}"),
        LossModel::BoundedBernoulli { p, max_consecutive } => format!(
            "{{ model = \"bounded-bernoulli\", p = {p:?}, max_consecutive = {max_consecutive} }}"
        ),
        LossModel::Burst {
            p_enter,
            p_exit,
            p_loss,
        } => format!(
            "{{ model = \"burst\", p_enter = {p_enter:?}, p_exit = {p_exit:?}, p_loss = {p_loss:?} }}"
        ),
    }
}

fn decode_delay(v: &Value) -> Result<DelayModel, SpecError> {
    let map = as_table(v, "delay")?;
    let model = req_str(map, "model")?;
    match model.as_str() {
        "constant" => {
            check_keys(map, &["model", "ticks"], "delay")?;
            Ok(DelayModel::Constant(req_u64(map, "ticks")?))
        }
        "uniform" => {
            check_keys(map, &["model", "min", "max"], "delay")?;
            let min = req_u64(map, "min")?;
            let max = req_u64(map, "max")?;
            if max < min {
                return Err(SpecError::new(format!(
                    "uniform delay max {max} below min {min}"
                )));
            }
            Ok(DelayModel::Uniform { min, max })
        }
        "geometric" => {
            check_keys(map, &["model", "base", "p_more", "cap"], "delay")?;
            let p_more = opt_f64(map, "p_more", 0.0)?;
            if !(0.0..1.0).contains(&p_more) {
                return Err(SpecError::new(format!(
                    "geometric delay p_more {p_more} not in [0, 1)"
                )));
            }
            Ok(DelayModel::GeometricTail {
                base: opt_u64(map, "base", 1)?,
                p_more,
                cap: req_u64(map, "cap")?,
            })
        }
        other => Err(SpecError::new(format!(
            "unknown delay model {other:?} (constant | uniform | geometric)"
        ))),
    }
}

fn encode_delay(delay: &DelayModel) -> String {
    match delay {
        DelayModel::Constant(t) => format!("{{ model = \"constant\", ticks = {t} }}"),
        DelayModel::Uniform { min, max } => {
            format!("{{ model = \"uniform\", min = {min}, max = {max} }}")
        }
        DelayModel::GeometricTail { base, p_more, cap } => {
            format!("{{ model = \"geometric\", base = {base}, p_more = {p_more:?}, cap = {cap} }}")
        }
    }
}

fn decode_fd(v: &Value) -> Result<FdSpec, SpecError> {
    let map = as_table(v, "fd")?;
    let kind = req_str(map, "kind")?;
    match kind.as_str() {
        "none" => {
            check_keys(map, &["kind"], "fd")?;
            Ok(FdSpec::None)
        }
        "oracle" => {
            check_keys(
                map,
                &[
                    "kind",
                    "appearance_spread",
                    "theta_removal_delay",
                    "pstar_removal_delay",
                    "pstar_ready_slack",
                    "faulty_knowledge",
                ],
                "fd",
            )?;
            let d = OracleConfig::default();
            Ok(FdSpec::Oracle(OracleConfig {
                appearance_spread: opt_u64(map, "appearance_spread", d.appearance_spread)?,
                theta_removal_delay: opt_u64(map, "theta_removal_delay", d.theta_removal_delay)?,
                pstar_removal_delay: opt_u64(map, "pstar_removal_delay", d.pstar_removal_delay)?,
                pstar_ready_slack: opt_u64(map, "pstar_ready_slack", d.pstar_ready_slack)?,
                faulty_knowledge: match map.get("faulty_knowledge") {
                    Some(v) => as_bool(v, "faulty_knowledge")?,
                    None => d.faulty_knowledge,
                },
            }))
        }
        "heartbeat" => {
            check_keys(map, &["kind", "period", "timeout"], "fd")?;
            let d = HeartbeatConfig::default();
            Ok(FdSpec::Heartbeat(HeartbeatConfig {
                period: opt_u64(map, "period", d.period)?,
                timeout: opt_u64(map, "timeout", d.timeout)?,
            }))
        }
        other => Err(SpecError::new(format!(
            "unknown fd kind {other:?} (none | oracle | heartbeat)"
        ))),
    }
}

fn encode_fd(fd: &FdSpec) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "\n[fd]");
    match fd {
        FdSpec::None => {
            let _ = writeln!(s, "kind = \"none\"");
        }
        FdSpec::Oracle(c) => {
            let _ = writeln!(s, "kind = \"oracle\"");
            let _ = writeln!(s, "appearance_spread = {}", c.appearance_spread);
            let _ = writeln!(s, "theta_removal_delay = {}", c.theta_removal_delay);
            let _ = writeln!(s, "pstar_removal_delay = {}", c.pstar_removal_delay);
            let _ = writeln!(s, "pstar_ready_slack = {}", c.pstar_ready_slack);
            let _ = writeln!(s, "faulty_knowledge = {}", c.faulty_knowledge);
        }
        FdSpec::Heartbeat(c) => {
            let _ = writeln!(s, "kind = \"heartbeat\"");
            let _ = writeln!(s, "period = {}", c.period);
            let _ = writeln!(s, "timeout = {}", c.timeout);
        }
    }
    s
}

fn decode_link(v: &Value) -> Result<LinkSpec, SpecError> {
    let map = as_table(v, "link")?;
    check_keys(map, &["from", "to", "loss", "delay"], "link")?;
    Ok(LinkSpec {
        from: req_usize(map, "from")?,
        to: req_usize(map, "to")?,
        loss: map.get("loss").map(decode_loss).transpose()?,
        delay: map.get("delay").map(decode_delay).transpose()?,
    })
}

fn decode_blackout(v: &Value) -> Result<Blackout, SpecError> {
    let map = as_table(v, "blackout")?;
    check_keys(map, &["from", "to", "start", "end"], "blackout")?;
    Ok(Blackout {
        from: req_usize(map, "from")?,
        to: req_usize(map, "to")?,
        start: req_u64(map, "start")?,
        end: req_u64(map, "end")?,
    })
}

fn decode_workload(v: &Value) -> Result<WorkloadSpec, SpecError> {
    // `[[workload]]` array form: one generated stream per topic.
    if let Some(items) = v.as_array() {
        let list = items
            .iter()
            .map(|item| {
                let map = as_table(item, "workload")?;
                check_keys(map, &["topic", "count", "spacing", "start"], "workload")?;
                Ok(TopicWorkload {
                    topic: opt_u64(map, "topic", 0)? as u32,
                    count: req_usize(map, "count")?,
                    spacing: opt_u64(map, "spacing", 100)?,
                    start: opt_u64(map, "start", 10)?,
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        if list.is_empty() {
            return Err(SpecError::new("[[workload]] must not be empty"));
        }
        return Ok(WorkloadSpec::PerTopic(list));
    }
    let map = as_table(v, "workload")?;
    check_keys(map, &["count", "spacing", "start", "explicit"], "workload")?;
    if let Some(list) = map.get("explicit") {
        if map.contains_key("count") {
            return Err(SpecError::new(
                "workload has both `count` and `explicit` — pick one form",
            ));
        }
        let list = as_array(list, "workload.explicit")?
            .iter()
            .map(|item| {
                let map = as_table(item, "workload.explicit")?;
                check_keys(
                    map,
                    &["time", "pid", "topic", "payload"],
                    "workload.explicit",
                )?;
                Ok(BroadcastSpec {
                    time: req_u64(map, "time")?,
                    pid: req_usize(map, "pid")?,
                    topic: opt_u64(map, "topic", 0)? as u32,
                    payload: req_str(map, "payload")?,
                })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        if list.is_empty() {
            return Err(SpecError::new("workload.explicit must not be empty"));
        }
        return Ok(WorkloadSpec::Explicit(list));
    }
    Ok(WorkloadSpec::Generated {
        count: req_usize(map, "count")?,
        spacing: opt_u64(map, "spacing", 100)?,
        start: opt_u64(map, "start", 10)?,
    })
}

fn decode_crash(v: &Value) -> Result<CrashRuleSpec, SpecError> {
    let map = as_table(v, "crash")?;
    check_keys(
        map,
        &["pid", "at", "on_first_delivery", "delay", "never"],
        "crash",
    )?;
    let pid = req_usize(map, "pid")?;
    let on_first = match map.get("on_first_delivery") {
        Some(v) => as_bool(v, "on_first_delivery")?,
        None => false,
    };
    let never = match map.get("never") {
        Some(v) => as_bool(v, "never")?,
        None => false,
    };
    // The three forms are mutually exclusive: a spec that says both would
    // otherwise run a *different* adversary than one of its lines claims.
    let forms = usize::from(on_first) + usize::from(never) + usize::from(map.contains_key("at"));
    if forms != 1 {
        return Err(SpecError::new(format!(
            "crash entry for pid {pid} needs exactly one of `at`, \
             `on_first_delivery = true` or `never = true`"
        )));
    }
    if map.contains_key("delay") && !on_first {
        return Err(SpecError::new(format!(
            "crash entry for pid {pid}: `delay` only applies to `on_first_delivery`"
        )));
    }
    let rule = if on_first {
        CrashRule::OnFirstDelivery {
            delay: opt_u64(map, "delay", 0)?,
        }
    } else if never {
        CrashRule::Never
    } else {
        CrashRule::At(req_u64(map, "at")?)
    };
    Ok(CrashRuleSpec { pid, rule })
}

fn decode_crash_random(v: &Value) -> Result<RandomCrashSpec, SpecError> {
    let map = as_table(v, "crash_random")?;
    check_keys(map, &["count", "horizon", "protect"], "crash_random")?;
    Ok(RandomCrashSpec {
        count: req_usize(map, "count")?,
        horizon: opt_u64(map, "horizon", 400)?,
        protect: map
            .get("protect")
            .map(|v| Ok::<usize, SpecError>(as_u64(v, "protect")? as usize))
            .transpose()?,
    })
}

fn decode_schedule(v: &Value) -> Result<Schedule, SpecError> {
    let map = as_table(v, "schedule")?;
    let kind = req_str(map, "kind")?;
    match kind.as_str() {
        "partition-heal" => {
            check_keys(map, &["kind", "a", "b", "start", "end"], "schedule")?;
            Ok(Schedule::PartitionHeal {
                a: pid_list(
                    map.get("a")
                        .ok_or_else(|| SpecError::new("partition-heal needs `a`"))?,
                    "a",
                )?,
                b: pid_list(
                    map.get("b")
                        .ok_or_else(|| SpecError::new("partition-heal needs `b`"))?,
                    "b",
                )?,
                start: opt_u64(map, "start", 0)?,
                end: req_u64(map, "end")?,
            })
        }
        "ack-starvation" => {
            check_keys(map, &["kind", "victim", "start", "end"], "schedule")?;
            Ok(Schedule::AckStarvation {
                victim: req_usize(map, "victim")?,
                start: opt_u64(map, "start", 0)?,
                end: req_u64(map, "end")?,
            })
        }
        "targeted-delay" => {
            check_keys(map, &["kind", "links", "base", "p_more", "cap"], "schedule")?;
            let links = as_array(
                map.get("links")
                    .ok_or_else(|| SpecError::new("targeted-delay needs `links`"))?,
                "links",
            )?
            .iter()
            .map(|pair| {
                let pair = as_array(pair, "links entry")?;
                if pair.len() != 2 {
                    return Err(SpecError::new("each links entry must be [from, to]"));
                }
                Ok((
                    as_u64(&pair[0], "links.from")? as usize,
                    as_u64(&pair[1], "links.to")? as usize,
                ))
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
            Ok(Schedule::TargetedDelay {
                links,
                base: opt_u64(map, "base", 1)?,
                p_more: opt_f64(map, "p_more", 0.5)?,
                cap: req_u64(map, "cap")?,
            })
        }
        "crash-storm" => {
            check_keys(
                map,
                &["kind", "count", "start", "width", "protect"],
                "schedule",
            )?;
            Ok(Schedule::CrashStorm {
                count: req_usize(map, "count")?,
                start: opt_u64(map, "start", 0)?,
                width: opt_u64(map, "width", 0)?,
                protect: map
                    .get("protect")
                    .map(|v| Ok::<usize, SpecError>(as_u64(v, "protect")? as usize))
                    .transpose()?,
            })
        }
        "churn" => {
            check_keys(
                map,
                &["kind", "a", "b", "start", "cut", "heal", "cycles"],
                "schedule",
            )?;
            Ok(Schedule::Churn {
                a: pid_list(
                    map.get("a")
                        .ok_or_else(|| SpecError::new("churn needs `a`"))?,
                    "a",
                )?,
                b: pid_list(
                    map.get("b")
                        .ok_or_else(|| SpecError::new("churn needs `b`"))?,
                    "b",
                )?,
                start: opt_u64(map, "start", 0)?,
                cut: req_u64(map, "cut")?,
                heal: req_u64(map, "heal")?,
                cycles: req_u64(map, "cycles")? as u32,
            })
        }
        other => Err(SpecError::new(format!(
            "unknown schedule kind {other:?} (partition-heal | ack-starvation | \
             targeted-delay | crash-storm | churn)"
        ))),
    }
}

fn encode_schedule(s: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n[[schedule]]");
    let _ = writeln!(out, "kind = {}", toml_str(s.kind()));
    let list = |v: &[usize]| -> String {
        let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        format!("[{}]", items.join(", "))
    };
    match s {
        Schedule::PartitionHeal { a, b, start, end } => {
            let _ = writeln!(out, "a = {}", list(a));
            let _ = writeln!(out, "b = {}", list(b));
            let _ = writeln!(out, "start = {start}");
            let _ = writeln!(out, "end = {end}");
        }
        Schedule::AckStarvation { victim, start, end } => {
            let _ = writeln!(out, "victim = {victim}");
            let _ = writeln!(out, "start = {start}");
            let _ = writeln!(out, "end = {end}");
        }
        Schedule::TargetedDelay {
            links,
            base,
            p_more,
            cap,
        } => {
            let pairs: Vec<String> = links.iter().map(|(f, t)| format!("[{f}, {t}]")).collect();
            let _ = writeln!(out, "links = [{}]", pairs.join(", "));
            let _ = writeln!(out, "base = {base}");
            let _ = writeln!(out, "p_more = {p_more:?}");
            let _ = writeln!(out, "cap = {cap}");
        }
        Schedule::CrashStorm {
            count,
            start,
            width,
            protect,
        } => {
            let _ = writeln!(out, "count = {count}");
            let _ = writeln!(out, "start = {start}");
            let _ = writeln!(out, "width = {width}");
            if let Some(p) = protect {
                let _ = writeln!(out, "protect = {p}");
            }
        }
        Schedule::Churn {
            a,
            b,
            start,
            cut,
            heal,
            cycles,
        } => {
            let _ = writeln!(out, "a = {}", list(a));
            let _ = writeln!(out, "b = {}", list(b));
            let _ = writeln!(out, "start = {start}");
            let _ = writeln!(out, "cut = {cut}");
            let _ = writeln!(out, "heal = {heal}");
            let _ = writeln!(out, "cycles = {cycles}");
        }
    }
    out
}

fn decode_topic_event(v: &Value) -> Result<TopicEventSpec, SpecError> {
    let map = as_table(v, "topics.events")?;
    check_keys(
        map,
        &["at", "create", "retire", "algorithm"],
        "topics.events",
    )?;
    let at = req_u64(map, "at")?;
    let action = match (map.get("create"), map.get("retire")) {
        (Some(c), None) => TopicActionSpec::Create {
            topic: as_u64(c, "topics.events.create")? as u32,
            algorithm: map
                .get("algorithm")
                .map(|a| parse_algorithm(as_str(a, "topics.events.algorithm")?))
                .transpose()?,
        },
        (None, Some(r)) => {
            if map.contains_key("algorithm") {
                return Err(SpecError::new(
                    "topics.events: `algorithm` only applies to `create` entries",
                ));
            }
            TopicActionSpec::Retire {
                topic: as_u64(r, "topics.events.retire")? as u32,
            }
        }
        _ => {
            return Err(SpecError::new(
                "topics.events entry needs exactly one of `create` / `retire`",
            ))
        }
    };
    Ok(TopicEventSpec { at, action })
}

fn decode_expect(v: &Value) -> Result<Expectations, SpecError> {
    let map = as_table(v, "expect")?;
    check_keys(
        map,
        &[
            "all_ok",
            "validity",
            "agreement",
            "integrity",
            "quiescent",
            "min_deliveries",
            "topics_all_ok",
            "min_deliveries_per_topic",
            "min_reclaimed_topics",
        ],
        "expect",
    )?;
    let get_bool = |key: &str| -> Result<Option<bool>, SpecError> {
        map.get(key).map(|v| as_bool(v, key)).transpose()
    };
    Ok(Expectations {
        all_ok: get_bool("all_ok")?,
        validity: get_bool("validity")?,
        agreement: get_bool("agreement")?,
        integrity: get_bool("integrity")?,
        quiescent: get_bool("quiescent")?,
        topics_all_ok: get_bool("topics_all_ok")?,
        min_deliveries: map
            .get("min_deliveries")
            .map(|v| Ok::<usize, SpecError>(as_u64(v, "min_deliveries")? as usize))
            .transpose()?,
        min_deliveries_per_topic: map
            .get("min_deliveries_per_topic")
            .map(|v| Ok::<usize, SpecError>(as_u64(v, "min_deliveries_per_topic")? as usize))
            .transpose()?,
        min_reclaimed_topics: map
            .get("min_reclaimed_topics")
            .map(|v| as_u64(v, "min_reclaimed_topics"))
            .transpose()?,
    })
}

fn decode_check(v: &Value) -> Result<CheckBounds, SpecError> {
    let map = as_table(v, "check")?;
    check_keys(
        map,
        &[
            "depth",
            "max_drops",
            "tick_budget",
            "delay_budget",
            "walks",
            "strategy",
        ],
        "check",
    )?;
    let d = CheckBounds::default();
    let strategy = match map.get("strategy") {
        Some(v) => {
            let s = as_str(v, "strategy")?;
            if !matches!(s, "dfs" | "dpor-lite" | "random") {
                return Err(SpecError::new(format!(
                    "unknown check strategy {s:?} (dfs | dpor-lite | random)"
                )));
            }
            Some(s.to_string())
        }
        None => None,
    };
    let bounds = CheckBounds {
        depth: opt_u64(map, "depth", d.depth as u64)? as u32,
        max_drops: opt_u64(map, "max_drops", d.max_drops as u64)? as u32,
        tick_budget: opt_u64(map, "tick_budget", d.tick_budget as u64)? as u32,
        delay_budget: opt_u64(map, "delay_budget", d.delay_budget as u64)? as u32,
        walks: opt_u64(map, "walks", d.walks as u64)? as u32,
        strategy,
    };
    if bounds.depth == 0 {
        return Err(SpecError::new("check.depth must be positive"));
    }
    if bounds.walks == 0 {
        return Err(SpecError::new("check.walks must be positive"));
    }
    Ok(bounds)
}

fn decode_memory(v: &Value) -> Result<MemoryConfig, SpecError> {
    let map = as_table(v, "memory")?;
    check_keys(
        map,
        &[
            "grace_ticks",
            "conservative",
            "tombstones",
            "ceiling",
            "spill",
        ],
        "memory",
    )?;
    let d = MemoryConfig::default();
    let spill = match map.get("spill") {
        Some(v) => match as_str(v, "spill")? {
            "stable-only" => SpillPolicy::StableOnly,
            "tombstones" => SpillPolicy::Tombstones,
            other => {
                return Err(SpecError::new(format!(
                    "unknown memory spill policy {other:?} (stable-only | tombstones)"
                )))
            }
        },
        None => d.spill,
    };
    Ok(MemoryConfig {
        grace_ticks: opt_u64(map, "grace_ticks", d.grace_ticks as u64)? as u32,
        conservative: match map.get("conservative") {
            Some(v) => as_bool(v, "memory.conservative")?,
            None => d.conservative,
        },
        tombstones: opt_u64(map, "tombstones", d.tombstones as u64)? as usize,
        ceiling: match map.get("ceiling") {
            Some(v) => Some(as_u64(v, "memory.ceiling")? as usize),
            None => None,
        },
        spill,
    })
}

fn toml_str(s: &str) -> String {
    format!("\"{}\"", serde_json::escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;

    #[test]
    fn minimal_toml_spec_gets_defaults() {
        let spec = ScenarioSpec::from_toml_str("name = \"tiny\"\nn = 4\n").unwrap();
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.n, 4);
        assert_eq!(spec.algorithm, Algorithm::Quiescent);
        assert_eq!(spec.stop, StopRule::Quiescence);
        assert_eq!(spec.loss, LossModel::None);
        assert!(spec.expect.is_unconstrained());
        let (out, fails) = spec.run().unwrap();
        assert!(fails.is_empty(), "{fails:?}");
        assert!(out.all_ok());
    }

    #[test]
    fn unknown_keys_are_rejected_everywhere() {
        for bad in [
            "name = \"x\"\nn = 4\ntypo = 1\n",
            "name = \"x\"\nn = 4\nloss = { model = \"bernoulli\", prob = 0.2 }\n",
            "name = \"x\"\nn = 4\n[expect]\nall_okay = true\n",
            "name = \"x\"\nn = 4\n[[schedule]]\nkind = \"churn\"\na = [0]\nb = [1]\ncut = 5\nheal = 5\ncycles = 1\nwat = 2\n",
        ] {
            let err = ScenarioSpec::from_toml_str(bad).unwrap_err();
            assert!(err.message.contains("unknown key"), "{err}");
        }
    }

    #[test]
    fn json_and_toml_decode_identically() {
        let toml = "name = \"pair\"\nn = 5\nalgorithm = \"majority\"\n\
                    loss = { model = \"bernoulli\", p = 0.25 }\nstop = \"full-delivery\"\n";
        let json = r#"{
            "name": "pair", "n": 5, "algorithm": "majority",
            "loss": {"model": "bernoulli", "p": 0.25}, "stop": "full-delivery"
        }"#;
        assert_eq!(
            ScenarioSpec::from_toml_str(toml).unwrap(),
            ScenarioSpec::from_json_str(json).unwrap()
        );
        assert_eq!(
            ScenarioSpec::from_named_str("x.json", json).unwrap(),
            ScenarioSpec::from_named_str("x.toml", toml).unwrap()
        );
    }

    #[test]
    fn to_toml_round_trips_a_kitchen_sink_spec() {
        let mut spec = ScenarioSpec::new("sink", 8, Algorithm::MajorityBackoff { cap: 16 });
        spec.description = "every field exercised \"quoted\"\nsecond line".into();
        spec.seed = 77;
        spec.horizon = 44_000;
        spec.stats_interval = 250;
        spec.stop = StopRule::FullDelivery;
        spec.loss = LossModel::Burst {
            p_enter: 0.02,
            p_exit: 0.2,
            p_loss: 0.9,
        };
        spec.delay = DelayModel::GeometricTail {
            base: 2,
            p_more: 0.5,
            cap: 30,
        };
        spec.fd = Some(FdSpec::Heartbeat(HeartbeatConfig {
            period: 25,
            timeout: 150,
        }));
        spec.links = vec![LinkSpec {
            from: 0,
            to: 3,
            loss: Some(LossModel::Always),
            delay: Some(DelayModel::Constant(9)),
        }];
        spec.blackouts = vec![Blackout {
            from: 1,
            to: 2,
            start: 5,
            end: 500,
        }];
        spec.workload = WorkloadSpec::Explicit(vec![BroadcastSpec {
            time: 10,
            pid: 1,
            topic: 0,
            payload: "hello \"world\"".into(),
        }]);
        spec.crashes = vec![
            CrashRuleSpec {
                pid: 6,
                rule: CrashRule::At(900),
            },
            CrashRuleSpec {
                pid: 7,
                rule: CrashRule::OnFirstDelivery { delay: 3 },
            },
            CrashRuleSpec {
                pid: 5,
                rule: CrashRule::Never,
            },
        ];
        spec.crash_random = Some(RandomCrashSpec {
            count: 1,
            horizon: 300,
            protect: Some(1),
        });
        spec.schedules = vec![
            Schedule::Churn {
                a: vec![0, 1, 2, 3],
                b: vec![4, 5, 6, 7],
                start: 50,
                cut: 200,
                heal: 400,
                cycles: 2,
            },
            Schedule::TargetedDelay {
                links: vec![(0, 4), (0, 5)],
                base: 1,
                p_more: 0.7,
                cap: 60,
            },
        ];
        spec.expect = Expectations {
            all_ok: Some(true),
            min_deliveries: Some(4),
            ..Expectations::default()
        };
        spec.check = CheckBounds {
            depth: 40,
            max_drops: 5,
            tick_budget: 2,
            delay_budget: 7,
            walks: 9,
            strategy: Some("dpor-lite".into()),
        };
        let toml = spec.to_toml();
        let parsed = ScenarioSpec::from_toml_str(&toml).unwrap();
        assert_eq!(parsed, spec, "round trip through:\n{toml}");
    }

    #[test]
    fn compile_validates_cross_field_constraints() {
        let base = "name = \"v\"\nn = 4\n";
        for (snippet, needle) in [
            ("[[crash]]\npid = 9\nat = 5\n", "out of range"),
            (
                "[[crash]]\npid = 0\nat = 1\n[[crash]]\npid = 1\nat = 1\n\
                 [[crash]]\npid = 2\nat = 1\n[[crash]]\npid = 3\nat = 1\n",
                "no correct process",
            ),
            ("[crash_random]\ncount = 4\n", "no correct process"),
            ("[[link]]\nfrom = 0\nto = 1\n", "neither loss nor delay"),
            (
                "[[blackout]]\nfrom = 0\nto = 1\nstart = 9\nend = 9\n",
                "never opens",
            ),
            (
                "[[schedule]]\nkind = \"ack-starvation\"\nvictim = 8\nend = 10\n",
                "out of range",
            ),
            (
                "loss = { model = \"bernoulli\", p = 1.5 }\n",
                "not in [0, 1]",
            ),
        ] {
            let spec = ScenarioSpec::from_toml_str(&format!("{base}{snippet}")).unwrap();
            let err = spec.compile().unwrap_err();
            assert!(err.message.contains(needle), "{snippet:?} → {err}");
        }
    }

    #[test]
    fn crash_entry_forms_are_mutually_exclusive() {
        let base = "name = \"x\"\nn = 4\n";
        for bad in [
            "[[crash]]\npid = 1\non_first_delivery = true\nat = 5\n",
            "[[crash]]\npid = 1\nnever = true\nat = 5\n",
            "[[crash]]\npid = 1\n",
            "[[crash]]\npid = 1\nat = 5\ndelay = 2\n",
        ] {
            let err = ScenarioSpec::from_toml_str(&format!("{base}{bad}")).unwrap_err();
            assert!(err.message.contains("crash entry"), "{bad:?} → {err}");
        }
        // `never = true` exempts a pid from the random adversary's draw.
        let spec = ScenarioSpec::from_toml_str(
            "name = \"x\"\nn = 4\n[crash_random]\ncount = 3\nhorizon = 100\n\
             [[crash]]\npid = 2\nnever = true\n",
        )
        .unwrap();
        let cfg = spec.compile().unwrap();
        assert_eq!(cfg.crashes.rule(2), CrashRule::Never);
    }

    #[test]
    fn check_bounds_decode_validate_and_default() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"c\"\nn = 4\n[check]\ndepth = 30\nstrategy = \"random\"\n",
        )
        .unwrap();
        assert_eq!(spec.check.depth, 30);
        assert_eq!(spec.check.strategy.as_deref(), Some("random"));
        assert_eq!(
            spec.check.max_drops,
            CheckBounds::default().max_drops,
            "unset keys keep library defaults"
        );
        let plain = ScenarioSpec::from_toml_str("name = \"c\"\nn = 4\n").unwrap();
        assert_eq!(plain.check, CheckBounds::default());
        assert!(
            !plain.to_toml().contains("[check]"),
            "default bounds stay implicit"
        );
        for (bad, needle) in [
            ("[check]\ndepth = 0\n", "depth must be positive"),
            ("[check]\nwalks = 0\n", "walks must be positive"),
            ("[check]\nstrategy = \"bfs\"\n", "unknown check strategy"),
            ("[check]\nwat = 1\n", "unknown key"),
        ] {
            let err =
                ScenarioSpec::from_toml_str(&format!("name = \"c\"\nn = 4\n{bad}")).unwrap_err();
            assert!(err.message.contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn topics_table_and_per_topic_workloads_decode_and_run() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"twotopics\"\nn = 4\nalgorithm = \"majority\"\nstop = \"full-delivery\"\n\
             [topics]\ncount = 2\n\
             [[workload]]\ntopic = 0\ncount = 2\nspacing = 50\nstart = 10\n\
             [[workload]]\ntopic = 1\ncount = 1\nspacing = 50\nstart = 30\n\
             [expect]\ntopics_all_ok = true\nmin_deliveries_per_topic = 4\n",
        )
        .unwrap();
        assert_eq!(spec.topics, 2);
        match &spec.workload {
            WorkloadSpec::PerTopic(list) => {
                assert_eq!(list.len(), 2);
                assert_eq!(list[0].topic, 0);
                assert_eq!(list[1].count, 1);
            }
            other => panic!("wrong workload form: {other:?}"),
        }
        let cfg = spec.compile().unwrap();
        assert_eq!(cfg.topics, 2);
        assert_eq!(cfg.broadcasts.len(), 3);
        let (out, fails) = spec.run().unwrap();
        assert!(fails.is_empty(), "{fails:?}");
        assert_eq!(out.per_topic.len(), 2);
        assert!(out.all_topics_ok());
        // Round trip: the emitted TOML re-parses to the same spec.
        let parsed = ScenarioSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(parsed, spec, "round trip through:\n{}", spec.to_toml());
    }

    #[test]
    fn explicit_workload_entries_may_name_topics() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"xt\"\nn = 2\nalgorithm = \"majority\"\n[topics]\ncount = 3\n\
             [[workload.explicit]]\ntime = 10\npid = 0\ntopic = 2\npayload = \"late\"\n\
             [[workload.explicit]]\ntime = 5\npid = 1\npayload = \"default-topic\"\n",
        )
        .unwrap();
        let cfg = spec.compile().unwrap();
        assert_eq!(cfg.broadcasts[0].topic, urb_types::TopicId(2));
        assert_eq!(cfg.broadcasts[1].topic, urb_types::TopicId(0));
        let parsed = ScenarioSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn topic_validation_rejects_out_of_range_and_zero() {
        for (toml, needle) in [
            (
                "name = \"v\"\nn = 2\n[topics]\ncount = 2\n\
                 [[workload]]\ntopic = 5\ncount = 1\n",
                "out of range",
            ),
            (
                "name = \"v\"\nn = 2\n\
                 [[workload.explicit]]\ntime = 1\npid = 0\ntopic = 1\npayload = \"x\"\n",
                "out of range",
            ),
            ("name = \"v\"\nn = 2\n[topics]\ncount = 0\n", "positive"),
            ("name = \"v\"\nn = 2\n[topics]\nwat = 1\n", "unknown key"),
        ] {
            let err = ScenarioSpec::from_toml_str(toml)
                .and_then(|s| s.compile().map(|_| ()))
                .unwrap_err();
            assert!(err.message.contains(needle), "{toml:?} → {err}");
        }
    }

    #[test]
    fn topic_lifecycle_events_decode_compile_and_round_trip() {
        let spec = ScenarioSpec::from_toml_str(
            "name = \"dyn\"\nn = 4\nalgorithm = \"quiescent\"\n\
             [topics]\ncount = 1\ndrain_ticks = 8\n\
             [[topics.events]]\nat = 100\ncreate = 1\nalgorithm = \"majority\"\n\
             [[topics.events]]\nat = 200\ncreate = 2\n\
             [[topics.events]]\nat = 900\nretire = 1\n\
             [[workload.explicit]]\ntime = 150\npid = 0\ntopic = 1\npayload = \"d\"\n\
             [expect]\nmin_reclaimed_topics = 4\n",
        )
        .unwrap();
        assert_eq!(spec.drain_ticks, Some(8));
        assert_eq!(spec.expect.min_reclaimed_topics, Some(4));
        assert_eq!(spec.topic_events.len(), 3);
        assert_eq!(
            spec.topic_events[0],
            TopicEventSpec {
                at: 100,
                action: TopicActionSpec::Create {
                    topic: 1,
                    algorithm: Some(Algorithm::Majority),
                },
            }
        );
        assert_eq!(
            spec.topic_events[1].action,
            TopicActionSpec::Create {
                topic: 2,
                algorithm: None,
            },
            "omitted algorithm defaults to the run's at compile time"
        );
        assert_eq!(
            spec.topic_events[2].action,
            TopicActionSpec::Retire { topic: 1 }
        );
        let cfg = spec.compile().unwrap();
        assert_eq!(cfg.topic_events.len(), 3);
        assert_eq!(cfg.drain_ticks, 8);
        assert_eq!(cfg.broadcasts[0].topic, urb_types::TopicId(1));
        // Round trip: the emitted TOML re-parses to the same spec.
        let parsed = ScenarioSpec::from_toml_str(&spec.to_toml()).unwrap();
        assert_eq!(parsed, spec, "round trip through:\n{}", spec.to_toml());
    }

    #[test]
    fn topic_lifecycle_validation_rejects_inconsistent_plans() {
        // Schema errors surface at parse time.
        for (bad, needle) in [
            (
                "[[topics.events]]\nat = 1\ncreate = 1\nretire = 2\n",
                "exactly one of",
            ),
            ("[[topics.events]]\nat = 1\n", "exactly one of"),
            (
                "[[topics.events]]\nat = 1\nretire = 1\nalgorithm = \"majority\"\n",
                "only applies to `create`",
            ),
            (
                "[[topics.events]]\nat = 1\ncreate = 1\nwat = 2\n",
                "unknown key",
            ),
        ] {
            let toml = format!("name = \"v\"\nn = 2\n[topics]\ncount = 1\n{bad}");
            let err = ScenarioSpec::from_toml_str(&toml).unwrap_err();
            assert!(err.message.contains(needle), "{bad:?} → {err}");
        }
        // Plan-consistency errors surface when the live-set walk compiles.
        for (bad, needle) in [
            (
                "[[topics.events]]\nat = 5\ncreate = 0\n",
                "statically configured",
            ),
            (
                "[[topics.events]]\nat = 5\ncreate = 1\n\
                 [[topics.events]]\nat = 9\ncreate = 1\n",
                "already live",
            ),
            ("[[topics.events]]\nat = 5\nretire = 3\n", "not live"),
            (
                "[[workload.explicit]]\ntime = 1\npid = 0\ntopic = 4\npayload = \"x\"\n",
                "no [[topics.events]] create",
            ),
        ] {
            let toml = format!("name = \"v\"\nn = 2\n[topics]\ncount = 1\n{bad}");
            let err = ScenarioSpec::from_toml_str(&toml)
                .unwrap()
                .compile()
                .map(|_| ())
                .unwrap_err();
            assert!(err.message.contains(needle), "{bad:?} → {err}");
        }
        // Retire-then-recreate of the same id is a legal second generation.
        let spec = ScenarioSpec::from_toml_str(
            "name = \"v\"\nn = 2\n[topics]\ncount = 1\n\
             [[topics.events]]\nat = 5\ncreate = 1\n\
             [[topics.events]]\nat = 50\nretire = 1\n\
             [[topics.events]]\nat = 90\ncreate = 1\n",
        )
        .unwrap();
        assert!(spec.compile().is_ok());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in [
            Algorithm::Majority,
            Algorithm::Quiescent,
            Algorithm::QuiescentLiteral,
            Algorithm::BestEffort,
            Algorithm::EagerRb,
            Algorithm::MajorityBackoff { cap: 8 },
            Algorithm::WeakenedMajority { threshold: 3 },
        ] {
            assert_eq!(parse_algorithm(&format_algorithm(alg)).unwrap(), alg);
        }
        assert!(parse_algorithm("paxos").is_err());
        assert!(parse_algorithm("backoff:x").is_err());
    }

    #[test]
    fn expectations_can_demand_a_violation() {
        // The Theorem-2 adversary as a spec: agreement must break.
        let (name, text) = corpus()
            .into_iter()
            .find(|(name, _)| *name == "theorem2_violation")
            .unwrap();
        let spec = ScenarioSpec::from_toml_str(text).unwrap();
        assert_eq!(spec.expect.agreement, Some(false), "{name}");
        let (out, fails) = spec.run().unwrap();
        assert!(!out.report.agreement.ok(), "agreement must be violated");
        assert!(fails.is_empty(), "{fails:?}");
        // Flip the expectation: the same run now fails the scenario.
        let mut flipped = spec.clone();
        flipped.expect.agreement = Some(true);
        let (_, fails) = flipped.run().unwrap();
        assert!(!fails.is_empty());
    }

    #[test]
    fn whole_corpus_parses_compiles_and_passes() {
        for (name, text) in corpus() {
            let spec = ScenarioSpec::from_toml_str(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name, "file stem matches spec name");
            let (_, fails) = spec.run().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(fails.is_empty(), "{name}: {fails:?}");
        }
    }

    #[test]
    fn corpus_runs_are_deterministic_per_spec() {
        let (_, text) = corpus()[2];
        let spec = ScenarioSpec::from_toml_str(text).unwrap();
        let a = run(spec.compile().unwrap());
        let b = run(spec.compile().unwrap());
        assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
    }
}
