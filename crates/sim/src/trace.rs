//! Structured event traces: optional, bounded recording of everything that
//! happens in a run, with per-message timelines and JSON export.
//!
//! Metrics (`metrics.rs`) aggregate; traces *narrate*. They exist for three
//! consumers:
//!
//! * debugging — when a property-checker verdict is surprising, the
//!   per-tag [`timeline`](Trace::timeline) shows exactly which
//!   transmissions were dropped and which ACKs arrived where;
//! * the CLI (`urb-cli trace`), which exports runs as JSON for external
//!   tooling;
//! * the documentation examples, which quote real traces.
//!
//! Recording is off by default ([`TraceConfig::disabled`]) and bounded by
//! `max_events` when on, so the hot path stays allocation-light.

use crate::metrics::{BroadcastRecord, DeliveryRecord};
use serde::Serialize;
use urb_types::{Tag, WireKind};

/// What kind of thing happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum TraceKind {
    /// A broadcast primitive invocation put copies on the wire.
    Send,
    /// A copy arrived and was processed.
    Receive,
    /// A copy was dropped by a lossy channel.
    Drop,
    /// A process crashed.
    Crash,
    /// `URB_broadcast` was invoked.
    UrbBroadcast,
    /// `URB_deliver` fired.
    UrbDeliver,
}

/// One trace event. `from`/`to` are driver-side indices (the protocol never
/// sees them); `tag` is present for MSG/ACK events.
#[derive(Clone, Debug, Serialize)]
pub struct TraceEvent {
    /// Simulated time.
    pub time: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Originating process, where meaningful.
    pub from: Option<usize>,
    /// Receiving process, where meaningful.
    pub to: Option<usize>,
    /// Message kind for wire events.
    pub wire: Option<WireKind>,
    /// Concerned message tag, if any.
    pub tag: Option<Tag>,
}

/// Recording policy.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Master switch.
    pub enabled: bool,
    /// Hard cap on recorded events (oldest kept; recording stops at the
    /// cap — a truncated flag is set instead of silently rotating, so
    /// consumers can tell).
    pub max_events: usize,
    /// Record per-copy Send/Receive/Drop events (the chatty ones). URB
    /// broadcasts/deliveries/crashes are always recorded when enabled.
    pub record_wire: bool,
}

impl TraceConfig {
    /// No recording (the default for experiments).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            max_events: 0,
            record_wire: false,
        }
    }

    /// Record everything, up to `max_events`.
    pub fn full(max_events: usize) -> Self {
        TraceConfig {
            enabled: true,
            max_events,
            record_wire: true,
        }
    }

    /// Record only protocol-level events (URB broadcast/deliver, crashes).
    pub fn protocol_only(max_events: usize) -> Self {
        TraceConfig {
            enabled: true,
            max_events,
            record_wire: false,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// A recorded trace.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Trace {
    /// The events, in execution order.
    pub events: Vec<TraceEvent>,
    /// True when the `max_events` cap was hit (events after the cap were
    /// not recorded).
    pub truncated: bool,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events concerning `tag`, in order — the life of one message.
    pub fn timeline(&self, tag: Tag) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.tag == Some(tag)).collect()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// JSON export (pretty-printed).
    ///
    /// Hand-rolled emitter (the offline `serde` shim's derives generate
    /// nothing — see `vendor/README.md`); the layout matches what
    /// `serde_json::to_string_pretty` produces for these types, so external
    /// tooling is unaffected by the shim.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn opt_num(v: Option<impl std::fmt::Display>) -> String {
            v.map_or("null".to_string(), |x| x.to_string())
        }
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\n      \"time\": {},\n      \"kind\": \"{:?}\",\n      \
                 \"from\": {},\n      \"to\": {},\n      \"wire\": {},\n      \
                 \"tag\": {}\n    }}",
                e.time,
                e.kind,
                opt_num(e.from),
                opt_num(e.to),
                e.wire.map_or("null".to_string(), |w| format!("\"{w:?}\"")),
                opt_num(e.tag.map(|t| t.0)),
            );
        }
        if self.events.is_empty() {
            out.push(']');
        } else {
            out.push_str("\n  ]");
        }
        let _ = write!(out, ",\n  \"truncated\": {}\n}}", self.truncated);
        out
    }

    /// Human-oriented one-line-per-event rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(out, "t={:<8} {:<12?}", e.time, e.kind);
            if let Some(w) = e.wire {
                let _ = write!(out, " {w}");
            }
            if let Some(f) = e.from {
                let _ = write!(out, " from=#{f}");
            }
            if let Some(t) = e.to {
                let _ = write!(out, " to=#{t}");
            }
            if let Some(tag) = e.tag {
                let _ = write!(out, " {tag:?}");
            }
            out.push('\n');
        }
        if self.truncated {
            out.push_str("… (truncated at cap)\n");
        }
        out
    }
}

/// The recorder the driver writes into.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    config: TraceConfig,
    trace: Trace,
}

impl TraceRecorder {
    /// New recorder with the given policy.
    pub fn new(config: TraceConfig) -> Self {
        TraceRecorder {
            config,
            trace: Trace::default(),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if !self.config.enabled {
            return;
        }
        if self.trace.events.len() >= self.config.max_events {
            self.trace.truncated = true;
            return;
        }
        self.trace.events.push(event);
    }

    /// Records a broadcast-primitive send (one per invocation, not per copy).
    pub fn send(&mut self, time: u64, from: usize, wire: WireKind, tag: Option<Tag>) {
        if self.config.record_wire {
            self.push(TraceEvent {
                time,
                kind: TraceKind::Send,
                from: Some(from),
                to: None,
                wire: Some(wire),
                tag,
            });
        }
    }

    /// Records a processed reception.
    pub fn receive(&mut self, time: u64, to: usize, wire: WireKind, tag: Option<Tag>) {
        if self.config.record_wire {
            self.push(TraceEvent {
                time,
                kind: TraceKind::Receive,
                from: None,
                to: Some(to),
                wire: Some(wire),
                tag,
            });
        }
    }

    /// Records a channel drop.
    pub fn drop_copy(
        &mut self,
        time: u64,
        from: usize,
        to: usize,
        wire: WireKind,
        tag: Option<Tag>,
    ) {
        if self.config.record_wire {
            self.push(TraceEvent {
                time,
                kind: TraceKind::Drop,
                from: Some(from),
                to: Some(to),
                wire: Some(wire),
                tag,
            });
        }
    }

    /// Records a crash.
    pub fn crash(&mut self, time: u64, pid: usize) {
        self.push(TraceEvent {
            time,
            kind: TraceKind::Crash,
            from: Some(pid),
            to: None,
            wire: None,
            tag: None,
        });
    }

    /// Records a `URB_broadcast` invocation.
    pub fn urb_broadcast(&mut self, rec: &BroadcastRecord) {
        self.push(TraceEvent {
            time: rec.time,
            kind: TraceKind::UrbBroadcast,
            from: Some(rec.pid),
            to: None,
            wire: None,
            tag: Some(rec.tag),
        });
    }

    /// Records a `URB_deliver`.
    pub fn urb_deliver(&mut self, rec: &DeliveryRecord) {
        self.push(TraceEvent {
            time: rec.time,
            kind: TraceKind::UrbDeliver,
            from: None,
            to: Some(rec.pid),
            wire: None,
            tag: Some(rec.tag),
        });
    }

    /// Finishes recording and yields the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Whether any recording is happening at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(cfg: TraceConfig) -> TraceRecorder {
        TraceRecorder::new(cfg)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = recorder(TraceConfig::disabled());
        r.crash(5, 1);
        r.send(6, 0, WireKind::Msg, Some(Tag(1)));
        let t = r.into_trace();
        assert!(t.is_empty());
        assert!(!t.truncated);
    }

    #[test]
    fn protocol_only_skips_wire_events() {
        let mut r = recorder(TraceConfig::protocol_only(100));
        r.send(1, 0, WireKind::Msg, Some(Tag(1)));
        r.receive(2, 1, WireKind::Ack, Some(Tag(1)));
        r.crash(3, 2);
        r.urb_deliver(&DeliveryRecord {
            pid: 0,
            topic: urb_types::TopicId::ZERO,
            tag: Tag(1),
            time: 4,
            fast: false,
            payload: urb_types::Payload::empty(),
        });
        let t = r.into_trace();
        assert_eq!(t.len(), 2, "only crash + deliver recorded");
        assert_eq!(t.of_kind(TraceKind::Crash).len(), 1);
        assert_eq!(t.of_kind(TraceKind::UrbDeliver).len(), 1);
    }

    #[test]
    fn cap_sets_truncated_flag() {
        let mut r = recorder(TraceConfig::full(2));
        for i in 0..5 {
            r.crash(i, 0);
        }
        let t = r.into_trace();
        assert_eq!(t.len(), 2);
        assert!(t.truncated);
    }

    #[test]
    fn timeline_filters_by_tag() {
        let mut r = recorder(TraceConfig::full(100));
        r.send(1, 0, WireKind::Msg, Some(Tag(1)));
        r.send(2, 0, WireKind::Msg, Some(Tag(2)));
        r.receive(3, 1, WireKind::Msg, Some(Tag(1)));
        let t = r.into_trace();
        let tl = t.timeline(Tag(1));
        assert_eq!(tl.len(), 2);
        assert!(tl.iter().all(|e| e.tag == Some(Tag(1))));
        assert!(tl[0].time <= tl[1].time);
    }

    #[test]
    fn json_and_render_are_nonempty() {
        let mut r = recorder(TraceConfig::full(10));
        r.urb_broadcast(&BroadcastRecord {
            pid: 2,
            topic: urb_types::TopicId::ZERO,
            tag: Tag(9),
            time: 7,
            payload: urb_types::Payload::empty(),
        });
        r.drop_copy(8, 0, 1, WireKind::Ack, Some(Tag(9)));
        let t = r.into_trace();
        let json = t.to_json();
        assert!(json.contains("UrbBroadcast"));
        assert!(json.contains("\"time\": 7"));
        let rendered = t.render();
        assert!(rendered.contains("t=7"));
        assert!(rendered.contains("from=#2"));
    }
}
