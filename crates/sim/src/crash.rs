//! Crash-failure adversaries (paper §II, failure model).
//!
//! Processes are crash-stop: a crashed process executes nothing further and
//! never recovers. A [`CrashPlan`] decides, per process, whether and when it
//! crashes. Besides fixed-time crashes, the plan supports the
//! *crash-on-first-delivery* trigger that the paper's impossibility proof
//! (Theorem 2, run R2) and the uniformity-violation experiments (E11) need:
//! "after it has URB-delivered m, every process of S1 crashes".

use urb_types::{RandomSource, SplitMix64};

/// When one process crashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashRule {
    /// Never crashes — correct in this run.
    Never,
    /// Crashes at the given simulated time.
    At(u64),
    /// Crashes `delay` ticks after its **first URB-delivery** (0 = crash in
    /// the same instant, before it can relay anything it learned).
    OnFirstDelivery {
        /// Extra ticks of life after the first delivery.
        delay: u64,
    },
}

/// One rule per process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    rules: Vec<CrashRule>,
}

impl CrashPlan {
    /// Everybody correct.
    pub fn none(n: usize) -> Self {
        CrashPlan {
            rules: vec![CrashRule::Never; n],
        }
    }

    /// Explicit per-process rules.
    pub fn from_rules(rules: Vec<CrashRule>) -> Self {
        CrashPlan { rules }
    }

    /// `t` distinct processes crash at uniformly random times in
    /// `[0, horizon]`, chosen deterministically from `seed`. The process at
    /// index `protect` (if given) is never selected — experiments use it to
    /// keep the designated broadcaster alive when validity is being checked.
    pub fn random(n: usize, t: usize, horizon: u64, seed: u64, protect: Option<usize>) -> Self {
        assert!(t < n, "the model requires at least one correct process");
        let mut rng = SplitMix64::new(seed ^ 0xC4A5_4EDC_0FFE_E000);
        let mut candidates: Vec<usize> = (0..n).filter(|&i| Some(i) != protect).collect();
        // Fisher–Yates prefix shuffle for the victim set.
        for i in 0..t.min(candidates.len()) {
            let j = i + rng.gen_range((candidates.len() - i) as u64) as usize;
            candidates.swap(i, j);
        }
        let mut rules = vec![CrashRule::Never; n];
        for &victim in candidates.iter().take(t) {
            rules[victim] = CrashRule::At(rng.gen_range(horizon + 1));
        }
        CrashPlan { rules }
    }

    /// Processes `0..k` crash `delay` ticks after their first delivery; the
    /// rest are correct. The Theorem-2 / E11 adversary shape.
    pub fn first_k_on_delivery(n: usize, k: usize, delay: u64) -> Self {
        let rules = (0..n)
            .map(|i| {
                if i < k {
                    CrashRule::OnFirstDelivery { delay }
                } else {
                    CrashRule::Never
                }
            })
            .collect();
        CrashPlan { rules }
    }

    /// The rule for process `pid`.
    pub fn rule(&self, pid: usize) -> CrashRule {
        self.rules[pid]
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.rules.len()
    }

    /// Number of processes that may crash under this plan.
    pub fn faulty_count(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| !matches!(r, CrashRule::Never))
            .count()
    }

    /// Fixed crash times where known (`OnFirstDelivery` resolves at run
    /// time and is reported as `Some(u64::MAX)` — "will crash, time not yet
    /// known", which is exactly what the failure-detector oracle needs to
    /// classify the process as faulty while deferring the removal clock).
    pub fn static_times(&self) -> Vec<Option<u64>> {
        self.rules
            .iter()
            .map(|r| match r {
                CrashRule::Never => None,
                CrashRule::At(t) => Some(*t),
                CrashRule::OnFirstDelivery { .. } => Some(u64::MAX),
            })
            .collect()
    }

    /// Indices of the processes that are correct under this plan.
    pub fn correct_set(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&i| matches!(self.rules[i], CrashRule::Never))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_all_correct() {
        let p = CrashPlan::none(5);
        assert_eq!(p.faulty_count(), 0);
        assert_eq!(p.correct_set(), vec![0, 1, 2, 3, 4]);
        assert_eq!(p.static_times(), vec![None; 5]);
    }

    #[test]
    fn random_plan_crashes_exactly_t() {
        for seed in 0..20 {
            let p = CrashPlan::random(9, 4, 1_000, seed, None);
            assert_eq!(p.faulty_count(), 4);
            for i in 0..9 {
                if let CrashRule::At(t) = p.rule(i) {
                    assert!(t <= 1_000);
                }
            }
        }
    }

    #[test]
    fn random_plan_protects_designated_process() {
        for seed in 0..20 {
            let p = CrashPlan::random(5, 4, 100, seed, Some(2));
            assert!(matches!(p.rule(2), CrashRule::Never));
            assert_eq!(p.faulty_count(), 4);
        }
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let a = CrashPlan::random(8, 3, 500, 42, None);
        let b = CrashPlan::random(8, 3, 500, 42, None);
        assert_eq!(a, b);
        let c = CrashPlan::random(8, 3, 500, 43, None);
        assert_ne!(a, c, "different seed, different plan (w.h.p.)");
    }

    #[test]
    #[should_panic(expected = "at least one correct")]
    fn random_plan_rejects_all_faulty() {
        let _ = CrashPlan::random(4, 4, 100, 1, None);
    }

    #[test]
    fn first_k_on_delivery_shape() {
        let p = CrashPlan::first_k_on_delivery(6, 3, 2);
        assert_eq!(p.faulty_count(), 3);
        assert!(matches!(p.rule(0), CrashRule::OnFirstDelivery { delay: 2 }));
        assert!(matches!(p.rule(5), CrashRule::Never));
        assert_eq!(p.static_times()[0], Some(u64::MAX));
        assert_eq!(p.static_times()[5], None);
    }
}
