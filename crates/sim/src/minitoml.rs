//! First-party parser for the TOML subset the scenario plane uses.
//!
//! The build environment has no crates-registry access and no `toml` crate
//! is vendored (see `vendor/README.md`), so scenario files are parsed by
//! this ~300-line subset parser into the [`serde_json::Value`] model —
//! the same tree JSON scenario files parse into, so the spec decoder in
//! [`crate::spec`] is format-agnostic.
//!
//! ## Supported subset
//!
//! * `[table]` and `[table.sub]` headers, `[[array-of-tables]]` headers;
//! * `key = value` with bare (`[A-Za-z0-9_-]+`) or basic-quoted keys;
//! * values: basic strings (`"…"` with `\" \\ \n \r \t \uXXXX` escapes),
//!   integers (with optional `_` separators), floats, booleans, arrays
//!   (may span lines), inline tables `{ k = v, … }`;
//! * `#` comments and blank lines.
//!
//! Deliberately omitted (a scenario file needs none of them): dates,
//! multi-line/literal strings, dotted keys and exotic escapes. Numbers are
//! stored as `f64` (the `serde_json` shim's number model): integers are
//! exact up to 2⁵³ — comfortably covering every field of a scenario spec —
//! and an integer literal *beyond* that range is rejected rather than
//! silently rounded (a quietly-altered seed would defeat the plane's
//! replay-determinism guarantee). Duplicate keys and duplicate table
//! headers are errors, not merges.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A parse error with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Parses a complete TOML document (the subset above) into a
/// [`Value::Object`] tree.
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = BTreeMap::new();
    // Path of the table subsequent `key = value` lines land in.
    let mut current: Vec<String> = Vec::new();
    // Canonical ids of every explicitly opened `[table]`, so a repeated
    // header fails loudly instead of silently merging (real-TOML
    // redefinition semantics; the ids resolve array-of-tables segments
    // to their element index, so `[x.sub]` under a *new* `[[x]]` element
    // is a fresh table, not a duplicate).
    let mut opened = std::collections::BTreeSet::new();
    loop {
        p.skip_trivia();
        match p.peek() {
            None => break,
            Some(b'[') => {
                p.advance();
                let array_of_tables = p.peek() == Some(b'[');
                if array_of_tables {
                    p.advance();
                }
                let path = p.parse_key_path()?;
                p.expect(b']')?;
                if array_of_tables {
                    p.expect(b']')?;
                }
                p.expect_line_end()?;
                if array_of_tables {
                    let (parent, leaf) = path.split_at(path.len() - 1);
                    let table = navigate(&mut root, parent).map_err(|m| p.err_at(&m))?;
                    let entry = table
                        .entry(leaf[0].clone())
                        .or_insert_with(|| Value::Array(Vec::new()));
                    match entry {
                        Value::Array(v) => v.push(Value::Object(BTreeMap::new())),
                        _ => return Err(p.err_at(&format!("`{}` is not an array", leaf[0]))),
                    }
                } else {
                    let id = open_table(&mut root, &path).map_err(|m| p.err_at(&m))?;
                    if !opened.insert(id) {
                        return Err(p.err_at(&format!("table `{}` defined twice", path.join("."))));
                    }
                }
                current = path;
            }
            Some(_) => {
                let key = p.parse_key()?;
                p.skip_spaces();
                p.expect(b'=')?;
                p.skip_spaces();
                let value = p.parse_value()?;
                p.expect_line_end()?;
                let table = navigate(&mut root, &current).map_err(|m| p.err_at(&m))?;
                if table.insert(key.clone(), value).is_some() {
                    return Err(p.err_at(&format!("duplicate key `{key}`")));
                }
            }
        }
    }
    Ok(Value::Object(root))
}

/// Walks `path` down from `root`, creating empty tables as needed, and
/// returns the map `key = value` pairs should be inserted into. A path
/// segment holding an array of tables resolves to the array's *last*
/// element (TOML's `[[x]]` … `[x.sub]` semantics).
fn navigate<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
) -> Result<&'a mut BTreeMap<String, Value>, String> {
    let mut table = root;
    for seg in path {
        let entry = table
            .entry(seg.clone())
            .or_insert_with(|| Value::Object(BTreeMap::new()));
        let slot = match entry {
            Value::Array(v) => v
                .last_mut()
                .ok_or_else(|| format!("`{seg}` is an empty array"))?,
            other => other,
        };
        table = match slot {
            Value::Object(map) => map,
            _ => return Err(format!("`{seg}` is not a table")),
        };
    }
    Ok(table)
}

/// [`navigate`] for an explicit `[table]` header: additionally rejects a
/// header naming an array of tables (`[x]` after `[[x]]` — use `[[x]]`),
/// and returns the path's canonical id with array segments resolved to
/// their current element index (the duplicate-header unit of account).
fn open_table(root: &mut BTreeMap<String, Value>, path: &[String]) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut table = root;
    let mut id = String::new();
    for (i, seg) in path.iter().enumerate() {
        let last = i == path.len() - 1;
        let entry = table
            .entry(seg.clone())
            .or_insert_with(|| Value::Object(BTreeMap::new()));
        if !id.is_empty() {
            id.push('.');
        }
        id.push_str(seg);
        let slot = match entry {
            Value::Array(v) => {
                if last {
                    return Err(format!("`{seg}` is an array of tables; use [[{seg}]]"));
                }
                let _ = write!(id, "[{}]", v.len().saturating_sub(1));
                v.last_mut()
                    .ok_or_else(|| format!("`{seg}` is an empty array"))?
            }
            other => other,
        };
        table = match slot {
            Value::Object(map) => map,
            _ => return Err(format!("`{seg}` is not a table")),
        };
    }
    Ok(id)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn err_at(&self, msg: &str) -> TomlError {
        TomlError {
            line: self.line,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn advance(&mut self) {
        if self.peek() == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Skips spaces and tabs on the current line.
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace (including newlines), and `#` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.advance(),
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TomlError> {
        if self.peek() == Some(b) {
            self.advance();
            Ok(())
        } else {
            Err(self.err_at(&format!("expected `{}`", b as char)))
        }
    }

    /// Consumes trailing spaces, an optional comment, and the end of the
    /// line (newline or end of input).
    fn expect_line_end(&mut self) -> Result<(), TomlError> {
        self.skip_spaces();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.advance();
                Ok(())
            }
            Some(b'\r') => {
                self.advance();
                self.expect(b'\n')
            }
            Some(c) => Err(self.err_at(&format!("unexpected `{}` after value", c as char))),
        }
    }

    fn parse_key(&mut self) -> Result<String, TomlError> {
        if self.peek() == Some(b'"') {
            return self.parse_string();
        }
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err_at("expected a key"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// `a.b.c` inside a `[...]` header.
    fn parse_key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_spaces();
            path.push(self.parse_key()?);
            self.skip_spaces();
            if self.peek() == Some(b'.') {
                self.advance();
            } else {
                return Ok(path);
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        match self.peek() {
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'-' | b'+' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err_at("expected a value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, TomlError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err_at(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err_at("unterminated string")),
                Some(b'"') => {
                    self.advance();
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.advance();
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err_at("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err_at("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err_at("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err_at("unsupported escape")),
                    }
                    self.advance();
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err_at("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.advance();
                return Ok(Value::Array(out));
            }
            out.push(self.parse_value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.advance(),
                Some(b']') => {
                    self.advance();
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err_at("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_spaces();
        if self.peek() == Some(b'}') {
            self.advance();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_spaces();
            let key = self.parse_key()?;
            self.skip_spaces();
            self.expect(b'=')?;
            self.skip_spaces();
            let value = self.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err_at(&format!("duplicate key `{key}`")));
            }
            self.skip_spaces();
            match self.peek() {
                Some(b',') => self.advance(),
                Some(b'}') => {
                    self.advance();
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err_at("expected `,` or `}` in inline table")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        let mut integral = true;
        if matches!(self.peek(), Some(b'-' | b'+')) {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'_')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9' | b'_')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err_at("invalid UTF-8 in number"))?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        // The Value model stores numbers as f64 (exact up to 2⁵³). A
        // larger integer literal would be *silently rounded* — fatal for
        // a seed in a determinism-centric format — so reject it instead.
        if integral {
            let exact: i128 = text.parse().map_err(|_| self.err_at("malformed number"))?;
            if exact.unsigned_abs() > 1u128 << 53 {
                return Err(self.err_at(&format!(
                    "integer {text} cannot be represented exactly (|value| > 2^53)"
                )));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err_at("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_scalars() {
        let v = parse(
            "name = \"demo\"\nseed = 42\nratio = 0.25\nflag = true\n\n\
             [system]\nn = 8\n# comment\nhorizon = 60_000\n",
        )
        .unwrap();
        assert_eq!(v["name"], "demo");
        assert_eq!(v["seed"], 42u64);
        assert_eq!(v["ratio"].as_f64(), Some(0.25));
        assert_eq!(v["flag"], true);
        assert_eq!(v["system"]["n"], 8u64);
        assert_eq!(v["system"]["horizon"], 60_000u64);
    }

    #[test]
    fn parses_array_of_tables_and_subtables() {
        let v = parse(
            "[[crash]]\npid = 1\nat = 50\n\n[[crash]]\npid = 2\nat = 70\n\n\
             [workload]\ncount = 3\n",
        )
        .unwrap();
        let crashes = v["crash"].as_array().unwrap();
        assert_eq!(crashes.len(), 2);
        assert_eq!(crashes[1]["pid"], 2u64);
        assert_eq!(v["workload"]["count"], 3u64);
    }

    #[test]
    fn parses_inline_tables_and_multiline_arrays() {
        let v = parse(
            "loss = { model = \"bernoulli\", p = 0.3 }\n\
             groups = [\n  [0, 1],\n  [2, 3], # trailing comment ok\n]\n",
        )
        .unwrap();
        assert_eq!(v["loss"]["model"], "bernoulli");
        assert_eq!(v["loss"]["p"].as_f64(), Some(0.3));
        assert_eq!(v["groups"][1][0], 2u64);
    }

    #[test]
    fn parses_string_escapes() {
        let v = parse("s = \"a\\\"b\\n\\u00e9\"\n").unwrap();
        assert_eq!(v["s"], "a\"b\né");
    }

    #[test]
    fn dotted_header_nests() {
        let v = parse("[a.b]\nx = 1\n").unwrap();
        assert_eq!(v["a"]["b"]["x"], 1u64);
    }

    #[test]
    fn header_into_array_of_tables_targets_last_element() {
        let v = parse("[[s]]\nk = 1\n[s.sub]\nx = 2\n[[s]]\nk = 3\n").unwrap();
        let arr = v["s"].as_array().unwrap();
        assert_eq!(arr[0]["sub"]["x"], 2u64);
        assert_eq!(arr[1]["k"], 3u64);
    }

    #[test]
    fn rejects_inexact_integers_but_keeps_the_boundary() {
        // 2^53 is the last exactly-representable integer; one past it
        // would silently round, so it must be refused.
        assert_eq!(
            parse("k = 9007199254740992\n").unwrap()["k"],
            9007199254740992u64
        );
        let err = parse("k = 9007199254740993\n").unwrap_err();
        assert!(err.message.contains("2^53"), "{err}");
        assert!(parse("k = -9007199254740993\n").is_err());
        // Float syntax is still allowed to be approximate.
        assert!(parse("k = 1.0e300\n").is_ok());
    }

    #[test]
    fn rejects_duplicate_table_headers() {
        let err = parse("[expect]\na = 1\n[expect]\nb = 2\n").unwrap_err();
        assert!(err.message.contains("defined twice"), "{err}");
        assert!(parse("[a.b]\nx = 1\n[a.b]\ny = 2\n").is_err());
        // A sub-table per array-of-tables element is fine; the *same*
        // element's sub-table twice is not.
        assert!(parse("[[s]]\n[s.sub]\nx = 1\n[[s]]\n[s.sub]\nx = 2\n").is_ok());
        assert!(parse("[[s]]\n[s.sub]\nx = 1\n[s.sub]\ny = 2\n").is_err());
        // Reopening an array of tables with a plain header is an error.
        let err = parse("[[s]]\nk = 1\n[s]\nk = 2\n").unwrap_err();
        assert!(err.message.contains("use [[s]]"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "key",
            "key =",
            "k = \"unterminated",
            "k = 1 extra",
            "[unclosed\n",
            "k = [1,,2]",
            "k = 1\nk = 2\n",
            "k = {a = 1",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("ok = 1\nbroken =\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }
}
