//! The adversarial scheduler library of the scenario plane.
//!
//! A [`Schedule`] is a *named adversary shape*: a high-level description of
//! a hostile pattern (a healing partition, an acknowledgment blockade, a
//! crash storm racing the dissemination sweep) that compiles down to the
//! primitives the event-queue machinery already executes — time-windowed
//! [`Blackout`]s, per-link [`DelayOverride`]s and [`CrashPlan`] rules.
//! Scenario specs ([`crate::spec`]) carry any number of schedules; each is
//! applied to the compiled [`SimConfig`] in order, so schedules compose
//! (a churn schedule plus a crash storm is a legal, and nasty, run).
//!
//! The library exists so that "as many scenarios as you can imagine" is a
//! data problem, not a recompile: every shape here used to require
//! hand-written Rust in `scenario.rs`, and each is exercised by the corpus
//! under `scenarios/` and the E15–E17 experiments (DESIGN.md §9).

use crate::channel::DelayModel;
use crate::crash::{CrashPlan, CrashRule};
use crate::sim::{Blackout, DelayOverride, SimConfig};

/// One named adversary shape. See the variant docs for the exact
/// compilation; all times are simulated ticks, all windows half-open
/// `[start, end)`.
#[derive(Clone, Debug, PartialEq)]
pub enum Schedule {
    /// Total bidirectional cut between process sets `a` and `b` during the
    /// window, after which fairness resumes (the E14 shape). Compiles to
    /// [`Blackout::partition`].
    PartitionHeal {
        /// One side of the cut.
        a: Vec<usize>,
        /// The other side.
        b: Vec<usize>,
        /// First instant of the cut.
        start: u64,
        /// First instant after the heal.
        end: u64,
    },
    /// Everything *inbound* to `victim` is lost during the window: the
    /// victim can broadcast and be counted by others, but cannot assemble
    /// an ACK quorum itself, so its own delivery is pinned past `end`.
    AckStarvation {
        /// The starved process.
        victim: usize,
        /// First instant of the blockade.
        start: u64,
        /// First instant after the blockade.
        end: u64,
    },
    /// The listed directed links become stragglers: their copies draw
    /// arrival delays from a [`DelayModel::GeometricTail`] instead of the
    /// mesh-wide delay model (maximizes the paper's §III fast-delivery
    /// window — ACKs overtake MSG copies).
    TargetedDelay {
        /// Directed links `(from, to)` to slow down.
        links: Vec<(usize, usize)>,
        /// Base delay of the tail distribution.
        base: u64,
        /// Probability of each additional tick.
        p_more: f64,
        /// Hard delay cap.
        cap: u64,
    },
    /// `count` processes crash at evenly spaced instants inside
    /// `[start, start + width]` — a storm landing mid-sweep, while the
    /// dissemination it races is still in flight. Victims are the highest
    /// process indices, skipping `protect`; deterministic by construction
    /// (no RNG), so specs replay identically everywhere.
    CrashStorm {
        /// Number of crashing processes (must leave one correct).
        count: usize,
        /// First crash instant.
        start: u64,
        /// Span over which the crashes are spread.
        width: u64,
        /// A process index that must survive (usually the broadcaster).
        protect: Option<usize>,
    },
    /// Repeated partition/heal cycles between `a` and `b`: cycle `i` cuts
    /// `[start + i·(cut+heal), start + i·(cut+heal) + cut)`. Models churn
    /// windows — fairness is suspended and restored over and over.
    Churn {
        /// One side of the recurring cut.
        a: Vec<usize>,
        /// The other side.
        b: Vec<usize>,
        /// Start of the first cut.
        start: u64,
        /// Length of each cut window.
        cut: u64,
        /// Healed time between cuts.
        heal: u64,
        /// Number of cut/heal cycles.
        cycles: u32,
    },
}

impl Schedule {
    /// The schedule's spec-file name (`kind = "…"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Schedule::PartitionHeal { .. } => "partition-heal",
            Schedule::AckStarvation { .. } => "ack-starvation",
            Schedule::TargetedDelay { .. } => "targeted-delay",
            Schedule::CrashStorm { .. } => "crash-storm",
            Schedule::Churn { .. } => "churn",
        }
    }

    /// Compiles this schedule onto `cfg`, composing with whatever the spec
    /// (and earlier schedules) already installed. Errors are human-readable
    /// validation messages (out-of-range pids, storms that leave nobody
    /// correct, windows that never open).
    pub fn apply(&self, cfg: &mut SimConfig) -> Result<(), String> {
        let n = cfg.n;
        match self {
            Schedule::PartitionHeal { a, b, start, end } => {
                check_groups(n, a, b)?;
                check_window(*start, *end)?;
                cfg.blackouts
                    .extend(Blackout::partition(a, b, *start, *end));
                Ok(())
            }
            Schedule::AckStarvation { victim, start, end } => {
                check_pid(n, *victim, "victim")?;
                check_window(*start, *end)?;
                cfg.blackouts
                    .extend((0..n).filter(|&p| p != *victim).map(|from| Blackout {
                        from,
                        to: *victim,
                        start: *start,
                        end: *end,
                    }));
                Ok(())
            }
            Schedule::TargetedDelay {
                links,
                base,
                p_more,
                cap,
            } => {
                if !(0.0..1.0).contains(p_more) {
                    return Err(format!("targeted-delay: p_more {p_more} not in [0, 1)"));
                }
                if cap < base {
                    return Err(format!("targeted-delay: cap {cap} below base {base}"));
                }
                for &(from, to) in links {
                    check_pid(n, from, "link.from")?;
                    check_pid(n, to, "link.to")?;
                    cfg.delay_overrides.push(DelayOverride {
                        from,
                        to,
                        delay: DelayModel::GeometricTail {
                            base: *base,
                            p_more: *p_more,
                            cap: *cap,
                        },
                    });
                }
                Ok(())
            }
            Schedule::CrashStorm {
                count,
                start,
                width,
                protect,
            } => {
                let mut rules: Vec<CrashRule> = (0..n).map(|i| cfg.crashes.rule(i)).collect();
                let victims: Vec<usize> = (0..n)
                    .rev()
                    .filter(|&p| Some(p) != *protect)
                    .take(*count)
                    .collect();
                if victims.len() < *count {
                    return Err(format!(
                        "crash-storm: cannot pick {count} victims from {n} processes"
                    ));
                }
                for (i, &pid) in victims.iter().enumerate() {
                    // Evenly spaced across the window; a single victim (or
                    // zero width) crashes right at `start`.
                    let at = if victims.len() > 1 {
                        start + i as u64 * width / (victims.len() as u64 - 1)
                    } else {
                        *start
                    };
                    rules[pid] = CrashRule::At(at);
                }
                let plan = CrashPlan::from_rules(rules);
                if plan.faulty_count() >= n {
                    return Err("crash-storm: no correct process would remain".into());
                }
                cfg.crashes = plan;
                Ok(())
            }
            Schedule::Churn {
                a,
                b,
                start,
                cut,
                heal,
                cycles,
            } => {
                check_groups(n, a, b)?;
                if *cut == 0 || *cycles == 0 {
                    return Err("churn: cut length and cycle count must be positive".into());
                }
                for i in 0..u64::from(*cycles) {
                    let s = start + i * (cut + heal);
                    cfg.blackouts.extend(Blackout::partition(a, b, s, s + cut));
                }
                Ok(())
            }
        }
    }
}

fn check_pid(n: usize, pid: usize, what: &str) -> Result<(), String> {
    if pid >= n {
        Err(format!("{what} {pid} out of range for n = {n}"))
    } else {
        Ok(())
    }
}

fn check_window(start: u64, end: u64) -> Result<(), String> {
    if start >= end {
        Err(format!("window [{start}, {end}) never opens"))
    } else {
        Ok(())
    }
}

fn check_groups(n: usize, a: &[usize], b: &[usize]) -> Result<(), String> {
    if a.is_empty() || b.is_empty() {
        return Err("partition groups must be non-empty".into());
    }
    for &p in a.iter().chain(b) {
        check_pid(n, p, "group member")?;
    }
    if a.iter().any(|p| b.contains(p)) {
        return Err("partition groups overlap".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;
    use urb_core::Algorithm;

    fn base(n: usize, alg: Algorithm) -> SimConfig {
        SimConfig::new(n, alg).seed(7).max_time(60_000)
    }

    #[test]
    fn partition_heal_compiles_to_blackouts() {
        let mut cfg = base(4, Algorithm::Majority);
        Schedule::PartitionHeal {
            a: vec![0, 1],
            b: vec![2, 3],
            start: 0,
            end: 1_000,
        }
        .apply(&mut cfg)
        .unwrap();
        assert_eq!(cfg.blackouts.len(), 8, "2×2 links, both directions");
    }

    #[test]
    fn ack_starvation_pins_victim_delivery_past_the_window() {
        let mut cfg = base(5, Algorithm::Majority);
        cfg.stop_on_full_delivery = true;
        Schedule::AckStarvation {
            victim: 4,
            start: 0,
            end: 1_500,
        }
        .apply(&mut cfg)
        .unwrap();
        let out = run(cfg);
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        let victim_first = out
            .metrics
            .deliveries
            .iter()
            .filter(|d| d.pid == 4)
            .map(|d| d.time)
            .min()
            .expect("victim eventually delivers");
        assert!(victim_first >= 1_500, "starved until the blockade lifts");
        // The others form their quorum without the victim, inside the window.
        let others_first = out
            .metrics
            .deliveries
            .iter()
            .filter(|d| d.pid != 4)
            .map(|d| d.time)
            .min()
            .unwrap();
        assert!(others_first < 1_500, "the rest of the mesh is unaffected");
    }

    #[test]
    fn crash_storm_is_deterministic_and_spread() {
        let mut cfg = base(6, Algorithm::Quiescent);
        Schedule::CrashStorm {
            count: 4,
            start: 100,
            width: 300,
            protect: Some(0),
        }
        .apply(&mut cfg)
        .unwrap();
        assert_eq!(cfg.crashes.faulty_count(), 4);
        assert!(matches!(cfg.crashes.rule(0), CrashRule::Never), "protected");
        assert_eq!(cfg.crashes.rule(5), CrashRule::At(100), "first victim");
        assert_eq!(cfg.crashes.rule(2), CrashRule::At(400), "last victim");
    }

    #[test]
    fn churn_emits_one_partition_per_cycle() {
        let mut cfg = base(4, Algorithm::Majority);
        Schedule::Churn {
            a: vec![0, 1],
            b: vec![2, 3],
            start: 100,
            cut: 200,
            heal: 300,
            cycles: 3,
        }
        .apply(&mut cfg)
        .unwrap();
        assert_eq!(cfg.blackouts.len(), 3 * 8);
        assert!(cfg.blackouts.iter().any(|b| b.start == 1_100));
        assert!(cfg.blackouts.iter().all(|b| b.end - b.start == 200));
    }

    #[test]
    fn targeted_delay_installs_overrides() {
        let mut cfg = base(4, Algorithm::Majority);
        Schedule::TargetedDelay {
            links: vec![(0, 1), (0, 2)],
            base: 1,
            p_more: 0.7,
            cap: 60,
        }
        .apply(&mut cfg)
        .unwrap();
        assert_eq!(cfg.delay_overrides.len(), 2);
        assert!(matches!(
            cfg.delay_overrides[0].delay,
            DelayModel::GeometricTail { cap: 60, .. }
        ));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut cfg = base(4, Algorithm::Majority);
        for bad in [
            Schedule::PartitionHeal {
                a: vec![0, 2],
                b: vec![2, 3],
                start: 0,
                end: 10,
            },
            Schedule::PartitionHeal {
                a: vec![0],
                b: vec![1],
                start: 10,
                end: 10,
            },
            Schedule::AckStarvation {
                victim: 9,
                start: 0,
                end: 10,
            },
            Schedule::CrashStorm {
                count: 4,
                start: 0,
                width: 0,
                protect: None,
            },
            Schedule::TargetedDelay {
                links: vec![(0, 1)],
                base: 10,
                p_more: 0.5,
                cap: 5,
            },
            Schedule::Churn {
                a: vec![0],
                b: vec![1],
                start: 0,
                cut: 0,
                heal: 5,
                cycles: 2,
            },
        ] {
            assert!(bad.apply(&mut cfg).is_err(), "should reject {bad:?}");
        }
    }
}
