//! The **soak plane** (DESIGN.md §14): million-message memory-boundedness
//! runs, executed by stepping [`TopicEngine`]s directly in lockstep instead
//! of through the event queue.
//!
//! The discrete-event driver ([`crate::sim::run`]) prices every message
//! copy through the channel models; a soak does not care about loss or
//! delay — it cares whether resident protocol state stays bounded when
//! messages keep coming forever. So the soak harness floods every emission
//! to every process immediately (a perfect, lossless, instant network),
//! sweeps Task 1 and the compactor on a fixed cadence, and samples
//! [`urb_types::ProcessStats::total`] as the run grows. One million
//! messages take
//! seconds this way, which is what makes the E20 plateau curve and the
//! CI `soak-smoke` job affordable.
//!
//! Determinism is inherited from the engines: a soak is a pure function of
//! its [`SoakConfig`], and because compaction draws no randomness, a
//! bounded-memory soak and an unbounded soak of the same config produce
//! **identical per-process delivery sequences** — asserted via the
//! order-sensitive rolling hashes in [`SoakOutcome::delivery_hashes`].
//! Mid-run crash-and-restore is modelled too: with
//! [`SoakConfig::snapshot_restart_at`] set, every engine is serialized,
//! torn down and restored from bytes at that point, and the outcome must
//! be byte-identical to an undisturbed run.

use std::collections::VecDeque;
use urb_core::Algorithm;
use urb_engine::{StepBuffers, StepInput, TopicEngine};
use urb_types::snapshot::fnv1a;
use urb_types::{
    FdPair, FdSnapshot, FdView, Label, MemoryConfig, Payload, SplitMix64, TopicId, WireMessage,
};

/// Configuration of one soak run.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// System size `n` (every process is correct; a soak stresses memory,
    /// not fault tolerance).
    pub n: usize,
    /// Protocol under test.
    pub algorithm: Algorithm,
    /// Root seed.
    pub seed: u64,
    /// Total `URB_broadcast` invocations, round-robined across processes.
    pub messages: u64,
    /// Every `sweep_every` messages: one Task-1 sweep per process, one
    /// compaction sweep (bounded-memory mode only) and one state sample.
    pub sweep_every: u64,
    /// Bounded-memory mode; `None` runs the unbounded reference arm.
    pub memory: Option<MemoryConfig>,
    /// When set, after this many messages every engine is serialized to a
    /// snapshot, dropped, rebuilt fresh and restored — the crash-recovery
    /// arm. The outcome must equal an undisturbed run's.
    pub snapshot_restart_at: Option<u64>,
}

impl SoakConfig {
    /// A quiescent-algorithm soak of `messages` messages on 3 processes.
    pub fn new(messages: u64) -> Self {
        SoakConfig {
            n: 3,
            algorithm: Algorithm::Quiescent,
            seed: 1,
            messages,
            sweep_every: 32,
            memory: None,
            snapshot_restart_at: None,
        }
    }

    /// Switches on bounded-memory mode (builder style).
    pub fn memory(mut self, cfg: MemoryConfig) -> Self {
        self.memory = Some(cfg);
        self
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedules the mid-run snapshot/restore (builder style).
    pub fn snapshot_restart_at(mut self, at: u64) -> Self {
        self.snapshot_restart_at = Some(at);
        self
    }
}

/// One state-residency sample along a soak.
#[derive(Clone, Copy, Debug)]
pub struct SoakSample {
    /// Messages broadcast so far when the sample was taken.
    pub messages: u64,
    /// Aggregate [`ProcessStats::total`] over every process.
    ///
    /// [`ProcessStats::total`]: urb_types::ProcessStats::total
    pub resident: usize,
}

/// Everything a soak run observed.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// Messages broadcast.
    pub messages: u64,
    /// Per-process URB-delivery counts.
    pub delivered: Vec<u64>,
    /// Per-process order-sensitive rolling hashes over the delivery
    /// sequence (tag order). Two runs delivered identically iff these
    /// match element-wise.
    pub delivery_hashes: Vec<u64>,
    /// Peak aggregate residency over all samples.
    pub peak_resident: usize,
    /// Aggregate residency after the final drain.
    pub final_resident: usize,
    /// Residency trajectory (one sample per sweep).
    pub samples: Vec<SoakSample>,
    /// Total state entries reclaimed by compaction (0 when unbounded).
    pub reclaimed: u64,
    /// Total tags tombstoned by compaction (0 when unbounded).
    pub tombstoned: u64,
    /// Every engine ended quiescent.
    pub quiescent: bool,
}

impl SoakOutcome {
    /// True when `other` delivered exactly the same tags in the same order
    /// at every process.
    pub fn same_deliveries(&self, other: &SoakOutcome) -> bool {
        self.delivered == other.delivered && self.delivery_hashes == other.delivery_hashes
    }
}

struct Soak {
    cfg: SoakConfig,
    engines: Vec<TopicEngine>,
    fd: FdSnapshot,
    buf: StepBuffers,
    queue: VecDeque<WireMessage>,
    delivered: Vec<u64>,
    hashes: Vec<u64>,
    samples: Vec<SoakSample>,
    peak: usize,
}

impl Soak {
    fn build_engines(cfg: &SoakConfig) -> Vec<TopicEngine> {
        let seed_mix = SplitMix64::new(cfg.seed ^ 0x50AC_50AC_50AC_50AC);
        let mut engines: Vec<TopicEngine> = (0..cfg.n)
            .map(|i| {
                TopicEngine::single(cfg.algorithm.instantiate(cfg.n), seed_mix.split(i as u64))
            })
            .collect();
        if let Some(mem) = cfg.memory {
            for e in &mut engines {
                e.configure_memory(mem);
            }
        }
        engines
    }

    fn new(cfg: SoakConfig) -> Self {
        assert!(cfg.n >= 1);
        assert!(cfg.sweep_every >= 1);
        // Every process is correct and shares one static full view: both
        // detectors report a single label covering all n processes, which
        // satisfies AΘ (deliver once all n distinct ACKs carry it) and
        // AP* (prune once the ACK table matches the full view).
        let view = FdView::from_pairs([FdPair {
            label: Label(0x50AC),
            number: cfg.n as u32,
        }]);
        let fd = if cfg.algorithm.needs_fd() {
            FdSnapshot::new(view.clone(), view)
        } else {
            FdSnapshot::none()
        };
        let engines = Self::build_engines(&cfg);
        let n = cfg.n;
        Soak {
            cfg,
            engines,
            fd,
            buf: StepBuffers::new(),
            queue: VecDeque::new(),
            delivered: vec![0; n],
            hashes: vec![0xCBF2_9CE4_8422_2325; n],
            samples: Vec::new(),
            peak: 0,
        }
    }

    fn record(&mut self, pid: usize) {
        for d in &self.buf.deliveries {
            self.delivered[pid] += 1;
            self.hashes[pid] ^= fnv1a(&d.tag.0.to_le_bytes());
            self.hashes[pid] = self.hashes[pid].wrapping_mul(0x1000_0000_01B3);
        }
        self.queue.extend(self.buf.outbox.drain(..));
    }

    /// Delivers every queued emission to every process, instantly and
    /// losslessly, until the network is silent.
    fn flood(&mut self) {
        while let Some(msg) = self.queue.pop_front() {
            for pid in 0..self.cfg.n {
                self.engines[pid].step(
                    TopicId::ZERO,
                    StepInput::Receive(msg.clone()),
                    &self.fd,
                    &mut self.buf,
                );
                self.record(pid);
            }
        }
    }

    /// One Task-1 sweep of every process (flooding what it emits), then —
    /// in bounded-memory mode — one compaction sweep, then a sample.
    fn sweep(&mut self, messages_so_far: u64) {
        for pid in 0..self.cfg.n {
            self.engines[pid].step(TopicId::ZERO, StepInput::Tick, &self.fd, &mut self.buf);
            self.record(pid);
        }
        self.flood();
        if self.cfg.memory.is_some() {
            for e in &mut self.engines {
                e.compact_all(&self.fd);
            }
        }
        let resident: usize = self.engines.iter().map(|e| e.stats().total()).sum();
        self.peak = self.peak.max(resident);
        self.samples.push(SoakSample {
            messages: messages_so_far,
            resident,
        });
    }

    /// Serializes every engine, tears the fleet down and restores from
    /// bytes into freshly-built engines — the simulated crash+recovery.
    fn restart_from_snapshots(&mut self) {
        let snapshots: Vec<Vec<u8>> = self
            .engines
            .iter()
            .map(|e| {
                e.save_snapshot()
                    .expect("soak algorithms support snapshots")
            })
            .collect();
        let mut fresh = Self::build_engines(&self.cfg);
        for (e, bytes) in fresh.iter_mut().zip(&snapshots) {
            e.restore_snapshot(bytes).expect("own snapshot restores");
        }
        self.engines = fresh;
    }

    fn run(mut self) -> SoakOutcome {
        let payload = Payload::from("soak");
        for i in 0..self.cfg.messages {
            if self.cfg.snapshot_restart_at == Some(i) {
                self.restart_from_snapshots();
            }
            let pid = (i % self.cfg.n as u64) as usize;
            self.engines[pid].step(
                TopicId::ZERO,
                StepInput::Broadcast(payload.clone()),
                &self.fd,
                &mut self.buf,
            );
            self.record(pid);
            self.flood();
            if (i + 1) % self.cfg.sweep_every == 0 {
                self.sweep(i + 1);
            }
        }
        // Drain: enough sweeps to clear every grace clock, so everything
        // stable at the end is also reclaimed (bounded mode).
        let grace = self.cfg.memory.map_or(1, |m| m.grace_ticks + 2);
        for _ in 0..grace.max(2) {
            self.sweep(self.cfg.messages);
        }
        let final_resident: usize = self.engines.iter().map(|e| e.stats().total()).sum();
        let (mut reclaimed, mut tombstoned) = (0u64, 0u64);
        for e in &self.engines {
            reclaimed += e.counters().reclaimed;
            tombstoned += e.counters().tombstoned;
        }
        SoakOutcome {
            messages: self.cfg.messages,
            quiescent: self.engines.iter().all(|e| e.is_quiescent()),
            delivered: self.delivered,
            delivery_hashes: self.hashes,
            peak_resident: self.peak,
            final_resident,
            samples: self.samples,
            reclaimed,
            tombstoned,
        }
    }
}

/// Executes one soak run. Pure function of the config.
pub fn soak(cfg: SoakConfig) -> SoakOutcome {
    Soak::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryConfig {
        MemoryConfig {
            ceiling: Some(600),
            ..MemoryConfig::default()
        }
    }

    /// The tier-1 soak: small enough for debug builds, same shape as the
    /// ignored 100k/1M tiers.
    #[test]
    fn compacted_soak_plateaus_and_delivers_identically() {
        let base = SoakConfig::new(2_000).seed(11);
        let unbounded = soak(base.clone());
        let bounded = soak(base.memory(mem()));
        assert!(
            bounded.same_deliveries(&unbounded),
            "compaction must not change deliveries"
        );
        for (pid, &count) in unbounded.delivered.iter().enumerate() {
            assert_eq!(count, 2_000, "process {pid} delivers every message");
        }
        assert!(bounded.quiescent);
        assert!(bounded.reclaimed > 0, "compaction actually ran");
        // The headline: unbounded residency grows with the message count;
        // bounded residency plateaus far below it.
        assert!(
            unbounded.final_resident >= 2_000,
            "unbounded run retains per-message state ({})",
            unbounded.final_resident
        );
        assert!(
            bounded.peak_resident < unbounded.final_resident / 4,
            "bounded peak {} should plateau well below unbounded final {}",
            bounded.peak_resident,
            unbounded.final_resident
        );
    }

    #[test]
    fn alg1_bounded_soak_quiesces_and_matches_unbounded_deliveries() {
        let base = SoakConfig {
            algorithm: Algorithm::Majority,
            ..SoakConfig::new(500).seed(13)
        };
        let unbounded = soak(base.clone());
        let bounded = soak(base.memory(mem()));
        assert!(bounded.same_deliveries(&unbounded));
        assert!(
            bounded.quiescent,
            "reclaiming fully-acked msgs silences Task 1 (D§14 deviation)"
        );
        assert!(!unbounded.quiescent, "Algorithm 1 never quiesces unbounded");
        assert!(bounded.peak_resident < unbounded.final_resident / 4);
    }

    #[test]
    fn mid_soak_snapshot_restart_is_invisible() {
        let base = SoakConfig::new(600).seed(17).memory(mem());
        let straight = soak(base.clone());
        let restarted = soak(base.snapshot_restart_at(300));
        assert!(restarted.same_deliveries(&straight));
        assert_eq!(restarted.final_resident, straight.final_resident);
        assert_eq!(restarted.reclaimed, straight.reclaimed);
    }

    #[test]
    fn soak_is_deterministic_per_seed() {
        let cfg = SoakConfig::new(300).seed(23).memory(mem());
        let a = soak(cfg.clone());
        let b = soak(cfg);
        assert!(a.same_deliveries(&b));
        assert_eq!(a.peak_resident, b.peak_resident);
        let c = soak(SoakConfig::new(300).seed(24).memory(mem()));
        assert_ne!(a.delivery_hashes, c.delivery_hashes, "seed moves the tags");
    }

    /// The CI `soak-smoke` tier — reduced to 100k messages, with the hard
    /// residency ceiling the job asserts on. `--ignored` only.
    #[test]
    #[ignore = "soak tier: run with --ignored (CI soak-smoke job)"]
    fn soak_100k_respects_hard_ceiling() {
        let out = soak(SoakConfig::new(100_000).seed(31).memory(mem()));
        assert!(out.quiescent);
        assert_eq!(out.delivered, vec![100_000; 3]);
        assert!(
            out.peak_resident < 2_000,
            "resident state {} must stay bounded regardless of message count",
            out.peak_resident
        );
    }

    /// The headline millionth-message soak (ISSUE acceptance): bounded
    /// residency plateaus while deliveries match the unbounded reference
    /// arm exactly. `--ignored` only (takes a few minutes in release).
    #[test]
    #[ignore = "soak tier: run with --ignored (million-message acceptance)"]
    fn soak_one_million_plateaus_with_identical_deliveries() {
        let base = SoakConfig::new(1_000_000).seed(41);
        let bounded = soak(base.clone().memory(mem()));
        assert!(bounded.quiescent);
        assert_eq!(bounded.delivered, vec![1_000_000; 3]);
        assert!(
            bounded.peak_resident < 2_000,
            "plateau: peak {} after a million messages",
            bounded.peak_resident
        );
        let unbounded = soak(base);
        assert!(bounded.same_deliveries(&unbounded));
        assert!(unbounded.final_resident >= 1_000_000);
    }
}
