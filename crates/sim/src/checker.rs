//! Machine checker for the three URB properties (paper §II).
//!
//! The paper's correctness statements quantify over infinite runs
//! ("eventually delivers"); the checker evaluates them on a finite run that
//! either reached quiescence (Algorithm 2) or ran far past its convergence
//! horizon (Algorithm 1), which is the standard simulation-grade reading of
//! "eventually" (DESIGN.md §7). Every experiment run is passed through this
//! checker; E1/E3 report its verdicts en masse.
//!
//! Checked properties:
//!
//! * **Validity** — if a *correct* process broadcasts `m`, it eventually
//!   delivers `m`.
//! * **Uniform Agreement** — if *some* process (correct or not) delivers
//!   `m`, then every correct process eventually delivers `m`.
//! * **Uniform Integrity** — every process delivers `m` at most once, and
//!   only if `m` was previously URB-broadcast.

use crate::metrics::{BroadcastRecord, DeliveryRecord};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use urb_types::{Tag, TopicId};

/// Verdict of one property.
#[derive(Clone, Debug, Serialize, PartialEq, Eq)]
pub enum PropertyVerdict {
    /// The property holds on this run.
    Holds,
    /// The property is violated; the strings describe each violation.
    Violated(Vec<String>),
}

impl PropertyVerdict {
    /// True when the property holds.
    pub fn ok(&self) -> bool {
        matches!(self, PropertyVerdict::Holds)
    }

    fn from_violations(v: Vec<String>) -> Self {
        if v.is_empty() {
            PropertyVerdict::Holds
        } else {
            PropertyVerdict::Violated(v)
        }
    }
}

/// Combined report for one run.
#[derive(Clone, Debug, Serialize)]
pub struct CheckReport {
    /// Validity verdict.
    pub validity: PropertyVerdict,
    /// Uniform-agreement verdict.
    pub agreement: PropertyVerdict,
    /// Uniform-integrity verdict.
    pub integrity: PropertyVerdict,
}

impl CheckReport {
    /// All three properties hold.
    pub fn all_ok(&self) -> bool {
        self.validity.ok() && self.agreement.ok() && self.integrity.ok()
    }

    /// Flat list of all violation messages.
    pub fn violations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for v in [&self.validity, &self.agreement, &self.integrity] {
            if let PropertyVerdict::Violated(msgs) = v {
                out.extend(msgs.iter().map(String::as_str));
            }
        }
        out
    }
}

/// Checks the URB properties over one run's observable history.
///
/// * `n` — system size;
/// * `correct` — `correct[i]` iff process `i` never crashed in this run;
/// * `broadcasts` / `deliveries` — the driver's records.
pub fn check_urb(
    n: usize,
    correct: &[bool],
    broadcasts: &[BroadcastRecord],
    deliveries: &[DeliveryRecord],
) -> CheckReport {
    assert_eq!(correct.len(), n);
    let broadcast_tags: BTreeMap<Tag, &BroadcastRecord> =
        broadcasts.iter().map(|b| (b.tag, b)).collect();

    // Per-process delivered multisets.
    let mut per_proc: Vec<BTreeMap<Tag, u32>> = vec![BTreeMap::new(); n];
    for d in deliveries {
        *per_proc[d.pid].entry(d.tag).or_insert(0) += 1;
    }

    // Validity: correct broadcaster delivers its own message.
    let mut validity = Vec::new();
    for b in broadcasts {
        if correct[b.pid] && !per_proc[b.pid].contains_key(&b.tag) {
            validity.push(format!(
                "validity: correct process {} broadcast {:?} at t={} but never delivered it",
                b.pid, b.tag, b.time
            ));
        }
    }

    // Uniform agreement: any delivery (even by a process that later
    // crashed) obligates every correct process.
    let mut agreement = Vec::new();
    let delivered_by_anyone: BTreeSet<Tag> = deliveries.iter().map(|d| d.tag).collect();
    for &tag in &delivered_by_anyone {
        for (pid, is_correct) in correct.iter().enumerate() {
            if *is_correct && !per_proc[pid].contains_key(&tag) {
                agreement.push(format!(
                    "agreement: {tag:?} was delivered by some process but correct process {pid} never delivered it"
                ));
            }
        }
    }

    // Uniform integrity: at most once per process, and only broadcast
    // messages.
    let mut integrity = Vec::new();
    for (pid, tags) in per_proc.iter().enumerate() {
        for (tag, count) in tags {
            if *count > 1 {
                integrity.push(format!(
                    "integrity: process {pid} delivered {tag:?} {count} times"
                ));
            }
            if !broadcast_tags.contains_key(tag) {
                integrity.push(format!(
                    "integrity: process {pid} delivered {tag:?} which was never URB-broadcast"
                ));
            }
        }
    }
    // Content integrity: the channel axioms forbid garbling; every
    // delivered payload must be byte-identical to the broadcast one.
    for d in deliveries {
        if let Some(b) = broadcast_tags.get(&d.tag) {
            if b.payload != d.payload {
                integrity.push(format!(
                    "integrity: process {} delivered {:?} with a garbled payload",
                    d.pid, d.tag
                ));
            }
        }
    }

    CheckReport {
        validity: PropertyVerdict::from_violations(validity),
        agreement: PropertyVerdict::from_violations(agreement),
        integrity: PropertyVerdict::from_violations(integrity),
    }
}

/// One topic's URB verdict on a multi-instance run (DESIGN.md §12).
#[derive(Clone, Debug, Serialize)]
pub struct TopicReport {
    /// The URB instance this verdict covers.
    pub topic: TopicId,
    /// Broadcasts issued on this topic.
    pub broadcasts: usize,
    /// Deliveries produced on this topic (across all processes).
    pub deliveries: usize,
    /// The three URB property verdicts, restricted to this topic's
    /// records.
    pub report: CheckReport,
}

/// [`check_urb`] **per topic**: every URB instance is an independent
/// state machine with its own correctness obligations, so the records
/// are partitioned by [`TopicId`] and each partition is checked on its
/// own. Topics are reported in ascending order. `configured` is the
/// run's configured topic count: every topic in `0..configured` gets a
/// report row **even when it produced no records at all** — a silent
/// instance must still face `min_deliveries_per_topic`-style
/// expectations, not vanish from the verdict (a starved topic is
/// exactly what those keys exist to catch).
pub fn check_urb_per_topic(
    n: usize,
    correct: &[bool],
    configured: u32,
    broadcasts: &[BroadcastRecord],
    deliveries: &[DeliveryRecord],
) -> Vec<TopicReport> {
    let known: Vec<TopicId> = (0..configured.max(1)).map(TopicId).collect();
    check_urb_per_topics(n, correct, &known, broadcasts, deliveries)
}

/// [`check_urb_per_topic`] over an **explicit** topic directory — the
/// dynamic-lifecycle entry point (DESIGN.md §15). `known` is every topic
/// that was ever live in the run (static config ∪ `[[topics.events]]`
/// creates); each gets a report row even when silent, and a *retired*
/// topic is still judged on its pre-retirement records — retirement
/// truncates "eventually", it does not erase obligations already
/// incurred. Topics appearing only in the records (defensive) are
/// included too.
pub fn check_urb_per_topics(
    n: usize,
    correct: &[bool],
    known: &[TopicId],
    broadcasts: &[BroadcastRecord],
    deliveries: &[DeliveryRecord],
) -> Vec<TopicReport> {
    let mut topics: Vec<TopicId> = known
        .iter()
        .copied()
        .chain(broadcasts.iter().map(|b| b.topic))
        .chain(deliveries.iter().map(|d| d.topic))
        .collect();
    topics.sort_unstable();
    topics.dedup();
    topics
        .into_iter()
        .map(|topic| {
            let b: Vec<BroadcastRecord> = broadcasts
                .iter()
                .filter(|x| x.topic == topic)
                .cloned()
                .collect();
            let d: Vec<DeliveryRecord> = deliveries
                .iter()
                .filter(|x| x.topic == topic)
                .cloned()
                .collect();
            TopicReport {
                topic,
                broadcasts: b.len(),
                deliveries: d.len(),
                report: check_urb(n, correct, &b, &d),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pid: usize, tag: u128, time: u64) -> BroadcastRecord {
        BroadcastRecord {
            pid,
            topic: TopicId::ZERO,
            tag: Tag(tag),
            time,
            payload: urb_types::Payload::from("m"),
        }
    }

    fn d(pid: usize, tag: u128, time: u64) -> DeliveryRecord {
        DeliveryRecord {
            pid,
            topic: TopicId::ZERO,
            tag: Tag(tag),
            time,
            fast: false,
            payload: urb_types::Payload::from("m"),
        }
    }

    #[test]
    fn garbled_payload_detected() {
        let correct = vec![true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let mut dd = d(1, 1, 20);
        dd.payload = urb_types::Payload::from("GARBLED");
        let deliveries = vec![d(0, 1, 15), dd];
        let r = check_urb(2, &correct, &broadcasts, &deliveries);
        assert!(!r.integrity.ok());
        assert!(r.violations()[0].contains("garbled"));
    }

    #[test]
    fn clean_run_passes() {
        let correct = vec![true, true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(0, 1, 20), d(1, 1, 25), d(2, 1, 30)];
        let r = check_urb(3, &correct, &broadcasts, &deliveries);
        assert!(r.all_ok(), "{:?}", r.violations());
    }

    #[test]
    fn validity_violation_detected() {
        let correct = vec![true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(1, 1, 20)]; // broadcaster itself never delivers
        let r = check_urb(2, &correct, &broadcasts, &deliveries);
        assert!(!r.validity.ok());
        // Agreement also broken: someone delivered, correct process 0 didn't.
        assert!(!r.agreement.ok());
    }

    #[test]
    fn faulty_broadcaster_does_not_owe_validity() {
        let correct = vec![false, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(1, 1, 20)];
        let r = check_urb(2, &correct, &broadcasts, &deliveries);
        assert!(r.validity.ok(), "validity only binds correct broadcasters");
        assert!(r.all_ok());
    }

    #[test]
    fn agreement_violation_from_crashed_deliverer() {
        // The uniformity scenario: process 0 delivers then crashes; correct
        // processes never deliver. This is exactly what URB forbids (and
        // what eager RB exhibits — experiment E11).
        let correct = vec![false, true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(0, 1, 12)];
        let r = check_urb(3, &correct, &broadcasts, &deliveries);
        assert!(!r.agreement.ok());
        assert_eq!(r.violations().len(), 2, "two correct processes missed it");
    }

    #[test]
    fn integrity_duplicate_detected() {
        let correct = vec![true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(0, 1, 20), d(0, 1, 21)];
        let r = check_urb(1, &correct, &broadcasts, &deliveries);
        assert!(!r.integrity.ok());
    }

    #[test]
    fn integrity_phantom_message_detected() {
        let correct = vec![true];
        let broadcasts = vec![];
        let deliveries = vec![d(0, 99, 20)];
        let r = check_urb(1, &correct, &broadcasts, &deliveries);
        assert!(!r.integrity.ok());
        assert!(r.violations()[0].contains("never URB-broadcast"));
    }

    #[test]
    fn empty_run_passes() {
        let r = check_urb(4, &[true; 4], &[], &[]);
        assert!(r.all_ok());
    }

    #[test]
    fn undelivered_broadcast_by_faulty_process_is_fine() {
        // A faulty process broadcast but nobody delivered: no property binds.
        let correct = vec![false, true];
        let broadcasts = vec![b(0, 1, 10)];
        let r = check_urb(2, &correct, &broadcasts, &[]);
        assert!(r.all_ok());
    }

    #[test]
    fn per_topic_checker_partitions_verdicts() {
        // Topic 0 is healthy; topic 1's agreement is broken (a crashed
        // deliverer, correct processes starved). The per-topic checker
        // must blame exactly topic 1, while the global checker (which
        // sees the union) also fails.
        let correct = vec![false, true];
        let mut b0 = b(1, 1, 10);
        b0.topic = TopicId(0);
        let mut b1 = b(0, 2, 10);
        b1.topic = TopicId(1);
        let mut d0a = d(0, 1, 20);
        d0a.topic = TopicId(0);
        let mut d0b = d(1, 1, 21);
        d0b.topic = TopicId(0);
        let mut d1 = d(0, 2, 22);
        d1.topic = TopicId(1);
        let reports = check_urb_per_topic(2, &correct, 2, &[b0, b1], &[d0a, d0b, d1]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].topic, TopicId(0));
        assert!(reports[0].report.all_ok(), "{:?}", reports[0].report);
        assert_eq!(reports[0].deliveries, 2);
        assert_eq!(reports[1].topic, TopicId(1));
        assert!(!reports[1].report.agreement.ok());
        assert_eq!(reports[1].broadcasts, 1);
    }

    #[test]
    fn per_topic_checker_empty_run_reports_topic_zero() {
        let reports = check_urb_per_topic(3, &[true; 3], 1, &[], &[]);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].topic, TopicId::ZERO);
        assert!(reports[0].report.all_ok());
    }

    #[test]
    fn per_topic_checker_reports_silent_configured_topics() {
        // A configured topic with no records must still get a row (with
        // zero deliveries), so per-topic minimum-delivery expectations
        // can fail it instead of passing vacuously.
        let correct = vec![true, true];
        let b0 = b(0, 1, 10); // topic 0 only
        let d0 = d(0, 1, 20);
        let d1 = d(1, 1, 21);
        let reports = check_urb_per_topic(2, &correct, 3, &[b0], &[d0, d1]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[1].topic, TopicId(1));
        assert_eq!(reports[1].deliveries, 0, "silent topic visible");
        assert_eq!(reports[2].deliveries, 0);
        assert!(reports[1].report.all_ok(), "no records → vacuously clean");
    }

    #[test]
    fn explicit_topic_directory_drives_the_report_rows() {
        // Dynamic-lifecycle entry point: the directory lists topics 0 and
        // 7 (a dynamically created id); records mention only 7. Both get
        // rows, and a record-only topic outside the directory still
        // surfaces defensively.
        let correct = vec![true, true];
        let mut b7 = b(0, 1, 10);
        b7.topic = TopicId(7);
        let mut d7a = d(0, 1, 20);
        d7a.topic = TopicId(7);
        let mut d7b = d(1, 1, 21);
        d7b.topic = TopicId(7);
        let mut d9 = d(0, 2, 5);
        d9.topic = TopicId(9);
        let mut b9 = b(0, 2, 1);
        b9.topic = TopicId(9);
        let mut d9b = d(1, 2, 6);
        d9b.topic = TopicId(9);
        let reports = check_urb_per_topics(
            2,
            &correct,
            &[TopicId(0), TopicId(7)],
            &[b7, b9],
            &[d7a, d7b, d9, d9b],
        );
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].topic, TopicId(0));
        assert_eq!(reports[0].deliveries, 0, "silent directory entry kept");
        assert_eq!(reports[1].topic, TopicId(7));
        assert!(reports[1].report.all_ok(), "{:?}", reports[1].report);
        assert_eq!(reports[2].topic, TopicId(9), "record-only topic surfaces");
    }

    #[test]
    fn report_accessors() {
        let r = check_urb(1, &[true], &[], &[d(0, 1, 5)]);
        assert!(!r.all_ok());
        assert!(!r.violations().is_empty());
    }
}
