//! Machine checker for the three URB properties (paper §II).
//!
//! The paper's correctness statements quantify over infinite runs
//! ("eventually delivers"); the checker evaluates them on a finite run that
//! either reached quiescence (Algorithm 2) or ran far past its convergence
//! horizon (Algorithm 1), which is the standard simulation-grade reading of
//! "eventually" (DESIGN.md §7). Every experiment run is passed through this
//! checker; E1/E3 report its verdicts en masse.
//!
//! Checked properties:
//!
//! * **Validity** — if a *correct* process broadcasts `m`, it eventually
//!   delivers `m`.
//! * **Uniform Agreement** — if *some* process (correct or not) delivers
//!   `m`, then every correct process eventually delivers `m`.
//! * **Uniform Integrity** — every process delivers `m` at most once, and
//!   only if `m` was previously URB-broadcast.

use crate::metrics::{BroadcastRecord, DeliveryRecord};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use urb_types::Tag;

/// Verdict of one property.
#[derive(Clone, Debug, Serialize, PartialEq, Eq)]
pub enum PropertyVerdict {
    /// The property holds on this run.
    Holds,
    /// The property is violated; the strings describe each violation.
    Violated(Vec<String>),
}

impl PropertyVerdict {
    /// True when the property holds.
    pub fn ok(&self) -> bool {
        matches!(self, PropertyVerdict::Holds)
    }

    fn from_violations(v: Vec<String>) -> Self {
        if v.is_empty() {
            PropertyVerdict::Holds
        } else {
            PropertyVerdict::Violated(v)
        }
    }
}

/// Combined report for one run.
#[derive(Clone, Debug, Serialize)]
pub struct CheckReport {
    /// Validity verdict.
    pub validity: PropertyVerdict,
    /// Uniform-agreement verdict.
    pub agreement: PropertyVerdict,
    /// Uniform-integrity verdict.
    pub integrity: PropertyVerdict,
}

impl CheckReport {
    /// All three properties hold.
    pub fn all_ok(&self) -> bool {
        self.validity.ok() && self.agreement.ok() && self.integrity.ok()
    }

    /// Flat list of all violation messages.
    pub fn violations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for v in [&self.validity, &self.agreement, &self.integrity] {
            if let PropertyVerdict::Violated(msgs) = v {
                out.extend(msgs.iter().map(String::as_str));
            }
        }
        out
    }
}

/// Checks the URB properties over one run's observable history.
///
/// * `n` — system size;
/// * `correct` — `correct[i]` iff process `i` never crashed in this run;
/// * `broadcasts` / `deliveries` — the driver's records.
pub fn check_urb(
    n: usize,
    correct: &[bool],
    broadcasts: &[BroadcastRecord],
    deliveries: &[DeliveryRecord],
) -> CheckReport {
    assert_eq!(correct.len(), n);
    let broadcast_tags: BTreeMap<Tag, &BroadcastRecord> =
        broadcasts.iter().map(|b| (b.tag, b)).collect();

    // Per-process delivered multisets.
    let mut per_proc: Vec<BTreeMap<Tag, u32>> = vec![BTreeMap::new(); n];
    for d in deliveries {
        *per_proc[d.pid].entry(d.tag).or_insert(0) += 1;
    }

    // Validity: correct broadcaster delivers its own message.
    let mut validity = Vec::new();
    for b in broadcasts {
        if correct[b.pid] && !per_proc[b.pid].contains_key(&b.tag) {
            validity.push(format!(
                "validity: correct process {} broadcast {:?} at t={} but never delivered it",
                b.pid, b.tag, b.time
            ));
        }
    }

    // Uniform agreement: any delivery (even by a process that later
    // crashed) obligates every correct process.
    let mut agreement = Vec::new();
    let delivered_by_anyone: BTreeSet<Tag> = deliveries.iter().map(|d| d.tag).collect();
    for &tag in &delivered_by_anyone {
        for (pid, is_correct) in correct.iter().enumerate() {
            if *is_correct && !per_proc[pid].contains_key(&tag) {
                agreement.push(format!(
                    "agreement: {tag:?} was delivered by some process but correct process {pid} never delivered it"
                ));
            }
        }
    }

    // Uniform integrity: at most once per process, and only broadcast
    // messages.
    let mut integrity = Vec::new();
    for (pid, tags) in per_proc.iter().enumerate() {
        for (tag, count) in tags {
            if *count > 1 {
                integrity.push(format!(
                    "integrity: process {pid} delivered {tag:?} {count} times"
                ));
            }
            if !broadcast_tags.contains_key(tag) {
                integrity.push(format!(
                    "integrity: process {pid} delivered {tag:?} which was never URB-broadcast"
                ));
            }
        }
    }
    // Content integrity: the channel axioms forbid garbling; every
    // delivered payload must be byte-identical to the broadcast one.
    for d in deliveries {
        if let Some(b) = broadcast_tags.get(&d.tag) {
            if b.payload != d.payload {
                integrity.push(format!(
                    "integrity: process {} delivered {:?} with a garbled payload",
                    d.pid, d.tag
                ));
            }
        }
    }

    CheckReport {
        validity: PropertyVerdict::from_violations(validity),
        agreement: PropertyVerdict::from_violations(agreement),
        integrity: PropertyVerdict::from_violations(integrity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pid: usize, tag: u128, time: u64) -> BroadcastRecord {
        BroadcastRecord {
            pid,
            tag: Tag(tag),
            time,
            payload: urb_types::Payload::from("m"),
        }
    }

    fn d(pid: usize, tag: u128, time: u64) -> DeliveryRecord {
        DeliveryRecord {
            pid,
            tag: Tag(tag),
            time,
            fast: false,
            payload: urb_types::Payload::from("m"),
        }
    }

    #[test]
    fn garbled_payload_detected() {
        let correct = vec![true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let mut dd = d(1, 1, 20);
        dd.payload = urb_types::Payload::from("GARBLED");
        let deliveries = vec![d(0, 1, 15), dd];
        let r = check_urb(2, &correct, &broadcasts, &deliveries);
        assert!(!r.integrity.ok());
        assert!(r.violations()[0].contains("garbled"));
    }

    #[test]
    fn clean_run_passes() {
        let correct = vec![true, true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(0, 1, 20), d(1, 1, 25), d(2, 1, 30)];
        let r = check_urb(3, &correct, &broadcasts, &deliveries);
        assert!(r.all_ok(), "{:?}", r.violations());
    }

    #[test]
    fn validity_violation_detected() {
        let correct = vec![true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(1, 1, 20)]; // broadcaster itself never delivers
        let r = check_urb(2, &correct, &broadcasts, &deliveries);
        assert!(!r.validity.ok());
        // Agreement also broken: someone delivered, correct process 0 didn't.
        assert!(!r.agreement.ok());
    }

    #[test]
    fn faulty_broadcaster_does_not_owe_validity() {
        let correct = vec![false, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(1, 1, 20)];
        let r = check_urb(2, &correct, &broadcasts, &deliveries);
        assert!(r.validity.ok(), "validity only binds correct broadcasters");
        assert!(r.all_ok());
    }

    #[test]
    fn agreement_violation_from_crashed_deliverer() {
        // The uniformity scenario: process 0 delivers then crashes; correct
        // processes never deliver. This is exactly what URB forbids (and
        // what eager RB exhibits — experiment E11).
        let correct = vec![false, true, true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(0, 1, 12)];
        let r = check_urb(3, &correct, &broadcasts, &deliveries);
        assert!(!r.agreement.ok());
        assert_eq!(r.violations().len(), 2, "two correct processes missed it");
    }

    #[test]
    fn integrity_duplicate_detected() {
        let correct = vec![true];
        let broadcasts = vec![b(0, 1, 10)];
        let deliveries = vec![d(0, 1, 20), d(0, 1, 21)];
        let r = check_urb(1, &correct, &broadcasts, &deliveries);
        assert!(!r.integrity.ok());
    }

    #[test]
    fn integrity_phantom_message_detected() {
        let correct = vec![true];
        let broadcasts = vec![];
        let deliveries = vec![d(0, 99, 20)];
        let r = check_urb(1, &correct, &broadcasts, &deliveries);
        assert!(!r.integrity.ok());
        assert!(r.violations()[0].contains("never URB-broadcast"));
    }

    #[test]
    fn empty_run_passes() {
        let r = check_urb(4, &[true; 4], &[], &[]);
        assert!(r.all_ok());
    }

    #[test]
    fn undelivered_broadcast_by_faulty_process_is_fine() {
        // A faulty process broadcast but nobody delivered: no property binds.
        let correct = vec![false, true];
        let broadcasts = vec![b(0, 1, 10)];
        let r = check_urb(2, &correct, &broadcasts, &[]);
        assert!(r.all_ok());
    }

    #[test]
    fn report_accessors() {
        let r = check_urb(1, &[true], &[], &[d(0, 1, 5)]);
        assert!(!r.all_ok());
        assert!(!r.violations().is_empty());
    }
}
