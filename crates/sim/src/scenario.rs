//! Pre-built scenarios for the experiment suite and the integration tests.
//!
//! Each builder returns a fully-specified [`SimConfig`]; experiments then
//! vary seeds/parameters around these shapes. The star of the module is
//! [`theorem2_partition`], which reconstructs the adversary from the paper's
//! impossibility proof (§IV) as an executable configuration.

use crate::channel::{DelayModel, LossModel};
use crate::crash::{CrashPlan, CrashRule};
use crate::sim::{FdKind, LinkOverride, PlannedBroadcast, SimConfig};
use urb_core::Algorithm;
use urb_fd::OracleConfig;
use urb_types::Payload;

/// No loss, no crashes, `k` broadcasts — the smoke-test shape.
pub fn clean(n: usize, algorithm: Algorithm, k: usize, seed: u64) -> SimConfig {
    SimConfig::new(n, algorithm).seed(seed).workload(k, 50)
}

/// Bernoulli loss `p`, `t` random crashes (broadcaster protected), `k`
/// broadcasts — the E1/E3 grid shape.
pub fn lossy_crashy(
    n: usize,
    algorithm: Algorithm,
    p: f64,
    t: usize,
    k: usize,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::new(n, algorithm)
        .seed(seed)
        .loss(if p > 0.0 {
            LossModel::Bernoulli { p }
        } else {
            LossModel::None
        })
        .workload(k, 100)
        .max_time(120_000);
    // Algorithm 1 never quiesces — end the run once the properties are
    // decided (all correct processes delivered everything).
    cfg.stop_on_full_delivery = true;
    // Crashes land inside the active dissemination window (broadcasts start
    // at t=10, delivery convergence is O(100) ticks), so they genuinely
    // race the protocol. pid 0 (first broadcaster) is protected so validity
    // has a correct broadcaster to bind to.
    cfg.crashes = CrashPlan::random(n, t, 400, seed ^ 0xC0FF_EE00, Some(0));
    cfg
}

/// The impossibility adversary of Theorem 2 (run R2), executable.
///
/// * `S1` = processes `0 .. ⌈n/2⌉`, `S2` = the rest (`⌊n/2⌋` processes).
/// * Every link `S1 → S2` is severed (all those messages are lost — legal
///   under fair-lossy semantics because S1's members crash and therefore
///   send only finitely often).
/// * Process 0 (in S1) URB-broadcasts `m`.
/// * The algorithm under test is Algorithm 1 with delivery threshold
///   `⌈n/2⌉` — for odd `n` that *is* the strict majority (so this runs the
///   faithful algorithm outside its `t < n/2` precondition); for even `n`
///   it is the weakened threshold any hypothetical `t ≥ n/2`-tolerant
///   algorithm would effectively need (the proof's "algorithm A exists"
///   premise).
/// * Every member of S1 crashes the instant it delivers.
///
/// Expected outcome (experiment E2): members of S1 deliver `m` (they cannot
/// distinguish this run from R1, where S2 crashed initially), then crash;
/// S2 never receives anything; the checker reports a **uniform agreement
/// violation** — the executable content of Theorem 2.
pub fn theorem2_partition(n: usize, seed: u64) -> SimConfig {
    assert!(n >= 2);
    let s1 = n.div_ceil(2);
    let threshold = s1 as u32;
    let mut cfg = SimConfig::new(n, Algorithm::WeakenedMajority { threshold })
        .seed(seed)
        .max_time(60_000);
    cfg.broadcasts = vec![PlannedBroadcast {
        time: 10,
        pid: 0,
        topic: urb_types::TopicId::ZERO,
        payload: Payload::from("doomed"),
    }];
    cfg.crashes = CrashPlan::from_rules(
        (0..n)
            .map(|i| {
                if i < s1 {
                    CrashRule::OnFirstDelivery { delay: 0 }
                } else {
                    CrashRule::Never
                }
            })
            .collect(),
    );
    cfg.link_overrides = (0..s1)
        .flat_map(|from| {
            (s1..n).map(move |to| LinkOverride {
                from,
                to,
                loss: LossModel::Always,
            })
        })
        .collect();
    // The interesting phase ends quickly; no early-stop (we must observe S2
    // stay silent for the full horizon).
    cfg.stop_on_quiescence = false;
    cfg
}

/// Control arm for E2: the *faithful* Algorithm 1 under the same partition
/// adversary. With even `n` the strict majority is `n/2 + 1 > |S1|`, so S1
/// can never assemble a quorum: the algorithm blocks (nobody delivers) —
/// safe but live-less, the other horn of the impossibility.
pub fn theorem2_control(n: usize, seed: u64) -> SimConfig {
    let mut cfg = theorem2_partition(n, seed);
    cfg.algorithm = Algorithm::Majority;
    cfg
}

/// Quiescence-measurement shape (E4): `k` broadcasts, moderate loss, fixed
/// long horizon, no early stop, windowed send histogram.
pub fn quiescence_watch(
    n: usize,
    algorithm: Algorithm,
    p: f64,
    k: usize,
    horizon: u64,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::new(n, algorithm)
        .seed(seed)
        .loss(LossModel::Bernoulli { p })
        .workload(k, 100)
        .max_time(horizon);
    cfg.stop_on_quiescence = false;
    cfg.window = horizon / 60;
    cfg
}

/// Memory-growth shape (E9): a long stream of broadcasts with state-size
/// sampling on.
pub fn memory_stream(
    n: usize,
    algorithm: Algorithm,
    k: usize,
    horizon: u64,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::new(n, algorithm)
        .seed(seed)
        .loss(LossModel::Bernoulli { p: 0.1 })
        .workload(k, 200)
        .max_time(horizon);
    // Fine-grained sampling: Algorithm 2's MSG set lives only ~100 ticks
    // per message (deliver → prune), so coarse samples would miss the
    // transient entirely.
    cfg.stats_interval = 25;
    cfg.stop_on_quiescence = false;
    cfg
}

/// Oracle-latency sweep shape (E7): vary `AP*` removal latency, crash a
/// minority mid-run, measure quiescence time.
pub fn fd_latency(n: usize, pstar_delay: u64, t: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::new(n, Algorithm::Quiescent)
        .seed(seed)
        .loss(LossModel::Bernoulli { p: 0.2 })
        .workload(4, 100)
        .max_time(600_000);
    cfg.fd = FdKind::Oracle(OracleConfig {
        pstar_removal_delay: pstar_delay,
        ..OracleConfig::default()
    });
    cfg.crashes = CrashPlan::random(n, t, 2_000, seed ^ 0xFD, Some(0));
    cfg
}

/// Skewed-delay shape for the fast-delivery measurement (E10): ACKs ride
/// fast links while some MSG copies straggle, maximizing the paper's
/// fast-deliver window.
pub fn fast_delivery(n: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::new(n, Algorithm::Majority)
        .seed(seed)
        .loss(LossModel::Bernoulli { p: 0.25 })
        .workload(6, 80)
        .max_time(150_000);
    cfg.delay = DelayModel::GeometricTail {
        base: 1,
        p_more: 0.7,
        cap: 60,
    };
    // Algorithm 1 never quiesces; end once the fast/slow delivery mix is
    // decided.
    cfg.stop_on_full_delivery = true;
    cfg
}

/// Stale-ACKer shape (E12 and the D4 tests): a process acknowledges the
/// broadcast wave and then crashes *before* `a_p*` becomes ready, so its
/// never-refreshed ACK entry (still containing the crashed label) is in
/// every survivor's table when pruning first becomes possible. The literal
/// line-55 condition blocks on it forever; the D4 purge recovers.
pub fn stale_acker(algorithm: Algorithm, horizon: u64, seed: u64) -> SimConfig {
    let n = 4;
    let mut cfg = SimConfig::new(n, algorithm).seed(seed).max_time(horizon);
    // ACKs circulate by ~t=50; the crash lands at 200; a_p* only becomes
    // non-empty at ~t=500, long after the stale entry exists.
    cfg.fd = FdKind::Oracle(OracleConfig {
        appearance_spread: 0,
        theta_removal_delay: 100,
        pstar_removal_delay: 200,
        pstar_ready_slack: 500,
        // The doomed process must attach real labels (its own included) to
        // its ACKs — that is what leaves the stale entry behind.
        faulty_knowledge: true,
    });
    cfg.crashes = CrashPlan::from_rules(
        (0..n)
            .map(|i| {
                if i == n - 1 {
                    CrashRule::At(200)
                } else {
                    CrashRule::Never
                }
            })
            .collect(),
    );
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;

    #[test]
    fn theorem2_shapes() {
        let cfg = theorem2_partition(6, 1);
        assert_eq!(cfg.crashes.faulty_count(), 3);
        assert_eq!(cfg.link_overrides.len(), 9, "3×3 severed links");
        match cfg.algorithm {
            Algorithm::WeakenedMajority { threshold } => assert_eq!(threshold, 3),
            _ => panic!("wrong algorithm"),
        }
    }

    #[test]
    fn theorem2_partition_violates_agreement() {
        // The executable impossibility proof: delivery happens inside S1,
        // S1 crashes, S2 starves — uniform agreement broken.
        let out = run(theorem2_partition(6, 42));
        assert!(
            !out.metrics.deliveries.is_empty(),
            "S1 must deliver (it cannot distinguish R2 from R1)"
        );
        assert!(
            !out.report.agreement.ok(),
            "uniform agreement must be violated"
        );
        // All deliverers are in S1 (and crashed).
        for d in &out.metrics.deliveries {
            assert!(d.pid < 3, "only S1 members deliver");
        }
    }

    #[test]
    fn theorem2_control_blocks_safely() {
        // Faithful Algorithm 1, even n: threshold 4 > |S1| = 3 → no quorum,
        // no delivery, no violation. Safety is preserved by blocking.
        let out = run(theorem2_control(6, 42));
        assert!(out.metrics.deliveries.is_empty(), "must block");
        assert!(out.report.all_ok(), "blocking violates nothing");
    }

    #[test]
    fn clean_scenario_roundtrip() {
        let out = run(clean(4, Algorithm::Quiescent, 2, 5));
        assert!(out.all_ok(), "{:?}", out.report.violations());
        assert_eq!(out.metrics.broadcasts.len(), 2);
        assert_eq!(out.metrics.deliveries.len(), 8, "2 msgs × 4 procs");
    }

    #[test]
    fn lossy_crashy_respects_resilience_bounds() {
        // Algorithm 1 within its precondition.
        let out = run(lossy_crashy(5, Algorithm::Majority, 0.2, 2, 2, 9));
        assert!(out.report.all_ok(), "{:?}", out.report.violations());
        // Algorithm 2 beyond any majority.
        let out = run(lossy_crashy(5, Algorithm::Quiescent, 0.2, 4, 2, 9));
        assert!(out.all_ok(), "{:?}", out.report.violations());
    }
}
