//! Fair-lossy channel models (paper §II).
//!
//! A channel is *fair lossy* when it satisfies:
//!
//! * **Fairness** — if `p` sends `m` to `q` infinitely often and `q` is
//!   correct, `q` eventually receives `m`;
//! * **Uniform Integrity** — messages are neither created nor duplicated
//!   (every reception has a matching earlier send, and infinitely many
//!   receptions require infinitely many sends).
//!
//! Uniform Integrity holds by construction: the simulator only ever delivers
//! what was sent, at most once per send. Fairness comes in two flavours:
//!
//! * probabilistic — [`LossModel::Bernoulli`] / [`LossModel::Burst`] lose
//!   each transmission independently / in bursts; an infinitely retransmitted
//!   message gets through with probability 1, so fairness holds almost
//!   surely (fine for long-horizon statistical experiments);
//! * deterministic — [`LossModel::BoundedBernoulli`] additionally **caps
//!   consecutive drops of the same logical message** on a channel
//!   (keyed by [`WireMessage::retransmit_key`]), turning "eventually" into a
//!   hard bound so that finite runs can *prove* fairness-dependent claims.
//!
//! [`LossModel::Always`] models a severed link — used by the Theorem-2
//! partition adversary, where every message from the doomed majority to the
//! surviving minority is lost (legal under fair-lossy semantics because the
//! senders crash and therefore stop retransmitting: "sent an arbitrary but
//! finite number of times" carries no delivery guarantee).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use urb_types::{RandomSource, TopicId, WireMessage, Xoshiro256};

/// Per-transmission loss behaviour of a directed channel.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Reliable: nothing is ever lost.
    None,
    /// Each transmission lost independently with probability `p`.
    Bernoulli {
        /// Loss probability per transmission.
        p: f64,
    },
    /// Bernoulli, but at most `max_consecutive` successive losses of the
    /// same logical message per channel — deterministic fairness.
    BoundedBernoulli {
        /// Loss probability per transmission.
        p: f64,
        /// Hard cap on consecutive drops per retransmission identity.
        max_consecutive: u32,
    },
    /// Gilbert–Elliott bursts: the channel alternates between a good state
    /// (no loss) and a bad state (loss with probability `p_loss`).
    Burst {
        /// Probability per transmission of entering the bad state.
        p_enter: f64,
        /// Probability per transmission of leaving the bad state.
        p_exit: f64,
        /// Loss probability while in the bad state.
        p_loss: f64,
    },
    /// Severed link: everything is lost (partition adversary).
    Always,
}

impl LossModel {
    /// Rough long-run loss fraction (used only for labelling experiments).
    pub fn nominal_loss(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } | LossModel::BoundedBernoulli { p, .. } => *p,
            LossModel::Burst {
                p_enter,
                p_exit,
                p_loss,
            } => {
                let stationary_bad = p_enter / (p_enter + p_exit).max(f64::MIN_POSITIVE);
                stationary_bad * p_loss
            }
            LossModel::Always => 1.0,
        }
    }
}

/// Per-transmission delay of a directed channel, in ticks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Fixed delay.
    Constant(u64),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum delay (≥ 1 enforced at draw time).
        min: u64,
        /// Maximum delay.
        max: u64,
    },
    /// `base` plus a geometric tail: each extra tick added with probability
    /// `p_more` (models occasional stragglers — asynchrony's "no bound").
    GeometricTail {
        /// Base delay.
        base: u64,
        /// Probability of each additional tick.
        p_more: f64,
        /// Hard cap so runs terminate.
        cap: u64,
    },
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 8 }
    }
}

/// State of one directed channel `p → q`.
#[derive(Debug)]
pub struct Channel {
    loss: LossModel,
    delay: DelayModel,
    rng: Xoshiro256,
    /// Consecutive-drop counters per retransmission identity
    /// (`BoundedBernoulli` only).
    consecutive: HashMap<u64, u32>,
    /// Gilbert–Elliott bad-state flag (`Burst` only).
    in_burst: bool,
    /// Counters for tests/metrics.
    sent: u64,
    dropped: u64,
}

/// The channel's verdict for one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver after the given delay (≥ 1 tick).
    Deliver {
        /// Ticks until arrival.
        delay: u64,
    },
    /// The transmission is lost.
    Drop,
}

impl Channel {
    /// New channel with its own RNG stream.
    pub fn new(loss: LossModel, delay: DelayModel, rng: Xoshiro256) -> Self {
        Channel {
            loss,
            delay,
            rng,
            consecutive: HashMap::new(),
            in_burst: false,
            sent: 0,
            dropped: 0,
        }
    }

    /// Decides the fate of one transmission of `msg`.
    pub fn transmit(&mut self, msg: &WireMessage) -> Verdict {
        self.sent += 1;
        if self.decide_loss(msg) {
            self.dropped += 1;
            return Verdict::Drop;
        }
        Verdict::Deliver {
            delay: self.draw_delay(),
        }
    }

    /// Decides the fates of every message in one batch transmission:
    /// `verdicts[i]` is `true` when `msgs[i]` survives this channel. Loss
    /// is decided **per message** against each message's own
    /// [`WireMessage::retransmit_key`], so the fairness bookkeeping (and
    /// the `BoundedBernoulli` hard cap) are identical to sending the
    /// messages one by one. Returns the single arrival delay shared by the
    /// surviving sub-batch (`None` when nothing survived) — the batch
    /// travels as one frame, so its members arrive together.
    pub fn transmit_batch(
        &mut self,
        msgs: &[WireMessage],
        verdicts: &mut Vec<bool>,
    ) -> Option<u64> {
        verdicts.clear();
        let mut any = false;
        for msg in msgs {
            self.sent += 1;
            let lost = self.decide_loss(msg);
            if lost {
                self.dropped += 1;
            } else {
                any = true;
            }
            verdicts.push(!lost);
        }
        if any {
            Some(self.draw_delay())
        } else {
            None
        }
    }

    /// [`Channel::transmit_batch`] over the **multiplexed topic plane**:
    /// the entries of one mux frame, each member's fairness identity
    /// being its own `retransmit_key` decorrelated per topic via
    /// [`TopicId::mix`] (topic 0 mixes to the legacy key, so single-topic
    /// runs draw the identical RNG stream). Loss stays per message; the
    /// surviving frame shares one arrival delay, exactly as for a
    /// single-instance batch.
    pub fn transmit_entries(
        &mut self,
        entries: &[(TopicId, WireMessage)],
        verdicts: &mut Vec<bool>,
    ) -> Option<u64> {
        verdicts.clear();
        let mut any = false;
        for (topic, msg) in entries {
            self.sent += 1;
            let lost = self.decide_loss_keyed(msg, || topic.mix(msg.retransmit_key()));
            if lost {
                self.dropped += 1;
            } else {
                any = true;
            }
            verdicts.push(!lost);
        }
        if any {
            Some(self.draw_delay())
        } else {
            None
        }
    }

    fn decide_loss(&mut self, msg: &WireMessage) -> bool {
        self.decide_loss_keyed(msg, || msg.retransmit_key())
    }

    /// One loss decision; `key` supplies the fairness identity lazily (it
    /// is only evaluated — and only matters — under `BoundedBernoulli`).
    fn decide_loss_keyed(&mut self, _msg: &WireMessage, key: impl FnOnce() -> u64) -> bool {
        match self.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => self.rng.gen_bool(p),
            LossModel::BoundedBernoulli { p, max_consecutive } => {
                let key = key();
                let run = self.consecutive.entry(key).or_insert(0);
                if *run >= max_consecutive {
                    *run = 0;
                    false // fairness: forced through
                } else if self.rng.gen_bool(p) {
                    *run += 1;
                    true
                } else {
                    *run = 0;
                    false
                }
            }
            LossModel::Burst {
                p_enter,
                p_exit,
                p_loss,
            } => {
                if self.in_burst {
                    if self.rng.gen_bool(p_exit) {
                        self.in_burst = false;
                    }
                } else if self.rng.gen_bool(p_enter) {
                    self.in_burst = true;
                }
                self.in_burst && self.rng.gen_bool(p_loss)
            }
            LossModel::Always => true,
        }
    }

    fn draw_delay(&mut self) -> u64 {
        match self.delay {
            DelayModel::Constant(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                lo + self.rng.gen_range(hi - lo + 1)
            }
            DelayModel::GeometricTail { base, p_more, cap } => {
                let mut d = base.max(1);
                while d < cap && self.rng.gen_bool(p_more) {
                    d += 1;
                }
                d
            }
        }
    }

    /// Transmissions attempted on this channel.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Transmissions dropped by this channel.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The full `n × n` mesh of directed channels (self-channel included: the
/// paper's `broadcast` primitive sends to all processes *including the
/// sender*, and that echo matters — it is how a sender ACKs its own
/// message).
#[derive(Debug)]
pub struct ChannelMatrix {
    n: usize,
    channels: Vec<Channel>,
}

impl ChannelMatrix {
    /// All channels share the same loss/delay models (each with an
    /// independent RNG stream split from `rng`).
    pub fn uniform(n: usize, loss: LossModel, delay: DelayModel, rng: &Xoshiro256) -> Self {
        let mut channels = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                let idx = (from * n + to) as u64;
                let link_rng = rng.split(0x1000 + idx);
                // Self-channels never lose: a process's loopback is its own
                // memory, and the paper's fairness argument treats the echo
                // as immediate. (Loss on the loopback would model a process
                // forgetting its own state, which is outside the model.)
                let model = if from == to { LossModel::None } else { loss };
                channels.push(Channel::new(model, delay, link_rng));
            }
        }
        ChannelMatrix { n, channels }
    }

    /// Overrides the loss model of specific directed links (used by the
    /// Theorem-2 partition adversary).
    pub fn override_links(&mut self, links: &[(usize, usize)], loss: LossModel) {
        for &(from, to) in links {
            let idx = from * self.n + to;
            self.channels[idx].loss = loss;
        }
    }

    /// Overrides the delay model of one directed link (used by the
    /// `targeted-delay` adversary of the scenario plane: straggler links
    /// whose copies arrive long after the rest of the mesh).
    pub fn override_delay(&mut self, from: usize, to: usize, delay: DelayModel) {
        self.channels[from * self.n + to].delay = delay;
    }

    /// The channel `from → to`.
    pub fn link_mut(&mut self, from: usize, to: usize) -> &mut Channel {
        &mut self.channels[from * self.n + to]
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total transmissions attempted across all links.
    pub fn total_sent(&self) -> u64 {
        self.channels.iter().map(|c| c.sent()).sum()
    }

    /// Total transmissions dropped across all links.
    pub fn total_dropped(&self) -> u64 {
        self.channels.iter().map(|c| c.dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_types::{Payload, Tag};

    fn msg(tag: u128) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from("m"),
        }
    }

    fn channel(loss: LossModel) -> Channel {
        Channel::new(loss, DelayModel::Constant(3), Xoshiro256::new(42))
    }

    #[test]
    fn reliable_channel_never_drops() {
        let mut c = channel(LossModel::None);
        for i in 0..1000 {
            assert_eq!(c.transmit(&msg(i)), Verdict::Deliver { delay: 3 });
        }
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.sent(), 1000);
    }

    #[test]
    fn severed_channel_drops_everything() {
        let mut c = channel(LossModel::Always);
        for i in 0..100 {
            assert_eq!(c.transmit(&msg(i)), Verdict::Drop);
        }
        assert_eq!(c.dropped(), 100);
    }

    #[test]
    fn bernoulli_loss_rate_roughly_p() {
        let mut c = channel(LossModel::Bernoulli { p: 0.3 });
        for i in 0..20_000 {
            let _ = c.transmit(&msg(i % 7));
        }
        let rate = c.dropped() as f64 / c.sent() as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn bounded_bernoulli_enforces_fairness_cap() {
        // Even at p = 0.99, the same message can be dropped at most
        // `max_consecutive` times in a row.
        let mut c = channel(LossModel::BoundedBernoulli {
            p: 0.99,
            max_consecutive: 4,
        });
        let m = msg(1);
        let mut consecutive = 0u32;
        let mut max_run = 0u32;
        for _ in 0..5_000 {
            match c.transmit(&m) {
                Verdict::Drop => {
                    consecutive += 1;
                    max_run = max_run.max(consecutive);
                }
                Verdict::Deliver { .. } => consecutive = 0,
            }
        }
        assert!(max_run <= 4, "fairness cap violated: run of {max_run}");
    }

    #[test]
    fn bounded_bernoulli_tracks_messages_independently() {
        let mut c = channel(LossModel::BoundedBernoulli {
            p: 1.0,
            max_consecutive: 2,
        });
        // Alternate two messages: each has its own drop-run counter, so each
        // gets forced through on its own 3rd transmission.
        let (a, b) = (msg(1), msg(2));
        let mut delivered_a = 0;
        let mut delivered_b = 0;
        for _ in 0..6 {
            if matches!(c.transmit(&a), Verdict::Deliver { .. }) {
                delivered_a += 1;
            }
            if matches!(c.transmit(&b), Verdict::Deliver { .. }) {
                delivered_b += 1;
            }
        }
        assert_eq!(delivered_a, 2, "every 3rd transmission forced through");
        assert_eq!(delivered_b, 2);
    }

    #[test]
    fn transmit_batch_decides_per_message_and_shares_delay() {
        let mut c = channel(LossModel::Bernoulli { p: 0.5 });
        let msgs: Vec<WireMessage> = (0..64).map(msg).collect();
        let mut verdicts = Vec::new();
        let delay = c.transmit_batch(&msgs, &mut verdicts);
        assert_eq!(verdicts.len(), 64);
        let survived = verdicts.iter().filter(|&&v| v).count();
        assert!(
            survived > 0 && survived < 64,
            "per-message loss: {survived}/64"
        );
        assert_eq!(delay, Some(3), "one shared delay for the sub-batch");
        assert_eq!(c.sent(), 64);
        assert_eq!(c.dropped(), 64 - survived as u64);
    }

    #[test]
    fn transmit_batch_respects_bounded_fairness_per_message() {
        // Under p=1.0 with cap 2, each message is forced through on its own
        // 3rd transmission even when always sent inside batches.
        let mut c = channel(LossModel::BoundedBernoulli {
            p: 1.0,
            max_consecutive: 2,
        });
        let msgs = vec![msg(1), msg(2)];
        let mut verdicts = Vec::new();
        let mut per_msg_deliveries = [0u32; 2];
        for _ in 0..6 {
            let delay = c.transmit_batch(&msgs, &mut verdicts);
            for (i, &ok) in verdicts.iter().enumerate() {
                if ok {
                    per_msg_deliveries[i] += 1;
                }
            }
            if verdicts.iter().any(|&v| v) {
                assert!(delay.is_some());
            } else {
                assert_eq!(delay, None);
            }
        }
        assert_eq!(per_msg_deliveries, [2, 2], "every 3rd transmission forced");
    }

    #[test]
    fn transmit_batch_total_loss_returns_no_delay() {
        let mut c = channel(LossModel::Always);
        let mut verdicts = Vec::new();
        assert_eq!(c.transmit_batch(&[msg(1), msg(2)], &mut verdicts), None);
        assert_eq!(verdicts, vec![false, false]);
        assert_eq!(c.dropped(), 2);
    }

    #[test]
    fn burst_model_produces_clustered_losses() {
        let mut c = channel(LossModel::Burst {
            p_enter: 0.02,
            p_exit: 0.2,
            p_loss: 0.9,
        });
        let mut drops = 0;
        for i in 0..50_000 {
            if c.transmit(&msg(i)) == Verdict::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / 50_000.0;
        let nominal = c.loss.nominal_loss();
        assert!(
            (rate - nominal).abs() < 0.05,
            "burst rate {rate} vs nominal {nominal}"
        );
    }

    #[test]
    fn delay_models_respect_bounds() {
        let mut c = Channel::new(
            LossModel::None,
            DelayModel::Uniform { min: 2, max: 9 },
            Xoshiro256::new(7),
        );
        for i in 0..2_000 {
            match c.transmit(&msg(i)) {
                Verdict::Deliver { delay } => assert!((2..=9).contains(&delay)),
                _ => unreachable!(),
            }
        }
        let mut g = Channel::new(
            LossModel::None,
            DelayModel::GeometricTail {
                base: 1,
                p_more: 0.5,
                cap: 20,
            },
            Xoshiro256::new(8),
        );
        for i in 0..2_000 {
            match g.transmit(&msg(i)) {
                Verdict::Deliver { delay } => assert!((1..=20).contains(&delay)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn zero_delay_is_clamped_to_one() {
        // A zero-latency delivery would mean "receive before send completes";
        // the queue needs strictly positive delays for causality.
        let mut c = Channel::new(LossModel::None, DelayModel::Constant(0), Xoshiro256::new(9));
        assert_eq!(c.transmit(&msg(0)), Verdict::Deliver { delay: 1 });
    }

    #[test]
    fn matrix_self_channels_are_reliable() {
        let rng = Xoshiro256::new(1);
        let mut m = ChannelMatrix::uniform(4, LossModel::Always, DelayModel::default(), &rng);
        for i in 0..4 {
            assert!(matches!(
                m.link_mut(i, i).transmit(&msg(1)),
                Verdict::Deliver { .. }
            ));
        }
        // Cross links severed as configured.
        assert_eq!(m.link_mut(0, 1).transmit(&msg(1)), Verdict::Drop);
    }

    #[test]
    fn matrix_override_links() {
        let rng = Xoshiro256::new(2);
        let mut m = ChannelMatrix::uniform(3, LossModel::None, DelayModel::default(), &rng);
        m.override_links(&[(0, 1), (0, 2)], LossModel::Always);
        assert_eq!(m.link_mut(0, 1).transmit(&msg(1)), Verdict::Drop);
        assert_eq!(m.link_mut(0, 2).transmit(&msg(1)), Verdict::Drop);
        assert!(matches!(
            m.link_mut(1, 0).transmit(&msg(1)),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn matrix_override_delay_is_per_link() {
        let rng = Xoshiro256::new(4);
        let mut m = ChannelMatrix::uniform(3, LossModel::None, DelayModel::Constant(2), &rng);
        m.override_delay(0, 1, DelayModel::Constant(40));
        assert_eq!(
            m.link_mut(0, 1).transmit(&msg(1)),
            Verdict::Deliver { delay: 40 }
        );
        assert_eq!(
            m.link_mut(1, 0).transmit(&msg(1)),
            Verdict::Deliver { delay: 2 },
            "reverse direction keeps the mesh delay"
        );
    }

    #[test]
    fn matrix_counters_aggregate() {
        let rng = Xoshiro256::new(3);
        let mut m = ChannelMatrix::uniform(2, LossModel::Always, DelayModel::default(), &rng);
        let _ = m.link_mut(0, 1).transmit(&msg(1));
        let _ = m.link_mut(1, 0).transmit(&msg(1));
        let _ = m.link_mut(0, 0).transmit(&msg(1));
        assert_eq!(m.total_sent(), 3);
        assert_eq!(m.total_dropped(), 2);
    }

    #[test]
    fn nominal_loss_labels() {
        assert_eq!(LossModel::None.nominal_loss(), 0.0);
        assert_eq!(LossModel::Always.nominal_loss(), 1.0);
        assert_eq!(LossModel::Bernoulli { p: 0.25 }.nominal_loss(), 0.25);
    }
}
