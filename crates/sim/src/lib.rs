//! # `urb-sim`
//!
//! Discrete-event simulator for the paper's system model
//! `AAS_F[n, t]` — anonymous, asynchronous, message-passing, fair-lossy
//! channels, crash-stop failures — plus the measurement and checking
//! machinery the experiment suite runs on:
//!
//! * [`event`] — deterministic time-ordered event queue;
//! * [`channel`] — fair-lossy channel models (Bernoulli, bounded-drop with
//!   deterministic fairness, Gilbert–Elliott bursts, severed links) and
//!   delay models;
//! * [`crash`] — crash adversaries, including crash-on-first-delivery (the
//!   Theorem-2 / E11 shape);
//! * [`sim`] — the driver: wire a protocol ([`urb_core::Algorithm`]), a
//!   failure detector ([`urb_fd::FdService`]) and a workload together and
//!   execute one run, deterministically per seed;
//! * [`metrics`] — traffic counters, latency records, quiescence curves,
//!   state-size samples;
//! * [`checker`] — machine verdicts for the three URB properties on every
//!   run;
//! * [`scenario`] — pre-built configurations for each experiment, including
//!   the executable reconstruction of the impossibility proof;
//! * [`spec`] — the **declarative scenario plane**: TOML/JSON scenario
//!   files ([`spec::ScenarioSpec`]) compiled onto the event-queue
//!   machinery, with scenario-level [`spec::Expectations`] and the
//!   embedded `scenarios/` corpus;
//! * [`adversary`] — the named adversarial schedule library
//!   (partition-heal, ack-starvation, targeted-delay, crash-storm, churn)
//!   specs draw from;
//! * [`minitoml`] — the first-party TOML-subset parser the spec loader
//!   uses (no registry access, no `toml` crate — see `vendor/README.md`);
//! * [`parallel`] — the multi-run executor: fan independent configurations
//!   across all cores with results in input order (runs are pure functions
//!   of their config, so parallel == serial, bit for bit).
//!
//! ## Example
//!
//! ```
//! use urb_sim::{scenario, sim::run};
//! use urb_core::Algorithm;
//!
//! // 5 anonymous processes, 30% loss, 4 of 5 crash — Algorithm 2 still
//! // implements URB (Theorem 3): all three properties machine-checked.
//! let out = run(scenario::lossy_crashy(5, Algorithm::Quiescent, 0.3, 4, 2, 7));
//! assert!(out.all_ok());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod channel;
pub mod checker;
pub mod crash;
pub mod event;
pub mod metrics;
pub mod minitoml;
pub mod openloop;
pub mod parallel;
pub mod scenario;
pub mod sim;
pub mod soak;
pub mod spec;
pub mod trace;

pub use adversary::Schedule;
pub use channel::{DelayModel, LossModel};
pub use checker::{check_urb, CheckReport, PropertyVerdict};
pub use crash::{CrashPlan, CrashRule};
pub use event::SchedulerPolicy;
pub use metrics::{BroadcastRecord, DeliveryRecord, Metrics};
pub use openloop::{open_loop, OpenLoopConfig, OpenLoopOutcome};
pub use parallel::{run_many, run_many_on};
pub use sim::{
    run, Blackout, DelayOverride, FdKind, LinkOverride, PlannedBroadcast, RunOutcome, SimConfig,
    TopicAction, TopicEventCfg,
};
pub use soak::{soak, SoakConfig, SoakOutcome, SoakSample};
pub use spec::{CheckBounds, Expectations, ScenarioSpec, SpecError};
pub use trace::{Trace, TraceConfig, TraceEvent, TraceKind};
