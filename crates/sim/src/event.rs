//! The discrete-event core: a deterministic time-ordered event queue.
//!
//! Asynchrony in the paper's model means "no bound on relative speeds or
//! message delays". The simulator realizes a *specific* asynchronous run by
//! drawing per-message delays and per-process tick phases from the seeded
//! RNG; the event queue then executes that run deterministically. Ties are
//! broken by insertion sequence number, so two runs with the same seed
//! produce byte-identical traces (verified by the determinism tests).

use urb_types::{Payload, RandomSource, SplitMix64, TopicId, WireMessage};

/// How the driver resolves *ties* — several events scheduled for the same
/// instant — when popping the queue. This is the simulator's scheduler
/// injection point (DESIGN.md §11): the classic behaviour is FIFO among
/// equal timestamps, which makes a run a pure function of its seed; the
/// exploration plane perturbs exactly this order to visit schedules the
/// seed would never produce, without touching delays or loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Insertion order among equal timestamps (the default; byte-identical
    /// to the pre-injection simulator).
    #[default]
    Fifo,
    /// A deterministic shuffle among equal timestamps, drawn from its own
    /// seeded stream — same config + same scheduler seed ⇒ same run, but
    /// tie order now varies independently of the delay/loss randomness.
    SeededTies {
        /// Seed of the tie-breaking stream.
        seed: u64,
    },
}

impl SchedulerPolicy {
    /// The tie-breaking RNG this policy needs (`None` for FIFO).
    pub fn rng(self) -> Option<SplitMix64> {
        match self {
            SchedulerPolicy::Fifo => None,
            SchedulerPolicy::SeededTies { seed } => {
                Some(SplitMix64::new(seed ^ 0x71EB_4EAC_0DE4_0001))
            }
        }
    }
}

/// What can happen in a simulated run.
#[derive(Clone, Debug)]
pub enum Event {
    /// A multiplexed batch of wire messages arrives at process `to` (the
    /// topic plane, DESIGN.md §12: everything one step emitted toward
    /// this destination — across every topic the node stepped — that
    /// survived the channel, arriving together as one frame). `from` is
    /// simulator-side provenance (metrics/fairness only — never exposed
    /// to protocol code).
    Deliver {
        /// Destination process index.
        to: usize,
        /// Origin process index (bookkeeping only; anonymity is preserved
        /// because the protocol never sees this field).
        from: usize,
        /// The surviving topic-tagged messages, in emission order
        /// (ascending topic groups — the wire shape of a
        /// [`urb_types::MuxBatch`]). Single-topic runs carry
        /// `(TopicId::ZERO, …)` entries exclusively.
        entries: Vec<(TopicId, WireMessage)>,
    },
    /// Process `pid` runs one Task-1 sweep (and its failure detector ticks).
    Tick {
        /// The ticking process.
        pid: usize,
    },
    /// Process `pid` crashes (crash-stop; it executes nothing afterwards).
    Crash {
        /// The crashing process.
        pid: usize,
    },
    /// The application at `pid` invokes `URB_broadcast(payload)` on one
    /// topic instance.
    ClientBroadcast {
        /// The broadcasting process.
        pid: usize,
        /// The target URB instance.
        topic: TopicId,
        /// The application message.
        payload: Payload,
    },
    /// Periodic state-size sampling (experiment E9).
    SampleStats,
    /// A planned topic-lifecycle event fires (DESIGN.md §15): the driver
    /// applies entry `index` of the run's `[[topics.events]]` plan —
    /// create or retire — at **every** live process at this instant.
    /// Lifecycle is deterministic global configuration in the simulator
    /// (like crash plans); the wire-level `TopicControl` gossip is
    /// exercised by the engine tests and the runtime/daemon plane.
    TopicEvent {
        /// Index into the configured lifecycle plan.
        index: usize,
    },
}

/// A scheduled event.
#[derive(Clone, Debug)]
struct Scheduled {
    time: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for the max-heap: smaller (time, seq) = higher priority.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic time-ordered event queue (min-heap on `(time, seq)`).
#[derive(Default, Debug)]
pub struct EventQueue {
    heap: std::collections::BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Pops the earliest event under a scheduler policy: FIFO behaves
    /// exactly like [`EventQueue::pop`]; with a tie-breaking RNG, one of
    /// the events scheduled for the earliest instant is chosen uniformly
    /// and the rest are re-queued with their original sequence numbers
    /// (so later ties keep their relative insertion order).
    pub fn pop_with(&mut self, tie_rng: &mut Option<SplitMix64>) -> Option<(u64, Event)> {
        let Some(rng) = tie_rng else {
            return self.pop();
        };
        let first = self.heap.pop()?;
        if self.heap.peek().map(|s| s.time) != Some(first.time) {
            return Some((first.time, first.event));
        }
        let mut ties = vec![first];
        while self.heap.peek().map(|s| s.time) == Some(ties[0].time) {
            ties.push(self.heap.pop().expect("peeked"));
        }
        let pick = rng.gen_range(ties.len() as u64) as usize;
        let chosen = ties.swap_remove(pick);
        for other in ties {
            self.heap.push(other);
        }
        Some((chosen.time, chosen.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when some pending event satisfies `pred`.
    pub fn any(&self, mut pred: impl FnMut(&Event) -> bool) -> bool {
        self.heap.iter().any(|s| pred(&s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::Tick { pid: 3 });
        q.push(10, Event::Tick { pid: 1 });
        q.push(20, Event::Tick { pid: 2 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for pid in 0..5 {
            q.push(7, Event::Tick { pid });
        }
        let pids: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Tick { pid } => pid,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(pids, vec![0, 1, 2, 3, 4], "FIFO among equal timestamps");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5, Event::SampleStats);
        q.push(2, Event::SampleStats);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    fn fifo_policy_matches_plain_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for pid in 0..6 {
            a.push(7, Event::Tick { pid });
            b.push(7, Event::Tick { pid });
        }
        let mut none = SchedulerPolicy::Fifo.rng();
        assert!(none.is_none());
        loop {
            match (a.pop(), b.pop_with(&mut none)) {
                (None, None) => break,
                (x, y) => assert_eq!(format!("{x:?}"), format!("{y:?}")),
            }
        }
    }

    #[test]
    fn seeded_ties_permute_deterministically_and_lose_nothing() {
        let run = |seed: u64| -> Vec<usize> {
            let mut q = EventQueue::new();
            for pid in 0..8 {
                q.push(3, Event::Tick { pid });
            }
            q.push(9, Event::SampleStats);
            let mut rng = SchedulerPolicy::SeededTies { seed }.rng();
            std::iter::from_fn(|| q.pop_with(&mut rng))
                .map(|(_, e)| match e {
                    Event::Tick { pid } => pid,
                    Event::SampleStats => usize::MAX,
                    _ => unreachable!(),
                })
                .collect()
        };
        let a = run(1);
        assert_eq!(a, run(1), "deterministic per scheduler seed");
        assert_ne!(a, run(2), "different seed, different tie order");
        // Every event still pops exactly once, times stay ordered.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).chain([usize::MAX]).collect::<Vec<_>>());
        assert_eq!(*a.last().unwrap(), usize::MAX, "later instant pops last");
    }

    #[test]
    fn any_scans_pending_events() {
        let mut q = EventQueue::new();
        q.push(1, Event::Tick { pid: 0 });
        q.push(2, Event::Crash { pid: 4 });
        assert!(q.any(|e| matches!(e, Event::Crash { pid: 4 })));
        assert!(!q.any(|e| matches!(e, Event::Deliver { .. })));
    }
}
