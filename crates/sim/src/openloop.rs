//! The **open-loop workload plane** (DESIGN.md §16): arrival-rate-driven
//! latency-under-load runs, executed by stepping [`TopicEngine`]s directly
//! in lockstep — the same harness shape as the soak plane
//! ([`mod@crate::soak`]), but driven by an *offered load* instead of a message
//! count.
//!
//! The BENCH grids are closed-loop: each run injects its workload as fast
//! as the system absorbs it, so they measure protocol cost but can never
//! see a saturation knee. An open-loop run schedules arrival `k` at
//! simulated tick `k·1000 / rate` regardless of how the system is doing,
//! queues it at its origin node's bounded-service ingress (each node
//! serves at most [`OpenLoopConfig::service_per_tick`] arrivals per tick)
//! and measures **delivery latency in ticks** — origin-delivery tick minus
//! arrival tick, so queueing delay under overload is part of the number.
//! Below the service capacity (`n × service_per_tick × 1000` per ktick)
//! latencies sit at the protocol floor; past it the queues — and the
//! p99/p999 tail — grow without bound. That crossover is the knee
//! experiments E22/E23 chart.
//!
//! Everything is a pure function of the [`OpenLoopConfig`]: arrivals,
//! service, flooding and delivery all advance on simulated ticks (never
//! wall clock), so latency percentiles are exactly reproducible and
//! byte-compatible across machines — which is what lets the trajectory
//! schema pin them as count metrics.

use std::collections::{HashMap, VecDeque};
use urb_core::Algorithm;
use urb_engine::{MuxBuffers, StepInput, TopicEngine};
use urb_types::snapshot::fnv1a;
use urb_types::{
    FdPair, FdSnapshot, FdView, Label, Payload, SplitMix64, Tag, TopicId, WireMessage,
};

/// Configuration of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// System size `n` (every process is correct — the plane measures
    /// load, not fault tolerance).
    pub n: usize,
    /// Live topics per node; arrivals round-robin across them. Dispatch
    /// is O(1) (DESIGN.md §16), so outcomes are **identical** from 1 to
    /// 100k topics — experiment E22 pins exactly that.
    pub topics: u32,
    /// Protocol under test.
    pub algorithm: Algorithm,
    /// Root seed.
    pub seed: u64,
    /// Simulated horizon in ticks: arrivals are scheduled strictly below
    /// this tick; the run then drains to completion.
    pub ticks: u64,
    /// Offered load: arrivals per 1000 ticks, cluster-wide. Arrival `k`
    /// lands at tick `k·1000 / rate_per_ktick`.
    pub rate_per_ktick: u64,
    /// Ingress service budget: broadcasts one node invokes per tick.
    /// Cluster capacity is `n × service_per_tick` per tick.
    pub service_per_tick: u32,
    /// Task-1 sweep cadence in ticks (every instance of every node).
    pub sweep_every: u64,
}

impl OpenLoopConfig {
    /// A quiescent-algorithm run on 3 processes, one topic, moderate
    /// load: 256-tick horizon, 500 arrivals/ktick against a capacity of
    /// 3000/ktick.
    pub fn new(rate_per_ktick: u64) -> Self {
        OpenLoopConfig {
            n: 3,
            topics: 1,
            algorithm: Algorithm::Quiescent,
            seed: 1,
            ticks: 256,
            rate_per_ktick,
            service_per_tick: 1,
            sweep_every: 64,
        }
    }

    /// Sets the topic count (builder style).
    pub fn topics(mut self, topics: u32) -> Self {
        self.topics = topics.max(1);
        self
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything one open-loop run observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpenLoopOutcome {
    /// Arrivals the generator scheduled (the offered work).
    pub offered: u64,
    /// Broadcasts actually invoked (equals `offered` — the drain phase
    /// serves every queued arrival).
    pub injected: u64,
    /// Broadcasts URB-delivered back at their origin (completions).
    pub completed: u64,
    /// Completions that happened within the horizon — the *achieved*
    /// throughput under load, which flattens at capacity while `offered`
    /// keeps climbing.
    pub completed_in_horizon: u64,
    /// Total URB deliveries across every process.
    pub deliveries: u64,
    /// Protocol transmissions: per-link copies the instant network
    /// flooded (each emission reaches all `n` processes).
    pub transmissions: u64,
    /// Median arrival→origin-delivery latency, in ticks.
    pub latency_p50: u64,
    /// 90th-percentile latency, in ticks.
    pub latency_p90: u64,
    /// 99th-percentile latency, in ticks.
    pub latency_p99: u64,
    /// 99.9th-percentile latency, in ticks — the tail the knee shows up
    /// in first.
    pub latency_p999: u64,
    /// Worst single latency, in ticks.
    pub latency_max: u64,
    /// Deepest any node's ingress queue got.
    pub peak_queue_depth: usize,
    /// Ticks the drain phase needed past the horizon.
    pub drain_ticks: u64,
    /// Per-process order-sensitive rolling delivery hashes (same scheme
    /// as the soak plane): two runs delivered identically iff equal.
    pub delivery_hashes: Vec<u64>,
}

impl OpenLoopOutcome {
    /// True when `other` delivered exactly the same tags in the same
    /// order at every process.
    pub fn same_deliveries(&self, other: &OpenLoopOutcome) -> bool {
        self.deliveries == other.deliveries && self.delivery_hashes == other.delivery_hashes
    }
}

/// Nearest-rank per-mille percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], per_mille: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() as u64 - 1) * per_mille / 1000;
    sorted[idx as usize]
}

struct OpenLoop {
    cfg: OpenLoopConfig,
    engines: Vec<TopicEngine>,
    fd: FdSnapshot,
    mux: MuxBuffers,
    /// The instant lossless network: topic-tagged emissions awaiting
    /// flood delivery to every process.
    net: VecDeque<(TopicId, WireMessage)>,
    /// Per-node ingress queues of pending arrivals (arrival index).
    queues: Vec<VecDeque<u64>>,
    /// In-flight broadcasts: tag → (arrival tick, origin pid).
    pending: HashMap<Tag, (u64, usize)>,
    latencies: Vec<u64>,
    deliveries: u64,
    transmissions: u64,
    completed: u64,
    completed_in_horizon: u64,
    hashes: Vec<u64>,
    peak_queue: usize,
    now: u64,
}

impl OpenLoop {
    fn new(cfg: OpenLoopConfig) -> Self {
        assert!(cfg.n >= 1);
        assert!(cfg.topics >= 1);
        assert!(cfg.ticks >= 1);
        assert!(cfg.rate_per_ktick >= 1, "open loop needs an arrival rate");
        assert!(cfg.service_per_tick >= 1);
        assert!(cfg.sweep_every >= 1);
        // One static full view, as in the soak plane: every process is
        // correct, so one label covering all n satisfies both detectors.
        let view = FdView::from_pairs([FdPair {
            label: Label(0x09E7),
            number: cfg.n as u32,
        }]);
        let fd = if cfg.algorithm.needs_fd() {
            FdSnapshot::new(view.clone(), view)
        } else {
            FdSnapshot::none()
        };
        let seed_mix = SplitMix64::new(cfg.seed ^ 0x09E7_100D_09E7_100D);
        let engines: Vec<TopicEngine> = (0..cfg.n)
            .map(|i| {
                TopicEngine::new(
                    (0..cfg.topics)
                        .map(|_| cfg.algorithm.instantiate(cfg.n))
                        .collect(),
                    seed_mix.split(i as u64),
                )
            })
            .collect();
        let n = cfg.n;
        OpenLoop {
            cfg,
            engines,
            fd,
            mux: MuxBuffers::new(),
            net: VecDeque::new(),
            queues: vec![VecDeque::new(); n],
            pending: HashMap::new(),
            latencies: Vec::new(),
            deliveries: 0,
            transmissions: 0,
            completed: 0,
            completed_in_horizon: 0,
            hashes: vec![0xCBF2_9CE4_8422_2325; n],
            peak_queue: 0,
            now: 0,
        }
    }

    /// Drains `mux` after steps at `pid`: emissions to the network,
    /// deliveries to the hashes — and, at the origin, to the latency log.
    fn record(&mut self, pid: usize) {
        self.net.extend(self.mux.outbox.drain(..));
        for (_, d) in self.mux.deliveries.drain(..) {
            self.deliveries += 1;
            self.hashes[pid] ^= fnv1a(&d.tag.0.to_le_bytes());
            self.hashes[pid] = self.hashes[pid].wrapping_mul(0x1000_0000_01B3);
            if let Some(&(arrived, origin)) = self.pending.get(&d.tag) {
                if origin == pid {
                    self.pending.remove(&d.tag);
                    self.latencies.push(self.now - arrived);
                    self.completed += 1;
                    if self.now < self.cfg.ticks {
                        self.completed_in_horizon += 1;
                    }
                }
            }
        }
    }

    /// Floods every queued emission to every process, instantly and
    /// losslessly, until the network is silent.
    fn flood(&mut self) {
        while let Some((topic, msg)) = self.net.pop_front() {
            self.transmissions += self.cfg.n as u64;
            for pid in 0..self.cfg.n {
                self.engines[pid].step_mux(
                    topic,
                    StepInput::Receive(msg.clone()),
                    &self.fd,
                    &mut self.mux,
                );
                self.record(pid);
            }
        }
    }

    /// Each node serves up to its per-tick budget from its ingress queue.
    fn serve(&mut self, injected: &mut u64) {
        for pid in 0..self.cfg.n {
            for _ in 0..self.cfg.service_per_tick {
                let Some(arrival) = self.queues[pid].pop_front() else {
                    break;
                };
                let topic = TopicId((arrival % self.cfg.topics as u64) as u32);
                let arrived = arrival * 1000 / self.cfg.rate_per_ktick;
                let tag = self.engines[pid]
                    .step_mux(
                        topic,
                        StepInput::Broadcast(Payload::from("load")),
                        &self.fd,
                        &mut self.mux,
                    )
                    .expect("urb_broadcast assigns a tag");
                self.pending.insert(tag, (arrived, pid));
                *injected += 1;
                self.record(pid);
            }
        }
        self.flood();
    }

    /// One Task-1 sweep of every instance of every process.
    fn sweep(&mut self) {
        for pid in 0..self.cfg.n {
            self.engines[pid].tick_all(&self.fd, &mut self.mux);
            self.record(pid);
        }
        self.flood();
    }

    fn run(mut self) -> OpenLoopOutcome {
        let mut offered = 0u64;
        let mut injected = 0u64;
        let mut next_arrival = 0u64; // arrival index
        for t in 0..self.cfg.ticks {
            self.now = t;
            // Arrivals scheduled for this tick enter their origin queue —
            // unconditionally: the generator never waits for the system.
            while next_arrival * 1000 / self.cfg.rate_per_ktick == t {
                let pid = (next_arrival % self.cfg.n as u64) as usize;
                self.queues[pid].push_back(next_arrival);
                self.peak_queue = self.peak_queue.max(self.queues[pid].len());
                offered += 1;
                next_arrival += 1;
            }
            self.serve(&mut injected);
            if (t + 1) % self.cfg.sweep_every == 0 {
                self.sweep();
            }
        }
        // Drain: keep serving (no new arrivals) until every queued
        // arrival was injected and every broadcast completed. Bounded:
        // the backlog is finite and service makes progress every tick.
        let mut drain_ticks = 0u64;
        while self.queues.iter().any(|q| !q.is_empty()) || !self.pending.is_empty() {
            self.now = self.cfg.ticks + drain_ticks;
            self.serve(&mut injected);
            if (self.now + 1).is_multiple_of(self.cfg.sweep_every) {
                self.sweep();
            }
            drain_ticks += 1;
            assert!(
                drain_ticks <= offered + self.cfg.sweep_every + 2,
                "open-loop drain did not converge (backlog stuck)"
            );
        }
        self.latencies.sort_unstable();
        OpenLoopOutcome {
            offered,
            injected,
            completed: self.completed,
            completed_in_horizon: self.completed_in_horizon,
            deliveries: self.deliveries,
            transmissions: self.transmissions,
            latency_p50: percentile(&self.latencies, 500),
            latency_p90: percentile(&self.latencies, 900),
            latency_p99: percentile(&self.latencies, 990),
            latency_p999: percentile(&self.latencies, 999),
            latency_max: self.latencies.last().copied().unwrap_or(0),
            peak_queue_depth: self.peak_queue,
            drain_ticks,
            delivery_hashes: self.hashes,
        }
    }
}

/// Executes one open-loop run. Pure function of the config: every number
/// in the outcome derives from simulated ticks and counts, never wall
/// clock.
pub fn open_loop(cfg: OpenLoopConfig) -> OpenLoopOutcome {
    OpenLoop::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_is_deterministic_per_seed() {
        let a = open_loop(OpenLoopConfig::new(500).seed(7));
        let b = open_loop(OpenLoopConfig::new(500).seed(7));
        assert_eq!(a, b);
        let c = open_loop(OpenLoopConfig::new(500).seed(8));
        assert_ne!(a.delivery_hashes, c.delivery_hashes, "seed moves the tags");
    }

    #[test]
    fn below_capacity_latency_sits_at_the_floor() {
        // Capacity is 3 nodes × 1/tick = 3000/ktick; offer a sixth of it.
        let out = open_loop(OpenLoopConfig::new(500).seed(11));
        assert_eq!(out.offered, out.completed, "everything drains");
        assert_eq!(out.injected, out.offered);
        assert_eq!(
            out.latency_p999, 0,
            "below the knee, arrivals are served the tick they land"
        );
        assert!(out.peak_queue_depth <= 1);
        assert_eq!(out.drain_ticks, 0, "no backlog at the horizon");
    }

    #[test]
    fn past_capacity_the_tail_explodes_and_queues_grow() {
        let below = open_loop(OpenLoopConfig::new(2_000).seed(13));
        let above = open_loop(OpenLoopConfig::new(9_000).seed(13));
        // Offered load tripled past capacity; achieved throughput did not.
        assert!(above.offered > 2 * below.offered);
        assert!(
            above.completed_in_horizon < below.completed_in_horizon * 2,
            "achieved throughput saturates at capacity ({} vs {})",
            above.completed_in_horizon,
            below.completed_in_horizon
        );
        // The knee: the latency tail and the queues grow without bound.
        assert_eq!(below.latency_p99, 0, "below capacity: protocol floor");
        assert!(
            above.latency_p999 > 50,
            "past capacity, queueing dominates (p999 = {})",
            above.latency_p999
        );
        assert!(above.latency_p50 <= above.latency_p99);
        assert!(above.latency_p99 <= above.latency_p999);
        assert!(above.peak_queue_depth > 10 * below.peak_queue_depth.max(1));
        assert!(above.drain_ticks > 0, "the backlog outlived the horizon");
        assert_eq!(above.offered, above.completed, "the drain still finishes");
    }

    #[test]
    fn outcome_is_identical_from_one_topic_to_a_thousand() {
        // The O(1)-dispatch pin (experiment E22's tier-1 shape): topic
        // count changes *where* broadcasts land, but arrivals, service,
        // RNG draws and therefore latencies and delivery hashes are
        // byte-identical — per-message cost is flat in topic count.
        let one = open_loop(OpenLoopConfig::new(4_000).seed(17).topics(1));
        let thousand = open_loop(OpenLoopConfig::new(4_000).seed(17).topics(1_000));
        assert_eq!(one, thousand);
    }

    /// The 100k-topic tier of the E22 pin. `--ignored` only (builds
    /// 100k instances per node).
    #[test]
    #[ignore = "scale tier: run with --ignored (CI bench-smoke exercises e22 instead)"]
    fn outcome_is_identical_at_100k_topics() {
        let one = open_loop(OpenLoopConfig::new(4_000).seed(19).topics(1));
        let hundred_k = open_loop(OpenLoopConfig::new(4_000).seed(19).topics(100_000));
        assert_eq!(one, hundred_k);
    }
}
