//! Property tests for the simulator substrate itself: the checker, the
//! channel models and the crash plans. (Whole-run properties live in the
//! workspace-level `tests/` directory.)

use proptest::prelude::*;
use urb_sim::channel::{Channel, DelayModel, Verdict};
use urb_sim::metrics::{BroadcastRecord, DeliveryRecord};
use urb_sim::{check_urb, CrashPlan, LossModel};
use urb_types::{Payload, Tag, WireMessage, Xoshiro256};

fn body() -> Payload {
    Payload::from("m")
}

fn arb_history(
    n: usize,
) -> impl Strategy<Value = (Vec<bool>, Vec<BroadcastRecord>, Vec<DeliveryRecord>)> {
    let correct = proptest::collection::vec(any::<bool>(), n);
    let broadcasts = proptest::collection::vec((0..n, 0u8..6, 0u64..100), 0..6).prop_map(|v| {
        v.into_iter()
            .map(|(pid, tag, time)| BroadcastRecord {
                pid,
                topic: urb_types::TopicId::ZERO,
                tag: Tag(tag as u128),
                time,
                payload: body(),
            })
            .collect::<Vec<_>>()
    });
    let deliveries = proptest::collection::vec((0..n, 0u8..6, 0u64..200), 0..20).prop_map(|v| {
        v.into_iter()
            .map(|(pid, tag, time)| DeliveryRecord {
                pid,
                topic: urb_types::TopicId::ZERO,
                tag: Tag(tag as u128),
                time,
                fast: false,
                payload: body(),
            })
            .collect::<Vec<_>>()
    });
    (correct, broadcasts, deliveries)
}

proptest! {
    /// The checker agrees with an independent reference implementation of
    /// the three URB predicates on arbitrary histories.
    #[test]
    fn checker_matches_reference((correct, broadcasts, deliveries) in arb_history(4)) {
        let n = correct.len();
        let report = check_urb(n, &correct, &broadcasts, &deliveries);

        // Reference predicates, written independently (set-based).
        use std::collections::{BTreeMap, BTreeSet};
        let mut per: Vec<BTreeMap<Tag, usize>> = vec![BTreeMap::new(); n];
        for d in &deliveries {
            *per[d.pid].entry(d.tag).or_insert(0) += 1;
        }
        let broadcast_tags: BTreeSet<Tag> = broadcasts.iter().map(|b| b.tag).collect();

        let ref_validity = broadcasts
            .iter()
            .all(|b| !correct[b.pid] || per[b.pid].contains_key(&b.tag));
        let delivered_any: BTreeSet<Tag> = deliveries.iter().map(|d| d.tag).collect();
        let ref_agreement = delivered_any.iter().all(|t| {
            (0..n).all(|p| !correct[p] || per[p].contains_key(t))
        });
        let ref_integrity = (0..n).all(|p| {
            per[p]
                .iter()
                .all(|(t, &c)| c == 1 && broadcast_tags.contains(t))
        });

        prop_assert_eq!(report.validity.ok(), ref_validity);
        prop_assert_eq!(report.agreement.ok(), ref_agreement);
        prop_assert_eq!(report.integrity.ok(), ref_integrity);
        prop_assert_eq!(report.all_ok(), ref_validity && ref_agreement && ref_integrity);
    }

    /// Bounded-consecutive-loss channels deterministically satisfy the
    /// fairness axiom: any message transmitted `max_consecutive + 1` times
    /// in a row is delivered at least once, at every loss probability.
    #[test]
    fn bounded_channel_fairness(p in 0.0f64..1.0, cap in 1u32..8, seed in any::<u64>()) {
        let mut c = Channel::new(
            LossModel::BoundedBernoulli { p, max_consecutive: cap },
            DelayModel::Constant(1),
            Xoshiro256::new(seed),
        );
        let m = WireMessage::Msg { tag: Tag(42), payload: Payload::from("m") };
        for _round in 0..20 {
            let delivered = (0..=cap).any(|_| {
                matches!(c.transmit(&m), Verdict::Deliver { .. })
            });
            prop_assert!(delivered, "a window of cap+1 sends must deliver");
        }
    }

    /// Delay models always produce strictly positive delays within their
    /// declared bounds.
    #[test]
    fn delays_positive_and_bounded(
        min in 0u64..5,
        span in 0u64..10,
        seed in any::<u64>(),
    ) {
        let mut c = Channel::new(
            LossModel::None,
            DelayModel::Uniform { min, max: min + span },
            Xoshiro256::new(seed),
        );
        let m = WireMessage::Msg { tag: Tag(1), payload: Payload::from("x") };
        for _ in 0..200 {
            match c.transmit(&m) {
                Verdict::Deliver { delay } => {
                    prop_assert!(delay >= 1);
                    prop_assert!(delay <= (min + span).max(1));
                }
                Verdict::Drop => prop_assert!(false, "reliable channel dropped"),
            }
        }
    }

    /// Random crash plans always leave at least one correct process, crash
    /// exactly `t`, and are seed-deterministic.
    #[test]
    fn crash_plans_well_formed(n in 2usize..10, seed in any::<u64>()) {
        let t = n - 1;
        let a = CrashPlan::random(n, t, 1_000, seed, None);
        let b = CrashPlan::random(n, t, 1_000, seed, None);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.faulty_count(), t);
        prop_assert_eq!(a.correct_set().len(), 1);
    }

    /// Protecting a pid really protects it, for every (n, t, seed).
    #[test]
    fn crash_plan_protection(n in 2usize..8, seed in any::<u64>()) {
        let protect = (seed as usize) % n;
        let t = n - 1;
        let plan = CrashPlan::random(n, t, 500, seed, Some(protect));
        prop_assert!(plan.correct_set().contains(&protect));
        prop_assert_eq!(plan.faulty_count(), t);
    }
}

// ---------------------------------------------------------------------------
// Topic-lifecycle interleavings (DESIGN.md §15). Model-based: an arbitrary
// sequence of create / retire / subscribe / unsubscribe / broadcast / tick
// operations is applied to a `TopicEngine` next to a trivial reference
// model of the lifecycle state machine, and the two must agree after every
// step — in particular, no instance ever serves traffic after retirement
// and a re-created `TopicId` always starts clean.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum LifecycleOp {
    Create(u32),
    Retire(u32),
    Subscribe(u32),
    Unsubscribe(u32),
    Broadcast(u32),
    Tick,
}

fn arb_lifecycle_ops() -> impl Strategy<Value = Vec<LifecycleOp>> {
    let op = prop_oneof![
        (1u32..5).prop_map(LifecycleOp::Create),
        (0u32..5).prop_map(LifecycleOp::Retire),
        (0u32..5).prop_map(LifecycleOp::Subscribe),
        (0u32..5).prop_map(LifecycleOp::Unsubscribe),
        (0u32..5).prop_map(LifecycleOp::Broadcast),
        (0u32..1).prop_map(|_| LifecycleOp::Tick),
    ];
    proptest::collection::vec(op, 1..60)
}

proptest! {
    #[test]
    fn lifecycle_interleavings_respect_the_state_machine(ops in arb_lifecycle_ops()) {
        use std::collections::BTreeSet;
        use urb_core::Algorithm;
        use urb_engine::{MuxBuffers, StepBuffers, StepInput, TopicEngine};
        use urb_types::{FdSnapshot, SplitMix64, TopicId};

        let n = 3;
        // Topic 0 is the static plane; 1..5 are dynamic. A short drain
        // budget keeps retirement resolving within a few ticks even for
        // the never-quiescent majority algorithm.
        let mut engine = TopicEngine::new(
            vec![Algorithm::Majority.instantiate(n)],
            SplitMix64::new(7),
        );
        engine.set_drain_limit(2);
        let fd = FdSnapshot::none();
        let mut scratch = StepBuffers::new();
        let mut mux = MuxBuffers::new();

        // Reference model: the slot map is `live ∪ draining`; `retired`
        // holds reaped tombstones; `ever_retired` drives the
        // starts-clean check on re-creation.
        let mut live: BTreeSet<TopicId> = [TopicId::ZERO].into();
        let mut draining: BTreeSet<TopicId> = BTreeSet::new();
        let mut subs: BTreeSet<TopicId> = BTreeSet::new();
        let mut broadcasts_on_live = 0u64;

        for op in ops {
            match op {
                LifecycleOp::Create(t) => {
                    let t = TopicId(t);
                    let fresh = engine.create_topic(t, Algorithm::Majority.instantiate(n));
                    let expect_fresh = !live.contains(&t) && !draining.contains(&t);
                    prop_assert_eq!(fresh, expect_fresh, "create idempotency on {}", t);
                    if expect_fresh {
                        prop_assert_eq!(
                            engine.stats_for(t).total(), 0,
                            "(re-)created topic {} must start clean", t
                        );
                        live.insert(t);
                    }
                }
                LifecycleOp::Retire(t) => {
                    let t = TopicId(t);
                    let did = engine.retire_topic(t);
                    prop_assert_eq!(did, live.contains(&t), "retire gating on {}", t);
                    if live.remove(&t) {
                        draining.insert(t);
                    }
                }
                LifecycleOp::Subscribe(t) => {
                    let t = TopicId(t);
                    engine.subscribe(t);
                    subs.insert(t);
                }
                LifecycleOp::Unsubscribe(t) => {
                    let t = TopicId(t);
                    engine.unsubscribe(t);
                    subs.remove(&t);
                }
                LifecycleOp::Broadcast(t) => {
                    let t = TopicId(t);
                    if live.contains(&t) {
                        // Only live topics accept broadcasts (the driver
                        // contract: it checks `is_live` first).
                        prop_assert!(engine.is_live(t));
                        let tag = engine.step(
                            t,
                            StepInput::Broadcast(Payload::from("p")),
                            &fd,
                            &mut scratch,
                        );
                        prop_assert!(tag.is_some());
                        broadcasts_on_live += 1;
                        scratch.outbox.clear();
                        scratch.deliveries.clear();
                    } else {
                        prop_assert!(!engine.is_live(t), "{} must not be live", t);
                    }
                }
                LifecycleOp::Tick => {
                    engine.tick_all(&fd, &mut mux);
                    // tick_all reaps: every draining topic with an expired
                    // budget (limit 2) disappears within 3 ticks; model
                    // conservatively — after each tick a draining topic
                    // either still holds an instance or is tombstoned.
                    let reaped: Vec<TopicId> = draining
                        .iter()
                        .copied()
                        .filter(|&t| !engine.has_instance(t))
                        .collect();
                    for t in reaped {
                        draining.remove(&t);
                        // Reaping also drops the subscription: a
                        // reclaimed instance has no readers.
                        subs.remove(&t);
                    }
                    mux.clear();
                }
            }

            // Engine and model agree on the lifecycle state machine.
            for t in 0..5u32 {
                let t = TopicId(t);
                prop_assert_eq!(engine.is_live(t), live.contains(&t), "liveness of {}", t);
                prop_assert_eq!(
                    engine.has_instance(t),
                    live.contains(&t) || draining.contains(&t),
                    "instance map of {}", t
                );
                prop_assert_eq!(engine.is_subscribed(t), subs.contains(&t));
                if engine.is_retired(t) {
                    // Reaped means gone: a retired topic holds no state
                    // and serves no traffic until re-created.
                    prop_assert!(!engine.has_instance(t));
                }
            }
        }

        // Drain every remaining retirement: within drain-limit + 1 ticks
        // every draining instance must be reaped and counted.
        for _ in 0..4 {
            engine.tick_all(&fd, &mut mux);
            mux.clear();
        }
        let c = engine.counters();
        prop_assert_eq!(
            c.topics_retired, c.topics_reclaimed,
            "every retirement resolves to a reclaim within the budget"
        );
        prop_assert!(c.broadcasts >= broadcasts_on_live);
    }
}
