//! Transport-layer tests: frame reassembly over arbitrary stream
//! splits (proptest) and real loopback-socket exchange through
//! [`TcpMesh`].
//!
//! The reassembly properties drive the exact byte streams the TCP
//! readers see: encoded [`MuxBatch`] frames in length-prefixed stream
//! framing, chopped at arbitrary `read(2)` boundaries — including
//! mid-length-prefix — with corruption surfacing as typed errors.
//! Socket-dependent tests are `#[ignore]`-gated for minimal local
//! environments; CI's cluster-smoke job runs them (`--ignored`).

use proptest::prelude::*;
use urb_runtime::transport::{
    write_stream_frame, FrameReassembler, FrameStreamError, MeshConfig, TcpMesh,
};
use urb_types::{MuxBatch, Payload, Tag, TopicId, WireMessage};

fn arb_message() -> impl Strategy<Value = WireMessage> {
    (any::<u128>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(t, p)| {
        WireMessage::Msg {
            tag: Tag(t),
            payload: Payload::from(p),
        }
    })
}

/// A small stream of encoded mux frames (the exact bytes the writer
/// threads emit, sans the per-frame length prefixes the stream layer
/// adds).
fn arb_frames() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..4, arb_message()), 1..5),
        0..6,
    )
    .prop_map(|frames| {
        frames
            .into_iter()
            .map(|entries| {
                // Group ascending by topic to satisfy the mux wire
                // invariant (the shape every engine outbox has).
                let mut by_topic: std::collections::BTreeMap<u32, Vec<WireMessage>> =
                    Default::default();
                for (t, m) in entries {
                    by_topic.entry(t).or_default().push(m);
                }
                let entries: Vec<(TopicId, WireMessage)> = by_topic
                    .into_iter()
                    .flat_map(|(t, ms)| ms.into_iter().map(move |m| (TopicId(t), m)))
                    .collect();
                MuxBatch::from_entries(&entries).encode().to_vec()
            })
            .collect()
    })
}

proptest! {
    /// Splitting a framed stream at arbitrary byte boundaries —
    /// including mid-length-prefix and mid-frame — reproduces the exact
    /// frame sequence, and every reproduced frame still decodes as the
    /// mux frame it was.
    #[test]
    fn reassembly_survives_arbitrary_splits(
        frames in arb_frames(),
        cuts in proptest::collection::vec(any::<u16>(), 0..24),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            write_stream_frame(f, &mut stream);
        }
        // Turn the arbitrary cut points into sorted split positions.
        let mut splits: Vec<usize> = cuts
            .into_iter()
            .map(|c| if stream.is_empty() { 0 } else { c as usize % stream.len() })
            .collect();
        splits.sort_unstable();
        splits.dedup();

        let mut reasm = FrameReassembler::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let drain = |r: &mut FrameReassembler, got: &mut Vec<Vec<u8>>| {
            while let Some(f) = r.next_frame().expect("clean stream") {
                got.push(f.to_vec());
            }
        };
        let mut prev = 0usize;
        for cut in splits {
            reasm.push(&stream[prev..cut]);
            drain(&mut reasm, &mut got);
            prev = cut;
        }
        reasm.push(&stream[prev..]);
        drain(&mut reasm, &mut got);

        prop_assert_eq!(&got, &frames, "frame sequence reproduced exactly");
        prop_assert_eq!(reasm.buffered(), 0, "no stray bytes left");
        for f in &got {
            prop_assert!(MuxBatch::decode(f).is_ok(), "reassembled frame still decodes");
        }
    }

    /// A length prefix above the cap is a typed error wherever it lands
    /// in the stream — after any number of clean frames.
    #[test]
    fn oversized_prefix_is_typed_wherever_it_lands(
        frames in arb_frames(),
        extra in 1u32..1024,
    ) {
        let cap = 4096usize;
        let mut stream = Vec::new();
        for f in &frames {
            // Keep the clean frames under the test cap.
            if f.len() <= cap {
                write_stream_frame(f, &mut stream);
            }
        }
        let bad_len = cap as u32 + extra;
        stream.extend_from_slice(&bad_len.to_be_bytes());
        stream.extend_from_slice(&[0u8; 8]);

        let mut reasm = FrameReassembler::with_max_frame(cap);
        reasm.push(&stream);
        let mut seen = 0usize;
        let err = loop {
            match reasm.next_frame() {
                Ok(Some(_)) => seen += 1,
                Ok(None) => prop_assert!(false, "corruption must surface, not starve"),
                Err(e) => break e,
            }
        };
        prop_assert_eq!(
            err,
            FrameStreamError::FrameTooLarge { len: bad_len as usize, max: cap }
        );
        prop_assert_eq!(
            seen,
            frames.iter().filter(|f| f.len() <= cap).count(),
            "every clean frame before the corruption is recovered"
        );
    }

    /// A zero length prefix is the other typed corruption.
    #[test]
    fn zero_prefix_is_typed_after_any_clean_prefix(frames in arb_frames()) {
        let mut stream = Vec::new();
        for f in &frames {
            write_stream_frame(f, &mut stream);
        }
        stream.extend_from_slice(&[0, 0, 0, 0]);
        let mut reasm = FrameReassembler::new();
        reasm.push(&stream);
        let err = loop {
            match reasm.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => prop_assert!(false, "corruption must surface"),
                Err(e) => break e,
            }
        };
        prop_assert_eq!(err, FrameStreamError::EmptyFrame);
    }
}

/// Two meshes on loopback: A dials B, a broadcast frame crosses the
/// socket and lands in B's ingress byte-exactly.
#[test]
#[ignore = "binds loopback sockets; run via CI cluster-smoke or --ignored"]
fn loopback_mesh_delivers_frames() {
    use bytes::Bytes;
    use std::time::Duration;

    let (b_tx, b_rx) = crossbeam_channel::unbounded();
    let mut mesh_b = TcpMesh::start(MeshConfig::new("127.0.0.1:0", vec![]), b_tx).expect("bind B");
    let b_addr = mesh_b.local_addr().to_string();

    let (a_tx, _a_rx) = crossbeam_channel::unbounded();
    let mut mesh_a =
        TcpMesh::start(MeshConfig::new("127.0.0.1:0", vec![b_addr]), a_tx).expect("bind A");

    // The writer dials asynchronously; frames queued before the dial
    // completes are flushed once it does.
    let frame = Bytes::copy_from_slice(b"\x04mesh-frame-payload");
    mesh_a.broadcast(&frame);
    let got = b_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("frame crosses the socket");
    assert_eq!(got, frame);

    // Steady state: an established connection moves many frames in order.
    for i in 0..100u8 {
        mesh_a.broadcast(&Bytes::copy_from_slice(&[0x04, i]));
    }
    for i in 0..100u8 {
        let got = b_rx.recv_timeout(Duration::from_secs(10)).expect("ordered");
        assert_eq!(got[..], [0x04, i]);
    }
    let stats = mesh_a.stats();
    assert!(stats.dials_ok >= 1);
    assert_eq!(stats.dropped_backpressure, 0);
    mesh_a.shutdown();
    mesh_b.shutdown();
    assert!(mesh_b.stats().accepted >= 1);
}

/// Killing and restarting a listening mesh exercises the writer's
/// backoff/redial path: frames flow again to the restarted peer on the
/// same address, and the sender's reconnect counter ticks.
#[test]
#[ignore = "binds loopback sockets; run via CI cluster-smoke or --ignored"]
fn mesh_writer_reconnects_after_peer_restart() {
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    let (b_tx, b_rx) = crossbeam_channel::unbounded();
    let mut mesh_b = TcpMesh::start(MeshConfig::new("127.0.0.1:0", vec![]), b_tx).expect("bind B");
    let b_addr = mesh_b.local_addr().to_string();

    let (a_tx, _a_rx) = crossbeam_channel::unbounded();
    let mut mesh_a =
        TcpMesh::start(MeshConfig::new("127.0.0.1:0", vec![b_addr.clone()]), a_tx).expect("bind A");
    mesh_a.broadcast(&Bytes::copy_from_slice(b"before"));
    assert_eq!(
        b_rx.recv_timeout(Duration::from_secs(10))
            .expect("pre-kill"),
        Bytes::copy_from_slice(b"before")
    );

    // Kill B. A's writer discovers the dead connection on its next
    // write, drops that frame (fair-lossy), and redials with backoff.
    mesh_b.shutdown();
    drop(mesh_b);
    drop(b_rx);

    // Restart B on the same address.
    let (b_tx, b_rx) = crossbeam_channel::unbounded();
    let mut mesh_b = TcpMesh::start(MeshConfig::new(b_addr, vec![]), b_tx).expect("rebind B");

    // Keep sending until a frame lands on the restarted peer: everything
    // sent while the old socket lingered or dials failed is lost by
    // design; the protocols' retransmission is modeled by this loop.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut delivered = false;
    while Instant::now() < deadline {
        mesh_a.broadcast(&Bytes::copy_from_slice(b"after"));
        if let Ok(frame) = b_rx.recv_timeout(Duration::from_millis(100)) {
            assert_eq!(frame, Bytes::copy_from_slice(b"after"));
            delivered = true;
            break;
        }
    }
    assert!(delivered, "writer re-established the connection");
    assert!(
        mesh_a.stats().reconnects >= 1,
        "recovery went through the redial path: {:?}",
        mesh_a.stats()
    );
    mesh_a.shutdown();
    mesh_b.shutdown();
}
