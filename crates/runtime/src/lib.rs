//! # `urb-runtime`
//!
//! A real concurrent deployment of the paper's protocols: one OS thread per
//! anonymous process, an in-process router — sharded into one or more
//! **lanes** with topics distributed `topic % lanes` (DESIGN.md §12) —
//! that implements the lossy broadcast medium over the multiplexed
//! message plane, explicit crash injection, and a registry-backed failure
//! detector. Every protocol step runs through the shared `urb-engine`
//! layer — the *same* code path the discrete-event simulator executes —
//! so the runtime deploys byte-for-byte the state machines the simulator
//! proves things about. Each node runs one protocol instance per topic
//! ([`urb_engine::TopicEngine`]); deliveries carry their
//! [`urb_types::TopicId`] and can be consumed per topic via
//! [`UrbCluster::subscribe`].
//!
//! Where the simulator provides *provable* runs (deterministic, checked),
//! the runtime provides *believable* ones: actual threads racing through
//! `parking_lot` locks and `crossbeam` channels, wall-clock tick loops, and
//! message loss injected on live traffic. The examples (`quickstart`,
//! `crash_storm`) and the runtime integration tests use it.
//!
//! ```no_run
//! use urb_runtime::{ClusterConfig, UrbCluster};
//! use urb_core::Algorithm;
//!
//! let cluster = UrbCluster::spawn(ClusterConfig::new(5, Algorithm::Quiescent));
//! let tag = cluster.broadcast(0, "hello, anonymous world".into()).unwrap();
//! cluster.await_delivery_everywhere(tag, std::time::Duration::from_secs(5));
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod daemon;
pub mod lanes;
mod node;
mod registry;
mod router;
pub mod state;
pub mod transport;

pub use daemon::{
    expected_payloads, run_node, run_reference, send_control, workload_payload, NodeConfig,
    NodeReport, TopicDeliveries,
};
pub use lanes::LaneDirectory;
pub use registry::MembershipRegistry;
pub use router::TrafficStats;
pub use state::{RecoveredState, StateDir, StateError};
pub use transport::{MeshConfig, NetError, NetStats, TcpMesh};

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_types::{Delivery, Payload, Tag, TopicControl, TopicId};

/// One per-topic delivery subscription: the topic filter and the
/// subscriber's channel (fed `(pid, delivery)` pairs).
type TopicSubscriber = (TopicId, Sender<(usize, Delivery)>);

/// Configuration of a local cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of anonymous processes (each gets its own OS thread).
    pub n: usize,
    /// Protocol to run.
    pub algorithm: Algorithm,
    /// Bernoulli loss probability applied to every routed copy
    /// (sender-to-self copies are never lost, mirroring the simulator).
    pub loss: f64,
    /// Task-1 sweep period.
    pub tick_interval: Duration,
    /// How long after `crash()` the victim's label disappears from detector
    /// views (the `AP*` removal latency, in real time).
    pub detection_delay: Duration,
    /// Seed for the router's loss RNG and the label draws (tags still use
    /// per-node seeded streams, so runs are loss-pattern-reproducible even
    /// though thread interleaving is not).
    pub seed: u64,
    /// Number of concurrent URB instances (topics) every node serves
    /// (DESIGN.md §12). Defaults to 1.
    pub topics: u32,
    /// Number of router lanes the topics are sharded across
    /// (`lane = topic % router_lanes`); each lane is its own thread.
    /// Defaults to 1, the pre-topic single-router design.
    pub router_lanes: usize,
}

impl ClusterConfig {
    /// Defaults: no loss, 20 ms ticks, 200 ms detection delay.
    pub fn new(n: usize, algorithm: Algorithm) -> Self {
        ClusterConfig {
            n,
            algorithm,
            loss: 0.0,
            tick_interval: Duration::from_millis(20),
            detection_delay: Duration::from_millis(200),
            seed: 0x5EED,
            topics: 1,
            router_lanes: 1,
        }
    }

    /// Sets the number of topics per node.
    pub fn topics(mut self, topics: u32) -> Self {
        self.topics = topics.max(1);
        self
    }

    /// Sets the number of router lanes.
    pub fn router_lanes(mut self, lanes: usize) -> Self {
        self.router_lanes = lanes.max(1);
        self
    }

    /// Sets the per-copy loss probability.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Commands a node thread accepts.
pub(crate) enum Command {
    /// Invoke `URB_broadcast(payload)` on one topic instance; reply with
    /// the assigned tag, or `None` when the topic is not live at that
    /// node (refused invocation — DESIGN.md §15).
    Broadcast(TopicId, Payload, Sender<Option<Tag>>),
    /// Apply one lifecycle control operation (create/retire/subscribe/
    /// unsubscribe — DESIGN.md §15) and gossip it to the rest of the
    /// cluster if it changed state; reply with whether it did.
    Control(TopicControl, Sender<bool>),
    /// Crash-stop immediately.
    Crash,
    /// Graceful shutdown (test teardown; not a crash).
    Shutdown,
}

/// Everything a node thread consumes, funnelled through one FIFO so the
/// node loop blocks on a single receive with a tick deadline (network
/// frames from the router, commands from the cluster handle).
pub(crate) enum NodeInput {
    /// A surviving sub-batch from a router lane, as an encoded
    /// multiplexed wire frame (decoded by the node with shared payloads —
    /// DESIGN.md §10/§12).
    Net(bytes::Bytes),
    /// A control command from the cluster handle.
    Cmd(Command),
}

/// A running cluster of anonymous processes.
pub struct UrbCluster {
    config: ClusterConfig,
    input_txs: Vec<Sender<NodeInput>>,
    /// Per-node crash-stop flags. Set *before* the wake-up command is
    /// enqueued and checked by the node on every loop iteration, so a
    /// crash takes effect within one protocol step even when the node's
    /// input FIFO holds a deep network backlog (a queued `Cmd` alone
    /// would only fire after the backlog drained).
    stop_flags: Vec<Arc<std::sync::atomic::AtomicBool>>,
    delivery_rxs: Vec<Receiver<(TopicId, Delivery)>>,
    /// Per-process delivery log: every delivery ever drained from a node's
    /// stream lands here (with its topic), so waiting for one tag never
    /// loses another.
    delivery_log: Mutex<Vec<Vec<(TopicId, Delivery)>>>,
    /// Per-topic delivery subscriptions: `(topic, sender)` pairs fed by
    /// `pump_deliveries`. A dropped receiver is pruned on the next pump.
    subscribers: Mutex<Vec<TopicSubscriber>>,
    registry: Arc<MembershipRegistry>,
    traffic: Arc<router::TrafficCounters>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl UrbCluster {
    /// Spawns `config.n` node threads plus the router.
    pub fn spawn(config: ClusterConfig) -> Self {
        let n = config.n;
        assert!(n >= 1);
        let registry = Arc::new(MembershipRegistry::new(
            n,
            config.seed,
            config.detection_delay,
        ));
        let traffic = Arc::new(router::TrafficCounters::default());

        // Wiring: nodes → router lanes (ingress, encoded mux frames;
        // lane = topic % lanes), lanes → nodes (the same funnelled input
        // channel the cluster handle commands through). One frame-buffer
        // pool serves every thread.
        let pool = urb_types::BufPool::default();
        let lanes = config.router_lanes.max(1);
        let mut input_txs = Vec::with_capacity(n);
        let mut input_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<NodeInput>();
            input_txs.push(tx);
            input_rxs.push(rx);
        }

        let mut threads = Vec::with_capacity(n + lanes);
        let mut ingress_txs = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let (ingress_tx, ingress_rx) = unbounded::<(usize, bytes::Bytes)>();
            ingress_txs.push(ingress_tx);
            threads.push(router::spawn_router_lane(
                lane,
                ingress_rx,
                input_txs.clone(),
                config.loss,
                config.seed,
                Arc::clone(&traffic),
                pool.clone(),
            ));
        }

        let mut delivery_rxs = Vec::with_capacity(n);
        let mut stop_flags = Vec::with_capacity(n);
        for (pid, inputs) in input_rxs.into_iter().enumerate() {
            let (del_tx, del_rx) = unbounded();
            delivery_rxs.push(del_rx);
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            stop_flags.push(Arc::clone(&stop));
            threads.push(node::spawn_node(node::NodeSetup {
                pid,
                algorithm: config.algorithm,
                n,
                topics: config.topics,
                seed: config.seed,
                tick_interval: config.tick_interval,
                inputs,
                stop,
                egress: ingress_txs.clone(),
                deliveries: del_tx,
                registry: Arc::clone(&registry),
                pool: pool.clone(),
            }));
        }
        drop(ingress_txs); // each lane exits when every node sender is gone

        UrbCluster {
            delivery_log: Mutex::new(vec![Vec::new(); n]),
            subscribers: Mutex::new(Vec::new()),
            config,
            input_txs,
            stop_flags,
            delivery_rxs,
            registry,
            traffic,
            threads: Mutex::new(threads),
        }
    }

    /// Drains every node's delivery stream into the persistent log and
    /// forwards each new delivery to matching per-topic subscribers
    /// (dropped subscriber receivers are pruned).
    fn pump_deliveries(&self) {
        let mut log = self.delivery_log.lock();
        let mut subs = self.subscribers.lock();
        for (pid, rx) in self.delivery_rxs.iter().enumerate() {
            while let Ok((topic, d)) = rx.try_recv() {
                subs.retain(|(t, tx)| *t != topic || tx.send((pid, d.clone())).is_ok());
                log[pid].push((topic, d));
            }
        }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.config.n
    }

    /// Invokes `URB_broadcast(payload)` at process `pid` on topic 0.
    /// Returns the tag, or `None` if the process is crashed/shut down.
    pub fn broadcast(&self, pid: usize, payload: Payload) -> Option<Tag> {
        self.broadcast_on(pid, TopicId::ZERO, payload)
    }

    /// Invokes `URB_broadcast(payload)` at process `pid` on `topic`.
    /// Returns the tag, or `None` if the process is crashed/shut down —
    /// or if `topic` is not **live** at that node (never configured, not
    /// yet created, retired): a refused invocation, DESIGN.md §15.
    /// Dynamically created topics (see [`UrbCluster::create_topic`]) are
    /// broadcastable the moment the create reaches the node, so ids at or
    /// above the configured dense range are legal here.
    pub fn broadcast_on(&self, pid: usize, topic: TopicId, payload: Payload) -> Option<Tag> {
        // A crashed/stopped process refuses immediately. Without this check
        // a broadcast racing the node's exit would sit in the dead input
        // queue and only fail via the reply timeout below.
        if self.stop_flags[pid].load(std::sync::atomic::Ordering::Acquire) {
            return None;
        }
        let (tx, rx) = bounded(1);
        self.input_txs[pid]
            .send(NodeInput::Cmd(Command::Broadcast(topic, payload, tx)))
            .ok()?;
        rx.recv_timeout(Duration::from_secs(10)).ok().flatten()
    }

    /// Sends one lifecycle control operation to process `pid`, which
    /// applies it locally and gossips it to the rest of the cluster when
    /// it changed state (idempotent flood — DESIGN.md §15). Returns
    /// whether the operation changed that node's state (`false` also
    /// covers a crashed/stopped target).
    fn control(&self, pid: usize, ctl: TopicControl) -> bool {
        if self.stop_flags[pid].load(std::sync::atomic::Ordering::Acquire) {
            return false;
        }
        let (tx, rx) = bounded(1);
        if self.input_txs[pid]
            .send(NodeInput::Cmd(Command::Control(ctl, tx)))
            .is_err()
        {
            return false;
        }
        rx.recv_timeout(Duration::from_secs(10)).unwrap_or(false)
    }

    /// Creates `topic` cluster-wide, entering it at process `pid` and
    /// letting the control gossip carry it to every other node (lazy
    /// instantiation: each node materialises the instance when the create
    /// reaches it). Returns `false` when the entry node already had the
    /// topic live (the operation is idempotent).
    pub fn create_topic(&self, pid: usize, topic: TopicId, algorithm: Algorithm) -> bool {
        let (code, param) = algorithm.to_wire();
        self.control(
            pid,
            TopicControl::Create {
                topic,
                algorithm: code,
                param,
            },
        )
    }

    /// Retires `topic` cluster-wide, entering at process `pid`: the
    /// instance stops accepting broadcasts immediately and drains its
    /// in-flight tags before its state is reclaimed on a later tick
    /// (DESIGN.md §15). Returns `false` when the entry node had no live
    /// instance to retire.
    pub fn retire_topic(&self, pid: usize, topic: TopicId) -> bool {
        self.control(pid, TopicControl::Retire { topic })
    }

    /// Marks process `pid` as interested in `topic`'s deliveries at the
    /// engine layer (engine-level subscription bookkeeping; delivery
    /// routing to [`UrbCluster::subscribe`] channels is unaffected).
    pub fn subscribe_topic(&self, pid: usize, topic: TopicId) -> bool {
        self.control(pid, TopicControl::Subscribe { topic })
    }

    /// Clears process `pid`'s engine-level interest in `topic`.
    pub fn unsubscribe_topic(&self, pid: usize, topic: TopicId) -> bool {
        self.control(pid, TopicControl::Unsubscribe { topic })
    }

    /// Everything process `pid` has URB-delivered so far, in order,
    /// across every topic.
    pub fn delivery_log(&self, pid: usize) -> Vec<Delivery> {
        self.pump_deliveries();
        self.delivery_log.lock()[pid]
            .iter()
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Everything process `pid` has URB-delivered on `topic`, in order —
    /// the pull side of the per-topic delivery plane.
    pub fn delivery_log_on(&self, pid: usize, topic: TopicId) -> Vec<Delivery> {
        self.pump_deliveries();
        self.delivery_log.lock()[pid]
            .iter()
            .filter(|(t, _)| *t == topic)
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Subscribes to every future delivery on `topic`, cluster-wide: the
    /// returned receiver yields `(pid, delivery)` pairs as the cluster's
    /// delivery pump observes them (i.e. whenever any log/await accessor
    /// runs — subscriptions piggyback on the same drain). Dropping the
    /// receiver unsubscribes.
    pub fn subscribe(&self, topic: TopicId) -> Receiver<(usize, Delivery)> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push((topic, tx));
        rx
    }

    /// Crash-stops process `pid` (idempotent) and informs the membership
    /// registry, which starts the detection-delay clock. The stop flag is
    /// raised first so the victim halts within one step even with a deep
    /// input backlog; the command only wakes it if it was idle.
    pub fn crash(&self, pid: usize) {
        self.stop_flags[pid].store(true, std::sync::atomic::Ordering::Release);
        let _ = self.input_txs[pid].send(NodeInput::Cmd(Command::Crash));
        self.registry.mark_crashed(pid, Instant::now());
    }

    /// Aggregate router traffic so far.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.snapshot()
    }

    /// Blocks until `tag` has been delivered by every non-crashed process
    /// or `timeout` elapses. Returns the pids that delivered in time.
    /// Deliveries of *other* tags observed while waiting are retained in
    /// the log, so sequential waits for several tags all succeed.
    pub fn await_delivery_everywhere(&self, tag: Tag, timeout: Duration) -> Vec<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump_deliveries();
            let log = self.delivery_log.lock();
            let mut out: Vec<usize> = (0..self.config.n)
                .filter(|&pid| log[pid].iter().any(|(_, d)| d.tag == tag))
                .collect();
            let done = (0..self.config.n).all(|p| out.contains(&p) || self.registry.is_crashed(p));
            drop(log);
            if done || Instant::now() >= deadline {
                out.sort_unstable();
                return out;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Blocks until no protocol message (MSG/ACK) has crossed the router
    /// for `idle`, or until `timeout`. Returns `true` on quiescence.
    pub fn await_quiescence(&self, idle: Duration, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let last = self.traffic.last_protocol_activity();
            if let Some(t) = last {
                if t.elapsed() >= idle {
                    return true;
                }
            } else if self.traffic.snapshot().protocol_messages == 0 {
                // Nothing ever sent: vacuously quiescent.
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Gracefully stops every thread. Call at the end of a test/example.
    pub fn shutdown(&self) {
        for (flag, tx) in self.stop_flags.iter().zip(&self.input_txs) {
            flag.store(true, std::sync::atomic::Ordering::Release);
            let _ = tx.send(NodeInput::Cmd(Command::Shutdown));
        }
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for UrbCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_roundtrip_no_loss() {
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Majority));
        let tag = cluster.broadcast(0, Payload::from("hi")).expect("tag");
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who, vec![0, 1, 2]);
        cluster.shutdown();
    }

    #[test]
    fn quiescent_algorithm_goes_silent() {
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Quiescent));
        let tag = cluster
            .broadcast(1, Payload::from("silence after this"))
            .unwrap();
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who.len(), 3);
        assert!(
            cluster.await_quiescence(Duration::from_millis(400), Duration::from_secs(15)),
            "Algorithm 2 must stop talking"
        );
        cluster.shutdown();
    }

    #[test]
    fn lossy_cluster_still_delivers() {
        let cluster =
            UrbCluster::spawn(ClusterConfig::new(4, Algorithm::Majority).loss(0.3).seed(9));
        let tag = cluster
            .broadcast(2, Payload::from("through the noise"))
            .unwrap();
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(20));
        assert_eq!(who.len(), 4, "fairness beats 30% loss");
        cluster.shutdown();
    }

    #[test]
    fn multi_topic_cluster_shards_lanes_and_subscriptions() {
        // 3 topics over 2 router lanes: each topic's broadcast reaches
        // everyone, the per-topic logs stay disjoint, and a subscription
        // sees exactly its own topic's deliveries.
        let cluster = UrbCluster::spawn(
            ClusterConfig::new(3, Algorithm::Majority)
                .topics(3)
                .router_lanes(2),
        );
        let feed = cluster.subscribe(TopicId(2));
        let mut tags = Vec::new();
        for t in 0..3u32 {
            let tag = cluster
                .broadcast_on(
                    t as usize % 3,
                    TopicId(t),
                    Payload::from(format!("t{t}").as_str()),
                )
                .expect("tag");
            tags.push(tag);
        }
        for (t, tag) in tags.iter().enumerate() {
            let who = cluster.await_delivery_everywhere(*tag, Duration::from_secs(10));
            assert_eq!(who, vec![0, 1, 2], "topic {t}");
        }
        for pid in 0..3 {
            for (t, tag) in tags.iter().enumerate() {
                let log = cluster.delivery_log_on(pid, TopicId(t as u32));
                assert_eq!(log.len(), 1, "pid {pid} topic {t}");
                assert_eq!(log[0].tag, *tag);
            }
            assert_eq!(cluster.delivery_log(pid).len(), 3, "all topics combined");
        }
        // The topic-2 subscription saw exactly the 3 per-process
        // deliveries of topic 2 and nothing else.
        let mut seen: Vec<usize> = Vec::new();
        while let Ok((pid, d)) = feed.try_recv() {
            assert_eq!(d.tag, tags[2]);
            seen.push(pid);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        cluster.shutdown();
    }

    #[test]
    fn dynamic_topic_create_broadcast_retire_roundtrip() {
        // DESIGN.md §15 end to end on real threads: create a topic at
        // runtime through one node, let the control gossip carry it to
        // the others, run a broadcast over it, then retire it and watch
        // broadcasts get refused.
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Quiescent));
        let dyn_topic = TopicId(7);

        // Before the create, the topic is refused everywhere.
        assert!(cluster.broadcast_on(0, dyn_topic, "early".into()).is_none());

        assert!(cluster.create_topic(0, dyn_topic, Algorithm::Majority));
        // Idempotent at the entry node: a second create changes nothing.
        assert!(!cluster.create_topic(0, dyn_topic, Algorithm::Majority));

        // The create gossips to nodes 1 and 2 on node 0's next outgoing
        // frame; a broadcast from node 0 forces one immediately. Nodes
        // that see the MSG before the create drop it inertly, so poll
        // from a non-entry node until the topic is live there.
        let deadline = Instant::now() + Duration::from_secs(10);
        let tag = loop {
            if let Some(tag) = cluster.broadcast_on(1, dyn_topic, "dyn".into()) {
                break tag;
            }
            assert!(
                Instant::now() < deadline,
                "create gossip never reached node 1"
            );
            // Nudge traffic so the control rides a frame even if node 0
            // is otherwise idle between ticks.
            let _ = cluster.broadcast_on(0, TopicId::ZERO, "nudge".into());
            std::thread::sleep(Duration::from_millis(10));
        };
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who, vec![0, 1, 2], "dynamic topic delivers everywhere");

        // Retire: the entry node refuses broadcasts immediately.
        assert!(cluster.retire_topic(1, dyn_topic));
        assert!(cluster.broadcast_on(1, dyn_topic, "late".into()).is_none());
        // And the retire gossips: eventually every node refuses.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if cluster.broadcast_on(2, dyn_topic, "late2".into()).is_none() {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "retire gossip never reached node 2"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        cluster.shutdown();
    }

    #[test]
    fn crashed_process_stops_accepting() {
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Majority));
        cluster.crash(1);
        std::thread::sleep(Duration::from_millis(50));
        assert!(cluster.broadcast(1, Payload::from("x")).is_none());
        assert!(cluster.registry.is_crashed(1));
        // The rest of the system keeps working (2 of 3 is a majority).
        let tag = cluster.broadcast(0, Payload::from("still alive")).unwrap();
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who, vec![0, 2]);
        cluster.shutdown();
    }
}
