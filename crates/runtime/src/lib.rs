//! # `urb-runtime`
//!
//! A real concurrent deployment of the paper's protocols: one OS thread per
//! anonymous process, an in-process router that implements the lossy
//! broadcast medium over the batched message plane, explicit crash
//! injection, and a registry-backed failure detector. Every protocol step
//! runs through the shared `urb-engine` layer — the *same* code path the
//! discrete-event simulator executes — so the runtime deploys byte-for-byte
//! the state machines the simulator proves things about.
//!
//! Where the simulator provides *provable* runs (deterministic, checked),
//! the runtime provides *believable* ones: actual threads racing through
//! `parking_lot` locks and `crossbeam` channels, wall-clock tick loops, and
//! message loss injected on live traffic. The examples (`quickstart`,
//! `crash_storm`) and the runtime integration tests use it.
//!
//! ```no_run
//! use urb_runtime::{ClusterConfig, UrbCluster};
//! use urb_core::Algorithm;
//!
//! let cluster = UrbCluster::spawn(ClusterConfig::new(5, Algorithm::Quiescent));
//! let tag = cluster.broadcast(0, "hello, anonymous world".into()).unwrap();
//! cluster.await_delivery_everywhere(tag, std::time::Duration::from_secs(5));
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod node;
mod registry;
mod router;

pub use registry::MembershipRegistry;
pub use router::TrafficStats;

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_types::{Delivery, Payload, Tag};

/// Configuration of a local cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of anonymous processes (each gets its own OS thread).
    pub n: usize,
    /// Protocol to run.
    pub algorithm: Algorithm,
    /// Bernoulli loss probability applied to every routed copy
    /// (sender-to-self copies are never lost, mirroring the simulator).
    pub loss: f64,
    /// Task-1 sweep period.
    pub tick_interval: Duration,
    /// How long after `crash()` the victim's label disappears from detector
    /// views (the `AP*` removal latency, in real time).
    pub detection_delay: Duration,
    /// Seed for the router's loss RNG and the label draws (tags still use
    /// per-node seeded streams, so runs are loss-pattern-reproducible even
    /// though thread interleaving is not).
    pub seed: u64,
}

impl ClusterConfig {
    /// Defaults: no loss, 20 ms ticks, 200 ms detection delay.
    pub fn new(n: usize, algorithm: Algorithm) -> Self {
        ClusterConfig {
            n,
            algorithm,
            loss: 0.0,
            tick_interval: Duration::from_millis(20),
            detection_delay: Duration::from_millis(200),
            seed: 0x5EED,
        }
    }

    /// Sets the per-copy loss probability.
    pub fn loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Commands a node thread accepts.
pub(crate) enum Command {
    /// Invoke `URB_broadcast(payload)`; reply with the assigned tag.
    Broadcast(Payload, Sender<Tag>),
    /// Crash-stop immediately.
    Crash,
    /// Graceful shutdown (test teardown; not a crash).
    Shutdown,
}

/// Everything a node thread consumes, funnelled through one FIFO so the
/// node loop blocks on a single receive with a tick deadline (network
/// frames from the router, commands from the cluster handle).
pub(crate) enum NodeInput {
    /// A surviving sub-batch from the router, as an encoded wire frame
    /// (decoded by the node with shared payloads — DESIGN.md §10).
    Net(bytes::Bytes),
    /// A control command from the cluster handle.
    Cmd(Command),
}

/// A running cluster of anonymous processes.
pub struct UrbCluster {
    config: ClusterConfig,
    input_txs: Vec<Sender<NodeInput>>,
    /// Per-node crash-stop flags. Set *before* the wake-up command is
    /// enqueued and checked by the node on every loop iteration, so a
    /// crash takes effect within one protocol step even when the node's
    /// input FIFO holds a deep network backlog (a queued `Cmd` alone
    /// would only fire after the backlog drained).
    stop_flags: Vec<Arc<std::sync::atomic::AtomicBool>>,
    delivery_rxs: Vec<Receiver<Delivery>>,
    /// Per-process delivery log: every delivery ever drained from a node's
    /// stream lands here, so waiting for one tag never loses another.
    delivery_log: Mutex<Vec<Vec<Delivery>>>,
    registry: Arc<MembershipRegistry>,
    traffic: Arc<router::TrafficCounters>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl UrbCluster {
    /// Spawns `config.n` node threads plus the router.
    pub fn spawn(config: ClusterConfig) -> Self {
        let n = config.n;
        assert!(n >= 1);
        let registry = Arc::new(MembershipRegistry::new(
            n,
            config.seed,
            config.detection_delay,
        ));
        let traffic = Arc::new(router::TrafficCounters::default());

        // Wiring: nodes → router (ingress, encoded wire frames), router →
        // nodes (the same funnelled input channel the cluster handle
        // commands through). One frame-buffer pool serves every thread.
        let pool = urb_types::BufPool::default();
        let (ingress_tx, ingress_rx) = unbounded::<(usize, bytes::Bytes)>();
        let mut input_txs = Vec::with_capacity(n);
        let mut input_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<NodeInput>();
            input_txs.push(tx);
            input_rxs.push(rx);
        }

        let mut threads = Vec::with_capacity(n + 1);
        threads.push(router::spawn_router(
            ingress_rx,
            input_txs.clone(),
            config.loss,
            config.seed,
            Arc::clone(&traffic),
            pool.clone(),
        ));

        let mut delivery_rxs = Vec::with_capacity(n);
        let mut stop_flags = Vec::with_capacity(n);
        for (pid, inputs) in input_rxs.into_iter().enumerate() {
            let (del_tx, del_rx) = unbounded();
            delivery_rxs.push(del_rx);
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            stop_flags.push(Arc::clone(&stop));
            threads.push(node::spawn_node(node::NodeSetup {
                pid,
                algorithm: config.algorithm,
                n,
                seed: config.seed,
                tick_interval: config.tick_interval,
                inputs,
                stop,
                egress: ingress_tx.clone(),
                deliveries: del_tx,
                registry: Arc::clone(&registry),
                pool: pool.clone(),
            }));
        }
        drop(ingress_tx); // router exits when every node sender is gone

        UrbCluster {
            delivery_log: Mutex::new(vec![Vec::new(); n]),
            config,
            input_txs,
            stop_flags,
            delivery_rxs,
            registry,
            traffic,
            threads: Mutex::new(threads),
        }
    }

    /// Drains every node's delivery stream into the persistent log.
    fn pump_deliveries(&self) {
        let mut log = self.delivery_log.lock();
        for (pid, rx) in self.delivery_rxs.iter().enumerate() {
            while let Ok(d) = rx.try_recv() {
                log[pid].push(d);
            }
        }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.config.n
    }

    /// Invokes `URB_broadcast(payload)` at process `pid`. Returns the tag,
    /// or `None` if the process is crashed/shut down.
    pub fn broadcast(&self, pid: usize, payload: Payload) -> Option<Tag> {
        // A crashed/stopped process refuses immediately. Without this check
        // a broadcast racing the node's exit would sit in the dead input
        // queue and only fail via the reply timeout below.
        if self.stop_flags[pid].load(std::sync::atomic::Ordering::Acquire) {
            return None;
        }
        let (tx, rx) = bounded(1);
        self.input_txs[pid]
            .send(NodeInput::Cmd(Command::Broadcast(payload, tx)))
            .ok()?;
        rx.recv_timeout(Duration::from_secs(10)).ok()
    }

    /// Everything process `pid` has URB-delivered so far, in order.
    pub fn delivery_log(&self, pid: usize) -> Vec<Delivery> {
        self.pump_deliveries();
        self.delivery_log.lock()[pid].clone()
    }

    /// Crash-stops process `pid` (idempotent) and informs the membership
    /// registry, which starts the detection-delay clock. The stop flag is
    /// raised first so the victim halts within one step even with a deep
    /// input backlog; the command only wakes it if it was idle.
    pub fn crash(&self, pid: usize) {
        self.stop_flags[pid].store(true, std::sync::atomic::Ordering::Release);
        let _ = self.input_txs[pid].send(NodeInput::Cmd(Command::Crash));
        self.registry.mark_crashed(pid, Instant::now());
    }

    /// Aggregate router traffic so far.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic.snapshot()
    }

    /// Blocks until `tag` has been delivered by every non-crashed process
    /// or `timeout` elapses. Returns the pids that delivered in time.
    /// Deliveries of *other* tags observed while waiting are retained in
    /// the log, so sequential waits for several tags all succeed.
    pub fn await_delivery_everywhere(&self, tag: Tag, timeout: Duration) -> Vec<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump_deliveries();
            let log = self.delivery_log.lock();
            let mut out: Vec<usize> = (0..self.config.n)
                .filter(|&pid| log[pid].iter().any(|d| d.tag == tag))
                .collect();
            let done = (0..self.config.n).all(|p| out.contains(&p) || self.registry.is_crashed(p));
            drop(log);
            if done || Instant::now() >= deadline {
                out.sort_unstable();
                return out;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Blocks until no protocol message (MSG/ACK) has crossed the router
    /// for `idle`, or until `timeout`. Returns `true` on quiescence.
    pub fn await_quiescence(&self, idle: Duration, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let last = self.traffic.last_protocol_activity();
            if let Some(t) = last {
                if t.elapsed() >= idle {
                    return true;
                }
            } else if self.traffic.snapshot().protocol_messages == 0 {
                // Nothing ever sent: vacuously quiescent.
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Gracefully stops every thread. Call at the end of a test/example.
    pub fn shutdown(&self) {
        for (flag, tx) in self.stop_flags.iter().zip(&self.input_txs) {
            flag.store(true, std::sync::atomic::Ordering::Release);
            let _ = tx.send(NodeInput::Cmd(Command::Shutdown));
        }
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for UrbCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_roundtrip_no_loss() {
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Majority));
        let tag = cluster.broadcast(0, Payload::from("hi")).expect("tag");
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who, vec![0, 1, 2]);
        cluster.shutdown();
    }

    #[test]
    fn quiescent_algorithm_goes_silent() {
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Quiescent));
        let tag = cluster
            .broadcast(1, Payload::from("silence after this"))
            .unwrap();
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who.len(), 3);
        assert!(
            cluster.await_quiescence(Duration::from_millis(400), Duration::from_secs(15)),
            "Algorithm 2 must stop talking"
        );
        cluster.shutdown();
    }

    #[test]
    fn lossy_cluster_still_delivers() {
        let cluster =
            UrbCluster::spawn(ClusterConfig::new(4, Algorithm::Majority).loss(0.3).seed(9));
        let tag = cluster
            .broadcast(2, Payload::from("through the noise"))
            .unwrap();
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(20));
        assert_eq!(who.len(), 4, "fairness beats 30% loss");
        cluster.shutdown();
    }

    #[test]
    fn crashed_process_stops_accepting() {
        let cluster = UrbCluster::spawn(ClusterConfig::new(3, Algorithm::Majority));
        cluster.crash(1);
        std::thread::sleep(Duration::from_millis(50));
        assert!(cluster.broadcast(1, Payload::from("x")).is_none());
        assert!(cluster.registry.is_crashed(1));
        // The rest of the system keeps working (2 of 3 is a majority).
        let tag = cluster.broadcast(0, Payload::from("still alive")).unwrap();
        let who = cluster.await_delivery_everywhere(tag, Duration::from_secs(10));
        assert_eq!(who, vec![0, 2]);
        cluster.shutdown();
    }
}
