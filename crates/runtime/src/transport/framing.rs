//! Stream framing for the TCP transport: length-prefixed frames and
//! read-side reassembly across arbitrary byte boundaries.
//!
//! The in-process wire plane moves encoded [`urb_types::MuxBatch`] frames
//! as discrete channel messages; a TCP stream has no message boundaries,
//! so every frame crosses the socket as a 4-byte big-endian length prefix
//! followed by the frame's own bytes (whose *internal* layout is exactly
//! the codec of DESIGN.md §10/§12 — the transport never re-encodes).
//!
//! [`FrameReassembler`] is the read side: feed it whatever chunk sizes
//! `read(2)` happens to return — including chunks that end mid-prefix or
//! mid-frame — and it yields the exact frame sequence the peer wrote.
//! Corrupt prefixes (zero length, or a length above the configured cap)
//! surface as a typed [`FrameStreamError`]; the connection owner drops
//! the stream rather than guessing at resynchronization.

use bytes::Bytes;
use std::fmt;

/// Hard ceiling on a single frame's length, bytes (16 MiB). A prefix
/// above this is treated as stream corruption, not as a giant frame: no
/// healthy step emits frames anywhere near it, and accepting one would
/// let a corrupt or malicious prefix pin a connection's memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Typed errors of the stream framing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameStreamError {
    /// A length prefix announced zero bytes. Every valid frame carries at
    /// least its codec tag byte, so a zero length is corruption.
    EmptyFrame,
    /// A length prefix exceeded the reassembler's cap.
    FrameTooLarge {
        /// The announced length.
        len: usize,
        /// The configured ceiling.
        max: usize,
    },
}

impl fmt::Display for FrameStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameStreamError::EmptyFrame => write!(f, "zero-length frame prefix"),
            FrameStreamError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameStreamError {}

/// Appends `frame` to `out` in stream framing (length prefix + bytes) —
/// the write side, shared by the writer threads and the tests.
pub fn write_stream_frame(frame: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
    out.extend_from_slice(frame);
}

/// Incremental frame reassembly over a byte stream.
///
/// Bytes go in via [`push`](FrameReassembler::push) in whatever chunks
/// the socket produced; complete frames come out of
/// [`next_frame`](FrameReassembler::next_frame). Consumed bytes are
/// compacted away lazily, so steady-state reassembly reuses one buffer.
#[derive(Debug)]
pub struct FrameReassembler {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames.
    pos: usize,
    max_frame: usize,
}

impl Default for FrameReassembler {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReassembler {
    /// A reassembler with the default [`MAX_FRAME_LEN`] cap.
    pub fn new() -> Self {
        Self::with_max_frame(MAX_FRAME_LEN)
    }

    /// A reassembler with an explicit frame-length cap (tests use small
    /// caps to exercise the corruption path cheaply).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameReassembler {
            buf: Vec::new(),
            pos: 0,
            max_frame,
        }
    }

    /// Feeds one received chunk. Chunk boundaries are arbitrary: a chunk
    /// may end mid-length-prefix, mid-frame, or span several frames.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Yields the next complete frame, `Ok(None)` when more bytes are
    /// needed, or a typed error on a corrupt prefix (after which the
    /// stream is unusable — there is no resynchronization).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameStreamError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&avail[..4]);
        let len = u32::from_be_bytes(raw) as usize;
        if len == 0 {
            return Err(FrameStreamError::EmptyFrame);
        }
        if len > self.max_frame {
            return Err(FrameStreamError::FrameTooLarge {
                len,
                max: self.max_frame,
            });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&avail[4..4 + len]);
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// Bytes currently buffered and not yet yielded as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames_of(reasm: &mut FrameReassembler) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(f) = reasm.next_frame().expect("clean stream") {
            out.push(f.to_vec());
        }
        out
    }

    #[test]
    fn whole_stream_in_one_chunk() {
        let mut stream = Vec::new();
        write_stream_frame(b"abc", &mut stream);
        write_stream_frame(b"defgh", &mut stream);
        let mut r = FrameReassembler::new();
        r.push(&stream);
        assert_eq!(frames_of(&mut r), vec![b"abc".to_vec(), b"defgh".to_vec()]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembles_exactly() {
        let mut stream = Vec::new();
        write_stream_frame(b"x", &mut stream);
        write_stream_frame(&[0xAB; 300], &mut stream);
        let mut r = FrameReassembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            r.push(&[b]);
            got.extend(frames_of(&mut r));
        }
        assert_eq!(got, vec![b"x".to_vec(), vec![0xAB; 300]]);
    }

    #[test]
    fn zero_length_prefix_is_typed_corruption() {
        let mut r = FrameReassembler::new();
        r.push(&[0, 0, 0, 0]);
        assert_eq!(r.next_frame(), Err(FrameStreamError::EmptyFrame));
    }

    #[test]
    fn oversized_prefix_is_typed_corruption() {
        let mut r = FrameReassembler::with_max_frame(8);
        r.push(&9u32.to_be_bytes());
        assert_eq!(
            r.next_frame(),
            Err(FrameStreamError::FrameTooLarge { len: 9, max: 8 })
        );
    }

    #[test]
    fn incomplete_prefix_and_body_wait_for_more() {
        let mut r = FrameReassembler::new();
        r.push(&[0, 0]);
        assert_eq!(r.next_frame(), Ok(None), "mid-prefix");
        r.push(&[0, 3, b'a']);
        assert_eq!(r.next_frame(), Ok(None), "mid-body");
        r.push(b"bc");
        assert_eq!(r.next_frame().unwrap().unwrap().to_vec(), b"abc".to_vec());
    }
}
