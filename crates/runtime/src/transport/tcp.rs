//! The TCP mesh: one node's socket plane.
//!
//! Connection lifecycle (DESIGN.md §13):
//!
//! * **Inbound** — a non-blocking accept loop takes connections from any
//!   peer; each accepted stream gets a reader thread that reassembles
//!   length-prefixed frames ([`super::framing`]) and funnels them into
//!   the node's ingress channel. Inbound streams are *anonymous*: no
//!   handshake identifies the sender, because receivers in the paper's
//!   model must not know it. A corrupt stream (typed
//!   [`FrameStreamError`](super::FrameStreamError)) closes that
//!   connection; the peer's own writer will redial.
//! * **Outbound** — one writer thread per peer, fed by a bounded frame
//!   queue. The writer dials with capped exponential backoff (and
//!   redials the same way after any write error), so a peer that is slow
//!   to start, crashes, or restarts is re-attached automatically. While
//!   the peer is unreachable the queue fills and further frames are
//!   dropped and counted — bounded backpressure with exactly the
//!   fair-lossy-channel semantics the protocols are proved against
//!   (retransmission is the protocols' job, not the transport's).
//! * **Shutdown** — [`TcpMesh::shutdown`] raises a stop flag every
//!   thread polls, then joins accept, reader and writer threads.

use super::framing::{write_stream_frame, FrameReassembler};
use super::NetError;
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one node's socket plane.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Address to listen on (e.g. `127.0.0.1:0` for an ephemeral port).
    pub listen: String,
    /// Peer listen addresses to dial (the other nodes — never self).
    pub peers: Vec<String>,
    /// Per-peer writer queue depth; a full queue drops (and counts) the
    /// frame instead of blocking the protocol step.
    pub queue_depth: usize,
    /// Ceiling on a single received frame's length.
    pub max_frame: usize,
    /// First dial-retry delay; doubles per failure up to
    /// [`MeshConfig::dial_backoff_cap`].
    pub dial_backoff: Duration,
    /// Largest dial-retry delay.
    pub dial_backoff_cap: Duration,
}

impl MeshConfig {
    /// Defaults: 1024-frame queues, the [`super::MAX_FRAME_LEN`] cap,
    /// 10 ms initial dial backoff capped at 1 s.
    pub fn new(listen: impl Into<String>, peers: Vec<String>) -> Self {
        MeshConfig {
            listen: listen.into(),
            peers,
            queue_depth: 1024,
            max_frame: super::MAX_FRAME_LEN,
            dial_backoff: Duration::from_millis(10),
            dial_backoff_cap: Duration::from_secs(1),
        }
    }
}

/// Snapshot of a mesh's traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Inbound connections accepted.
    pub accepted: u64,
    /// Successful dials (first connections and reconnections).
    pub dials_ok: u64,
    /// Failed dial attempts (each is retried after backoff).
    pub dials_failed: u64,
    /// Successful dials that *re*-established a previously working
    /// connection (the crash/restart recovery path).
    pub reconnects: u64,
    /// Frames written to sockets.
    pub frames_sent: u64,
    /// Frames reassembled from sockets.
    pub frames_recv: u64,
    /// Bytes written (including length prefixes).
    pub bytes_sent: u64,
    /// Bytes read.
    pub bytes_recv: u64,
    /// Frames dropped because a peer's writer queue was full.
    pub dropped_backpressure: u64,
    /// Frames lost to a mid-write socket error (the connection is then
    /// redialled).
    pub send_failures: u64,
    /// Connections dropped on a corrupt frame stream.
    pub frame_errors: u64,
}

/// Shared atomic counters behind [`NetStats`].
#[derive(Default)]
struct NetCounters {
    accepted: AtomicU64,
    dials_ok: AtomicU64,
    dials_failed: AtomicU64,
    reconnects: AtomicU64,
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    dropped_backpressure: AtomicU64,
    send_failures: AtomicU64,
    frame_errors: AtomicU64,
}

impl NetCounters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            dials_ok: self.dials_ok.load(Ordering::Relaxed),
            dials_failed: self.dials_failed.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            dropped_backpressure: self.dropped_backpressure.load(Ordering::Relaxed),
            send_failures: self.send_failures.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

/// How often blocked threads wake to poll the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// One node's socket plane: listener + per-peer writers. See the module
/// docs for the lifecycle.
pub struct TcpMesh {
    local_addr: SocketAddr,
    peer_txs: Vec<Sender<Bytes>>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl TcpMesh {
    /// Binds the listener, spawns the accept loop and one writer per
    /// peer, and starts feeding reassembled inbound frames into
    /// `ingress`. Fails only on configuration/bind errors — an absent
    /// peer is dialled until it appears.
    pub fn start(config: MeshConfig, ingress: Sender<Bytes>) -> Result<TcpMesh, NetError> {
        // Resolve every peer up front: a bad address is a config error
        // (exit 2 at the CLI), not something to retry against.
        let mut peer_addrs = Vec::with_capacity(config.peers.len());
        for peer in &config.peers {
            let addr = peer
                .to_socket_addrs()
                .map_err(|e| NetError::Addr {
                    addr: peer.clone(),
                    reason: e.to_string(),
                })?
                .next()
                .ok_or_else(|| NetError::Addr {
                    addr: peer.clone(),
                    reason: "no address resolved".into(),
                })?;
            peer_addrs.push(addr);
        }
        let listener = TcpListener::bind(&config.listen).map_err(|e| NetError::Bind {
            addr: config.listen.clone(),
            reason: e.to_string(),
        })?;
        let local_addr = listener.local_addr().map_err(|e| NetError::Bind {
            addr: config.listen.clone(),
            reason: e.to_string(),
        })?;
        listener.set_nonblocking(true).map_err(|e| NetError::Bind {
            addr: config.listen.clone(),
            reason: e.to_string(),
        })?;

        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let mut threads = Vec::with_capacity(1 + peer_addrs.len());

        {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let max_frame = config.max_frame;
            threads.push(
                std::thread::Builder::new()
                    .name("urb-net-accept".into())
                    .spawn(move || accept_main(listener, ingress, stop, counters, max_frame))
                    .expect("spawn accept thread"),
            );
        }

        let mut peer_txs = Vec::with_capacity(peer_addrs.len());
        for (i, addr) in peer_addrs.into_iter().enumerate() {
            let (tx, rx) = bounded::<Bytes>(config.queue_depth.max(1));
            peer_txs.push(tx);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let backoff = (config.dial_backoff, config.dial_backoff_cap);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("urb-net-writer-{i}"))
                    .spawn(move || writer_main(addr, rx, stop, counters, backoff))
                    .expect("spawn writer thread"),
            );
        }

        Ok(TcpMesh {
            local_addr,
            peer_txs,
            stop,
            counters,
            threads,
        })
    }

    /// The bound listen address (concrete port even when configured as
    /// `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Enqueues `frame` to every peer's writer (refcount clones, no byte
    /// copies). A full queue drops that peer's copy and counts it —
    /// bounded backpressure, semantically a lossy-channel drop. The
    /// sender's own copy is the caller's business (the daemon loops it
    /// back directly, never through a socket, mirroring the in-process
    /// router's never-lost self-copy).
    pub fn broadcast(&self, frame: &Bytes) {
        for tx in &self.peer_txs {
            match tx.try_send(frame.clone()) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.counters
                        .dropped_backpressure
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {} // shutting down
            }
        }
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        self.counters.snapshot()
    }

    /// Stops and joins every transport thread. Idempotent; also run by
    /// `Drop`.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.peer_txs.clear(); // writers also see their queues close
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpMesh {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept loop: non-blocking accept, one reader thread per connection.
/// Reader threads are joined here before the accept loop exits, so
/// `TcpMesh::shutdown` observing this thread's exit means the whole
/// inbound side is quiet.
fn accept_main(
    listener: TcpListener,
    ingress: Sender<Bytes>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    max_frame: usize,
) {
    let readers: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                let ingress = ingress.clone();
                let stop = Arc::clone(&stop);
                let counters = Arc::clone(&counters);
                let handle = std::thread::Builder::new()
                    .name("urb-net-reader".into())
                    .spawn(move || reader_main(stream, ingress, stop, counters, max_frame))
                    .expect("spawn reader thread");
                readers.lock().push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL), // transient accept error
        }
    }
    for t in readers.into_inner() {
        let _ = t.join();
    }
}

/// Reader: reassemble length-prefixed frames from one inbound stream and
/// funnel them into the node's ingress channel. Exits on peer close,
/// stream corruption, stop, or ingress teardown.
fn reader_main(
    stream: TcpStream,
    ingress: Sender<Bytes>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    max_frame: usize,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reasm = FrameReassembler::with_max_frame(max_frame);
    let mut chunk = vec![0u8; 64 * 1024];
    while !stop.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                counters.bytes_recv.fetch_add(n as u64, Ordering::Relaxed);
                reasm.push(&chunk[..n]);
                loop {
                    match reasm.next_frame() {
                        Ok(Some(frame)) => {
                            counters.frames_recv.fetch_add(1, Ordering::Relaxed);
                            if ingress.send(frame).is_err() {
                                return; // node loop gone
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Corrupt stream: count it and drop the
                            // connection — the peer's writer redials and
                            // the protocols retransmit.
                            counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return, // reset/broken stream; peer will redial us
        }
    }
}

/// Writer: dial `addr` with capped exponential backoff, then drain the
/// bounded queue onto the socket; any write error drops the connection
/// (losing that frame — a channel drop) and returns to the dial loop.
fn writer_main(
    addr: SocketAddr,
    queue: Receiver<Bytes>,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    (backoff_initial, backoff_cap): (Duration, Duration),
) {
    let mut conn: Option<TcpStream> = None;
    let mut connected_once = false;
    let mut delay = backoff_initial;
    let mut scratch: Vec<u8> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        if conn.is_none() {
            match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    counters.dials_ok.fetch_add(1, Ordering::Relaxed);
                    if connected_once {
                        counters.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    connected_once = true;
                    delay = backoff_initial;
                    conn = Some(stream);
                }
                Err(_) => {
                    counters.dials_failed.fetch_add(1, Ordering::Relaxed);
                    // Sleep in stop-aware slices so shutdown never waits
                    // out a full capped delay.
                    let mut remaining = delay;
                    while remaining > Duration::ZERO && !stop.load(Ordering::Acquire) {
                        let slice = remaining.min(POLL);
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                    delay = (delay * 2).min(backoff_cap);
                    continue;
                }
            }
        }
        match queue.recv_timeout(POLL) {
            Ok(frame) => {
                scratch.clear();
                write_stream_frame(&frame, &mut scratch);
                let stream = conn.as_mut().expect("connected above");
                if stream.write_all(&scratch).is_err() {
                    // The frame is lost (lossy channel); redial with
                    // backoff for the ones that follow.
                    counters.send_failures.fetch_add(1, Ordering::Relaxed);
                    conn = None;
                } else {
                    counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                    counters
                        .bytes_sent
                        .fetch_add(scratch.len() as u64, Ordering::Relaxed);
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return, // mesh dropped
        }
    }
}
