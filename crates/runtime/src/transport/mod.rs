//! Real-socket transport for the runtime (DESIGN.md §13).
//!
//! The threaded runtime's router lanes move encoded
//! [`urb_types::MuxBatch`] frames between nodes over in-process channels;
//! this module moves the **same frames** over TCP instead, behind the
//! same `NodeInput::Net(Bytes)` boundary, so nothing above the transport
//! — engine, protocols, codec — changes when the cluster becomes N OS
//! processes on real sockets.
//!
//! Pieces:
//!
//! * [`framing`] — length-prefixed stream framing and read-side
//!   reassembly across arbitrary `read(2)` boundaries, with typed
//!   corruption errors;
//! * [`TcpMesh`] — one node's socket plane: a listener accepting
//!   anonymous inbound streams (receivers cannot learn who sent a frame,
//!   matching the paper's model), plus one outbound writer per peer with
//!   a bounded queue (backpressure drops, counted — a full queue behaves
//!   exactly like the fair-lossy channel the protocols already tolerate)
//!   and dial/redial with capped exponential backoff.
//!
//! The [`crate::daemon`] module composes a mesh with a
//! [`urb_engine::TopicEngine`] into the `urb node` process.

pub mod framing;
mod tcp;

pub use framing::{write_stream_frame, FrameReassembler, FrameStreamError, MAX_FRAME_LEN};
pub use tcp::{MeshConfig, NetStats, TcpMesh};

use std::fmt;

/// Errors establishing a node's socket plane. Everything here is a
/// configuration/environment failure (exit code 2 at the CLI), never a
/// runtime network condition — those are absorbed by retry and loss
/// tolerance.
#[derive(Debug)]
pub enum NetError {
    /// The listen address could not be bound (bad address or port in use).
    Bind {
        /// The address we tried to listen on.
        addr: String,
        /// The OS error text.
        reason: String,
    },
    /// A peer address did not parse/resolve.
    Addr {
        /// The offending address string.
        addr: String,
        /// The resolution error text.
        reason: String,
    },
    /// The node configuration is inconsistent (id out of range, wrong
    /// peer count, …).
    Config(String),
    /// The durable state directory could not be read or written
    /// (see [`crate::state::StateError`]).
    State(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Bind { addr, reason } => write!(f, "cannot listen on {addr}: {reason}"),
            NetError::Addr { addr, reason } => write!(f, "bad peer address {addr:?}: {reason}"),
            NetError::Config(msg) => write!(f, "invalid node config: {msg}"),
            NetError::State(msg) => write!(f, "durable state: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}
