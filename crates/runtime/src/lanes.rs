//! Per-lane topic directories (DESIGN.md §16).
//!
//! The router shards traffic by `lane = topic % lanes`. Before this
//! module, every multi-lane flush in the node loop recomputed that
//! membership per entry — and, worse, filtered the whole control list
//! once *per lane* (`O(lanes × controls)` with a fresh `Vec` allocated
//! per lane per flush). A [`LaneDirectory`] precomputes the owned-topic
//! map once, answers `topic → lane` with a single dense-array probe, and
//! owns reusable per-lane partitions so a flush is one allocation-free
//! pass over the outbox and one over the controls, regardless of lane
//! count.

use urb_types::{TopicControl, TopicId, WireMessage};

/// Dense-cache ceiling: topic ids below this bound get a precomputed
/// array entry (4 MiB at the bound — comfortably covering the ROADMAP's
/// 100k-topic target); ids above it fall back to computing the modulo,
/// which is always the same value the cache would hold.
const MAX_DENSE_LANE_MAP: usize = 1 << 20;

/// Precomputed `topic → lane` directory plus reusable per-lane egress
/// partitions — the runtime's half of the O(1) dispatch plane
/// (DESIGN.md §16).
#[derive(Debug)]
pub struct LaneDirectory {
    lanes: usize,
    /// `map[id] = id % lanes`, grown lazily as higher topic ids appear.
    map: Vec<u32>,
    /// Per-lane outbox partitions, drained by the flush and reused.
    outboxes: Vec<Vec<(TopicId, WireMessage)>>,
    /// Per-lane control partitions, ditto.
    controls: Vec<Vec<TopicControl>>,
}

impl LaneDirectory {
    /// Directory for `lanes` router lanes (clamped to at least one).
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        LaneDirectory {
            lanes,
            map: Vec::new(),
            outboxes: (0..lanes).map(|_| Vec::new()).collect(),
            controls: (0..lanes).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of lanes this directory shards across.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane owning `topic`: one array probe for ids in the dense
    /// range (growing the precomputed map on first sight of a higher id),
    /// a plain modulo beyond the cache ceiling. Either way the answer is
    /// exactly `topic % lanes`.
    #[inline]
    pub fn lane_of(&mut self, topic: TopicId) -> usize {
        let id = topic.0 as usize;
        if let Some(&lane) = self.map.get(id) {
            return lane as usize;
        }
        if id < MAX_DENSE_LANE_MAP {
            let new_len = (id + 1).next_power_of_two().min(MAX_DENSE_LANE_MAP);
            let lanes = self.lanes;
            self.map
                .extend((self.map.len()..new_len).map(|i| (i % lanes) as u32));
            return self.map[id] as usize;
        }
        id % self.lanes
    }

    /// True when `lane` owns `topic` — the membership predicate the flush
    /// used to recompute per frame.
    pub fn owns(&mut self, lane: usize, topic: TopicId) -> bool {
        self.lane_of(topic) == lane
    }

    /// Partitions one step's egress by owning lane in a single pass over
    /// the outbox and a single pass over the controls (the old flush
    /// rescanned the control list once per lane). Both inputs are drained;
    /// the per-lane partitions keep their capacity across flushes, so a
    /// steady-state flush allocates nothing.
    pub fn partition(
        &mut self,
        outbox: &mut Vec<(TopicId, WireMessage)>,
        controls: &mut Vec<TopicControl>,
    ) {
        for entry in outbox.drain(..) {
            let lane = self.lane_of(entry.0);
            self.outboxes[lane].push(entry);
        }
        for ctl in controls.drain(..) {
            let lane = self.lane_of(ctl.topic());
            self.controls[lane].push(ctl);
        }
    }

    /// Mutable access to one lane's partitions (outbox, controls) — the
    /// flush encodes from them and clears them in place.
    pub fn lane_parts_mut(
        &mut self,
        lane: usize,
    ) -> (&mut Vec<(TopicId, WireMessage)>, &mut Vec<TopicControl>) {
        (&mut self.outboxes[lane], &mut self.controls[lane])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_types::{Payload, Tag};

    fn msg(i: u128) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(i),
            payload: Payload::from("x"),
        }
    }

    #[test]
    fn lane_of_matches_modulo_across_all_ranges() {
        let mut dir = LaneDirectory::new(3);
        for id in [
            0u32,
            1,
            2,
            7,
            999,
            65_536,
            (1 << 20) as u32 - 1,
            1 << 20,
            u32::MAX,
        ] {
            assert_eq!(dir.lane_of(TopicId(id)), id as usize % 3, "id {id}");
        }
        // Single-lane clamp: everything maps to lane 0.
        let mut one = LaneDirectory::new(0);
        assert_eq!(one.lanes(), 1);
        assert_eq!(one.lane_of(TopicId(12345)), 0);
    }

    #[test]
    fn partition_is_one_pass_and_preserves_order() {
        let mut dir = LaneDirectory::new(2);
        let mut outbox = vec![
            (TopicId(0), msg(1)),
            (TopicId(1), msg(2)),
            (TopicId(2), msg(3)),
            (TopicId(3), msg(4)),
        ];
        let mut controls = vec![
            TopicControl::Retire { topic: TopicId(4) },
            TopicControl::Subscribe { topic: TopicId(5) },
        ];
        dir.partition(&mut outbox, &mut controls);
        assert!(outbox.is_empty() && controls.is_empty(), "inputs drained");
        let (lane0, ctl0) = dir.lane_parts_mut(0);
        assert_eq!(
            lane0.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![TopicId(0), TopicId(2)]
        );
        assert_eq!(ctl0, &vec![TopicControl::Retire { topic: TopicId(4) }]);
        lane0.clear();
        ctl0.clear();
        let (lane1, ctl1) = dir.lane_parts_mut(1);
        assert_eq!(
            lane1.iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![TopicId(1), TopicId(3)]
        );
        assert_eq!(ctl1, &vec![TopicControl::Subscribe { topic: TopicId(5) }]);
    }

    #[test]
    fn partitions_keep_capacity_across_flushes() {
        let mut dir = LaneDirectory::new(2);
        let mut outbox = vec![(TopicId(0), msg(1)), (TopicId(2), msg(2))];
        let mut controls = Vec::new();
        dir.partition(&mut outbox, &mut controls);
        let cap_before = {
            let (lane0, _) = dir.lane_parts_mut(0);
            let cap = lane0.capacity();
            lane0.clear();
            cap
        };
        let mut outbox = vec![(TopicId(0), msg(3)), (TopicId(2), msg(4))];
        dir.partition(&mut outbox, &mut controls);
        let (lane0, _) = dir.lane_parts_mut(0);
        assert_eq!(lane0.len(), 2);
        assert!(lane0.capacity() >= cap_before, "no reallocation churn");
    }
}
