//! The per-process node thread — a thin adapter over [`urb_engine`].
//!
//! Each node owns one [`NodeEngine`] (protocol state machine + RNG +
//! counters) and loops over a single funnelled input channel carrying both
//! network batches and control commands, plus a wall-clock tick deadline
//! for Task-1 sweeps. The failure-detector snapshot is read from the
//! shared [`MembershipRegistry`](crate::MembershipRegistry) immediately
//! before every protocol step, matching the paper's read-only-variable
//! semantics; the step itself is `urb_engine::drive_step` — the same code
//! path the simulator and the test harness execute.
//!
//! Outbound traffic uses the **wire plane** (DESIGN.md §10): everything
//! one step emitted leaves as a single encoded batch frame, produced
//! through the zero-copy codec into a pooled buffer
//! (`StepBuffers::take_wire_frame`) and decoded on arrival with shared
//! payloads (`NodeEngine::receive_frame`). Router and channel costs scale
//! with protocol steps rather than messages; encoding into the pooled
//! scratch allocates nothing, and the one remaining allocation is
//! per-*frame*, never per-message: sealing the scratch into the
//! refcounted `Bytes` the frame must travel as (the copy below).

use crate::registry::MembershipRegistry;
use crate::{Command, NodeInput};
use bytes::Bytes;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_engine::{NodeEngine, StepBuffers, StepInput};
use urb_types::{BufPool, Delivery, SplitMix64};

/// Everything a node thread needs at spawn time.
pub(crate) struct NodeSetup {
    pub pid: usize,
    pub algorithm: Algorithm,
    pub n: usize,
    pub seed: u64,
    pub tick_interval: Duration,
    /// Funnelled inputs: network batches from the router and commands from
    /// the cluster handle share one FIFO (this is also what lets the node
    /// block on a single receive with a tick deadline).
    pub inputs: Receiver<NodeInput>,
    /// Crash-stop flag, raised by the cluster handle *before* it enqueues
    /// the wake-up command. Checked on every loop iteration so a crash
    /// halts the node within one step even when `inputs` holds a deep
    /// network backlog.
    pub stop: Arc<AtomicBool>,
    pub egress: Sender<(usize, Bytes)>,
    pub deliveries: Sender<Delivery>,
    pub registry: Arc<MembershipRegistry>,
    /// Cluster-shared frame-buffer pool (encode scratch returns here).
    pub pool: BufPool,
}

/// Spawns one node thread.
pub(crate) fn spawn_node(setup: NodeSetup) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("urb-node-{}", setup.pid))
        .spawn(move || node_main(setup))
        .expect("spawn node thread")
}

fn node_main(setup: NodeSetup) {
    let NodeSetup {
        pid,
        algorithm,
        n,
        seed,
        tick_interval,
        inputs,
        stop,
        egress,
        deliveries,
        registry,
        pool,
    } = setup;
    let mut engine = NodeEngine::new(
        algorithm.instantiate(n),
        SplitMix64::new(seed ^ 0xB07B_0B00 ^ (pid as u64) << 32),
    );
    let mut buf = StepBuffers::new();
    let mut next_tick = Instant::now() + tick_interval;

    loop {
        // Crash-stop beats anything still queued: a crashed process
        // executes nothing further, regardless of input backlog.
        if stop.load(Ordering::Acquire) {
            return;
        }
        let timeout = next_tick.saturating_duration_since(Instant::now());
        match inputs.recv_timeout(timeout) {
            Ok(NodeInput::Cmd(Command::Broadcast(payload, reply))) => {
                let snapshot = registry.snapshot(pid, Instant::now());
                let tag = engine.step(StepInput::Broadcast(payload), &snapshot, &mut buf);
                let _ = reply.send(tag.expect("urb_broadcast assigns a tag"));
            }
            Ok(NodeInput::Cmd(Command::Crash | Command::Shutdown)) => {
                // Crash-stop: drop everything on the floor and exit. (The
                // input sender side survives in the router/cluster, which
                // treat the closed channel as a dead destination.)
                return;
            }
            Ok(NodeInput::Net(frame)) => {
                let registry = &registry;
                engine
                    .receive_frame(&frame, &mut buf, |_| registry.snapshot(pid, Instant::now()))
                    .expect("malformed frame from router — codec bug");
            }
            Err(RecvTimeoutError::Timeout) => {
                let snapshot = registry.snapshot(pid, Instant::now());
                engine.step(StepInput::Tick, &snapshot, &mut buf);
                next_tick = Instant::now() + tick_interval;
            }
            Err(RecvTimeoutError::Disconnected) => return, // cluster gone
        }

        // Flush what the step produced: one encoded wire frame out
        // (pooled scratch, sealed into refcounted bytes), deliveries up.
        if let Some(scratch) = buf.take_wire_frame(&pool) {
            let frame = Bytes::copy_from_slice(&scratch);
            drop(scratch); // encode buffer back to the pool
            if egress.send((pid, frame)).is_err() {
                return; // router gone — cluster shutting down
            }
        }
        for d in buf.deliveries.drain(..) {
            let _ = deliveries.send(d);
        }
    }
}
