//! The per-process node thread — a thin adapter over [`urb_engine`]'s
//! topic plane.
//!
//! Each node owns one [`TopicEngine`] (one protocol instance per topic,
//! all sharing the node's RNG stream and counters) and loops over a
//! single funnelled input channel carrying both network frames and
//! control commands, plus a wall-clock tick deadline for Task-1 sweeps
//! (one node tick sweeps **every** topic instance). The failure-detector
//! snapshot is read from the shared
//! [`MembershipRegistry`](crate::MembershipRegistry) immediately before
//! every protocol step — detectors observe processes, not topics, so one
//! snapshot serves a whole multi-topic sweep the same way the simulator
//! takes one per step.
//!
//! Outbound traffic uses the **sharded wire plane** (DESIGN.md §12):
//! everything one step emitted — across every topic — is partitioned by
//! router lane (`lane = topic % lanes`) and leaves as one encoded
//! multiplexed frame per lane with traffic, produced through the
//! zero-copy codec into a pooled buffer and decoded on arrival with
//! shared payloads (`TopicEngine::receive_mux_frame`). Router and
//! channel costs scale with protocol steps and lanes, never with topic
//! count times messages.

use crate::registry::MembershipRegistry;
use crate::{Command, NodeInput};
use bytes::Bytes;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_engine::{MuxBuffers, StepInput, TopicEngine};
use urb_types::{encode_mux_frame_into, BufPool, Delivery, SplitMix64, TopicControl, TopicId};

/// Applies one lifecycle control operation to a node's engine (DESIGN.md
/// §15). Returns `true` when the engine's state actually changed — the
/// gossip-forwarding predicate: every driver (threaded node, daemon)
/// re-gossips a control exactly when applying it changed something, so
/// the flood over an idempotent operation terminates at the first node
/// that already knew.
pub(crate) fn apply_control(engine: &mut TopicEngine, n: usize, ctl: TopicControl) -> bool {
    match ctl {
        TopicControl::Create {
            topic,
            algorithm,
            param,
        } => match Algorithm::from_wire(algorithm, param) {
            Some(alg) => engine.create_topic(topic, alg.instantiate(n)),
            // Unknown algorithm code (newer peer): refuse locally and do
            // not forward — never instantiate state we cannot run.
            None => false,
        },
        TopicControl::Retire { topic } => engine.retire_topic(topic),
        TopicControl::Subscribe { topic } => engine.subscribe(topic),
        TopicControl::Unsubscribe { topic } => engine.unsubscribe(topic),
    }
}

/// Drains the controls a received frame surfaced into `mux.controls`,
/// applies each, and pushes back exactly those that changed local state —
/// which [`MuxBuffers::take_mux_frame`] then rides on the next outgoing
/// frame (gossip onward). Returns how many controls changed state.
pub(crate) fn apply_surfaced_controls(
    engine: &mut TopicEngine,
    n: usize,
    mux: &mut MuxBuffers,
    scratch: &mut Vec<TopicControl>,
) -> usize {
    scratch.clear();
    scratch.append(&mut mux.controls);
    let mut changed = 0;
    for &ctl in scratch.iter() {
        if apply_control(engine, n, ctl) {
            mux.controls.push(ctl);
            changed += 1;
        }
    }
    changed
}

/// Everything a node thread needs at spawn time.
pub(crate) struct NodeSetup {
    pub pid: usize,
    pub algorithm: Algorithm,
    pub n: usize,
    pub topics: u32,
    pub seed: u64,
    pub tick_interval: Duration,
    /// Funnelled inputs: network frames from the router lanes and
    /// commands from the cluster handle share one FIFO (this is also what
    /// lets the node block on a single receive with a tick deadline).
    pub inputs: Receiver<NodeInput>,
    /// Crash-stop flag, raised by the cluster handle *before* it enqueues
    /// the wake-up command. Checked on every loop iteration so a crash
    /// halts the node within one step even when `inputs` holds a deep
    /// network backlog.
    pub stop: Arc<AtomicBool>,
    /// One egress sender per router lane; a frame for topic `t` goes to
    /// lane `t % lanes`.
    pub egress: Vec<Sender<(usize, Bytes)>>,
    pub deliveries: Sender<(TopicId, Delivery)>,
    pub registry: Arc<MembershipRegistry>,
    /// Cluster-shared frame-buffer pool (encode scratch returns here).
    pub pool: BufPool,
}

/// Spawns one node thread.
pub(crate) fn spawn_node(setup: NodeSetup) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("urb-node-{}", setup.pid))
        .spawn(move || node_main(setup))
        .expect("spawn node thread")
}

fn node_main(setup: NodeSetup) {
    let NodeSetup {
        pid,
        algorithm,
        n,
        topics,
        seed,
        tick_interval,
        inputs,
        stop,
        egress,
        deliveries,
        registry,
        pool,
    } = setup;
    let mut engine = TopicEngine::new(
        (0..topics.max(1))
            .map(|_| algorithm.instantiate(n))
            .collect(),
        SplitMix64::new(seed ^ 0xB07B_0B00 ^ (pid as u64) << 32),
    );
    let mut mux = MuxBuffers::new();
    // Per-lane topic directory: precomputed `topic → lane` map plus
    // reusable per-lane egress partitions (DESIGN.md §16).
    let lanes = egress.len().max(1);
    let mut lane_dir = crate::lanes::LaneDirectory::new(lanes);
    let mut control_scratch: Vec<TopicControl> = Vec::new();
    let mut next_tick = Instant::now() + tick_interval;

    loop {
        // Crash-stop beats anything still queued: a crashed process
        // executes nothing further, regardless of input backlog.
        if stop.load(Ordering::Acquire) {
            return;
        }
        mux.clear();
        let timeout = next_tick.saturating_duration_since(Instant::now());
        match inputs.recv_timeout(timeout) {
            Ok(NodeInput::Cmd(Command::Broadcast(topic, payload, reply))) => {
                // Refused invocation (DESIGN.md §15): broadcasts land
                // only on live instances. A retired, draining or
                // never-created topic answers `None` instead of
                // panicking — the client decides what that means.
                if engine.is_live(topic) {
                    let snapshot = registry.snapshot(pid, Instant::now());
                    let tag =
                        engine.step_mux(topic, StepInput::Broadcast(payload), &snapshot, &mut mux);
                    let _ = reply.send(Some(tag.expect("urb_broadcast assigns a tag")));
                } else {
                    let _ = reply.send(None);
                }
            }
            Ok(NodeInput::Cmd(Command::Control(ctl, reply))) => {
                // Apply locally; on change, ride the control on the next
                // outgoing frame so the rest of the cluster converges
                // (idempotent flood — see `apply_control`).
                let changed = apply_control(&mut engine, n, ctl);
                if changed {
                    mux.controls.push(ctl);
                }
                let _ = reply.send(changed);
            }
            Ok(NodeInput::Cmd(Command::Crash | Command::Shutdown)) => {
                // Crash-stop: drop everything on the floor and exit. (The
                // input sender side survives in the router/cluster, which
                // treat the closed channel as a dead destination.)
                return;
            }
            Ok(NodeInput::Net(frame)) => {
                let registry = &registry;
                engine
                    .receive_mux_frame(&frame, &mut mux, |_, _| {
                        registry.snapshot(pid, Instant::now())
                    })
                    .expect("malformed frame from router — codec bug");
                // Lifecycle gossip: apply what the frame's control
                // section carried; whatever changed state is pushed back
                // into `mux.controls` and forwarded on the flush below.
                apply_surfaced_controls(&mut engine, n, &mut mux, &mut control_scratch);
            }
            Err(RecvTimeoutError::Timeout) => {
                let snapshot = registry.snapshot(pid, Instant::now());
                engine.tick_all(&snapshot, &mut mux);
                // Ticks are the reap points (the quiescence rule):
                // draining instances free their state here.
                engine.reap_drained(&snapshot);
                next_tick = Instant::now() + tick_interval;
            }
            Err(RecvTimeoutError::Disconnected) => return, // cluster gone
        }

        // Flush what the step produced: on a single-lane cluster the
        // whole mux outbox drains as one frame through the engine's own
        // zero-copy path; with several lanes it is partitioned by
        // `topic % lanes` and sealed as one frame per lane with traffic
        // (pooled scratch, refcounted bytes). Deliveries go up with
        // their topic tags either way.
        if lanes == 1 {
            if let Some(scratch) = mux.take_mux_frame(&pool) {
                let frame = Bytes::copy_from_slice(&scratch);
                drop(scratch); // encode buffer back to the pool
                if egress[0].send((pid, frame)).is_err() {
                    return; // router gone — cluster shutting down
                }
            }
        } else if !mux.outbox.is_empty() || !mux.controls.is_empty() {
            // One pass over the outbox and one over the controls: the
            // lane directory's precomputed map answers ownership per
            // entry (the old flush rescanned the control list per lane
            // and allocated a fresh Vec each time).
            lane_dir.partition(&mut mux.outbox, &mut mux.controls);
            for (lane, lane_tx) in egress.iter().enumerate() {
                let (outbox, lane_controls) = lane_dir.lane_parts_mut(lane);
                if outbox.is_empty() && lane_controls.is_empty() {
                    continue;
                }
                let mut scratch = pool.acquire();
                if lane_controls.is_empty() {
                    encode_mux_frame_into(outbox, &mut scratch);
                } else {
                    urb_types::encode_mux_frame_with_controls_into(
                        outbox,
                        lane_controls,
                        &mut scratch,
                    );
                }
                outbox.clear();
                lane_controls.clear();
                let frame = Bytes::copy_from_slice(&scratch);
                drop(scratch); // encode buffer back to the pool
                if lane_tx.send((pid, frame)).is_err() {
                    return; // router gone — cluster shutting down
                }
            }
        }
        for (topic, d) in mux.deliveries.drain(..) {
            let _ = deliveries.send((topic, d));
        }
    }
}
