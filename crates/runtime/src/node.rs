//! The per-process node thread — a thin adapter over [`urb_engine`]'s
//! topic plane.
//!
//! Each node owns one [`TopicEngine`] (one protocol instance per topic,
//! all sharing the node's RNG stream and counters) and loops over a
//! single funnelled input channel carrying both network frames and
//! control commands, plus a wall-clock tick deadline for Task-1 sweeps
//! (one node tick sweeps **every** topic instance). The failure-detector
//! snapshot is read from the shared
//! [`MembershipRegistry`](crate::MembershipRegistry) immediately before
//! every protocol step — detectors observe processes, not topics, so one
//! snapshot serves a whole multi-topic sweep the same way the simulator
//! takes one per step.
//!
//! Outbound traffic uses the **sharded wire plane** (DESIGN.md §12):
//! everything one step emitted — across every topic — is partitioned by
//! router lane (`lane = topic % lanes`) and leaves as one encoded
//! multiplexed frame per lane with traffic, produced through the
//! zero-copy codec into a pooled buffer and decoded on arrival with
//! shared payloads (`TopicEngine::receive_mux_frame`). Router and
//! channel costs scale with protocol steps and lanes, never with topic
//! count times messages.

use crate::registry::MembershipRegistry;
use crate::{Command, NodeInput};
use bytes::Bytes;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_engine::{MuxBuffers, StepInput, TopicEngine};
use urb_types::{encode_mux_frame_into, BufPool, Delivery, SplitMix64, TopicId};

/// Everything a node thread needs at spawn time.
pub(crate) struct NodeSetup {
    pub pid: usize,
    pub algorithm: Algorithm,
    pub n: usize,
    pub topics: u32,
    pub seed: u64,
    pub tick_interval: Duration,
    /// Funnelled inputs: network frames from the router lanes and
    /// commands from the cluster handle share one FIFO (this is also what
    /// lets the node block on a single receive with a tick deadline).
    pub inputs: Receiver<NodeInput>,
    /// Crash-stop flag, raised by the cluster handle *before* it enqueues
    /// the wake-up command. Checked on every loop iteration so a crash
    /// halts the node within one step even when `inputs` holds a deep
    /// network backlog.
    pub stop: Arc<AtomicBool>,
    /// One egress sender per router lane; a frame for topic `t` goes to
    /// lane `t % lanes`.
    pub egress: Vec<Sender<(usize, Bytes)>>,
    pub deliveries: Sender<(TopicId, Delivery)>,
    pub registry: Arc<MembershipRegistry>,
    /// Cluster-shared frame-buffer pool (encode scratch returns here).
    pub pool: BufPool,
}

/// Spawns one node thread.
pub(crate) fn spawn_node(setup: NodeSetup) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("urb-node-{}", setup.pid))
        .spawn(move || node_main(setup))
        .expect("spawn node thread")
}

fn node_main(setup: NodeSetup) {
    let NodeSetup {
        pid,
        algorithm,
        n,
        topics,
        seed,
        tick_interval,
        inputs,
        stop,
        egress,
        deliveries,
        registry,
        pool,
    } = setup;
    let mut engine = TopicEngine::new(
        (0..topics.max(1))
            .map(|_| algorithm.instantiate(n))
            .collect(),
        SplitMix64::new(seed ^ 0xB07B_0B00 ^ (pid as u64) << 32),
    );
    let mut mux = MuxBuffers::new();
    // Per-lane outbox partitions, reused across steps.
    let lanes = egress.len().max(1);
    let mut lane_outboxes: Vec<Vec<(TopicId, urb_types::WireMessage)>> =
        (0..lanes).map(|_| Vec::new()).collect();
    let mut next_tick = Instant::now() + tick_interval;

    loop {
        // Crash-stop beats anything still queued: a crashed process
        // executes nothing further, regardless of input backlog.
        if stop.load(Ordering::Acquire) {
            return;
        }
        mux.clear();
        let timeout = next_tick.saturating_duration_since(Instant::now());
        match inputs.recv_timeout(timeout) {
            Ok(NodeInput::Cmd(Command::Broadcast(topic, payload, reply))) => {
                let snapshot = registry.snapshot(pid, Instant::now());
                let tag =
                    engine.step_mux(topic, StepInput::Broadcast(payload), &snapshot, &mut mux);
                let _ = reply.send(tag.expect("urb_broadcast assigns a tag"));
            }
            Ok(NodeInput::Cmd(Command::Crash | Command::Shutdown)) => {
                // Crash-stop: drop everything on the floor and exit. (The
                // input sender side survives in the router/cluster, which
                // treat the closed channel as a dead destination.)
                return;
            }
            Ok(NodeInput::Net(frame)) => {
                let registry = &registry;
                engine
                    .receive_mux_frame(&frame, &mut mux, |_, _| {
                        registry.snapshot(pid, Instant::now())
                    })
                    .expect("malformed frame from router — codec bug");
            }
            Err(RecvTimeoutError::Timeout) => {
                let snapshot = registry.snapshot(pid, Instant::now());
                engine.tick_all(&snapshot, &mut mux);
                next_tick = Instant::now() + tick_interval;
            }
            Err(RecvTimeoutError::Disconnected) => return, // cluster gone
        }

        // Flush what the step produced: on a single-lane cluster the
        // whole mux outbox drains as one frame through the engine's own
        // zero-copy path; with several lanes it is partitioned by
        // `topic % lanes` and sealed as one frame per lane with traffic
        // (pooled scratch, refcounted bytes). Deliveries go up with
        // their topic tags either way.
        if lanes == 1 {
            if let Some(scratch) = mux.take_mux_frame(&pool) {
                let frame = Bytes::copy_from_slice(&scratch);
                drop(scratch); // encode buffer back to the pool
                if egress[0].send((pid, frame)).is_err() {
                    return; // router gone — cluster shutting down
                }
            }
        } else if !mux.outbox.is_empty() {
            for entry in mux.outbox.drain(..) {
                let lane = entry.0 .0 as usize % lanes;
                lane_outboxes[lane].push(entry);
            }
            for (lane, outbox) in lane_outboxes.iter_mut().enumerate() {
                if outbox.is_empty() {
                    continue;
                }
                let mut scratch = pool.acquire();
                encode_mux_frame_into(outbox, &mut scratch);
                outbox.clear();
                let frame = Bytes::copy_from_slice(&scratch);
                drop(scratch); // encode buffer back to the pool
                if egress[lane].send((pid, frame)).is_err() {
                    return; // router gone — cluster shutting down
                }
            }
        }
        for (topic, d) in mux.deliveries.drain(..) {
            let _ = deliveries.send((topic, d));
        }
    }
}
