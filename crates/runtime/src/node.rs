//! The per-process node thread.
//!
//! Each node owns one protocol state machine and loops over three event
//! sources: its network inbox, its command channel (broadcast / crash /
//! shutdown), and a wall-clock tick deadline for Task-1 sweeps. The
//! failure-detector snapshot is read from the shared
//! [`MembershipRegistry`](crate::MembershipRegistry) immediately before
//! every protocol step, matching the paper's read-only-variable semantics.

use crate::registry::MembershipRegistry;
use crate::Command;
use crossbeam_channel::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_types::{Context, Delivery, SplitMix64, WireMessage};

/// Everything a node thread needs at spawn time.
pub(crate) struct NodeSetup {
    pub pid: usize,
    pub algorithm: Algorithm,
    pub n: usize,
    pub seed: u64,
    pub tick_interval: Duration,
    pub inbox: Receiver<WireMessage>,
    pub commands: Receiver<Command>,
    pub egress: Sender<(usize, WireMessage)>,
    pub deliveries: Sender<Delivery>,
    pub registry: Arc<MembershipRegistry>,
}

/// Spawns one node thread.
pub(crate) fn spawn_node(setup: NodeSetup) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("urb-node-{}", setup.pid))
        .spawn(move || node_main(setup))
        .expect("spawn node thread")
}

fn node_main(setup: NodeSetup) {
    let NodeSetup {
        pid,
        algorithm,
        n,
        seed,
        tick_interval,
        inbox,
        commands,
        egress,
        deliveries,
        registry,
    } = setup;
    let mut proc = algorithm.instantiate(n);
    let mut rng = SplitMix64::new(seed ^ 0xB07B_0B00 ^ (pid as u64) << 32);
    let mut next_tick = Instant::now() + tick_interval;

    let mut outbox: Vec<WireMessage> = Vec::new();
    let mut delivered: Vec<Delivery> = Vec::new();

    loop {
        // Flush whatever the last step produced.
        for msg in outbox.drain(..) {
            if egress.send((pid, msg)).is_err() {
                return; // router gone — cluster shutting down
            }
        }
        for d in delivered.drain(..) {
            let _ = deliveries.send(d);
        }

        let now = Instant::now();
        let timeout = next_tick.saturating_duration_since(now);

        crossbeam_channel::select! {
            recv(commands) -> cmd => match cmd {
                Ok(Command::Broadcast(payload, reply)) => {
                    let snapshot = registry.snapshot(pid, Instant::now());
                    let mut ctx = Context::new(&mut rng, &snapshot, &mut outbox, &mut delivered);
                    let tag = proc.urb_broadcast(payload, &mut ctx);
                    let _ = reply.send(tag);
                }
                Ok(Command::Crash) | Ok(Command::Shutdown) | Err(_) => {
                    // Crash-stop: drop everything on the floor and exit.
                    // (The inbox sender side survives in the router, which
                    // treats the closed channel as a dead destination.)
                    return;
                }
            },
            recv(inbox) -> msg => {
                if let Ok(msg) = msg {
                    let snapshot = registry.snapshot(pid, Instant::now());
                    let mut ctx = Context::new(&mut rng, &snapshot, &mut outbox, &mut delivered);
                    proc.on_receive(msg, &mut ctx);
                }
            },
            default(timeout) => {
                let snapshot = registry.snapshot(pid, Instant::now());
                let mut ctx = Context::new(&mut rng, &snapshot, &mut outbox, &mut delivered);
                proc.on_tick(&mut ctx);
                next_tick = Instant::now() + tick_interval;
            },
        }
    }
}
