//! The `urb node` daemon: one OS process running one node of a
//! socket-distributed URB cluster (DESIGN.md §13).
//!
//! A daemon node is the [`crate::transport::TcpMesh`] socket plane
//! composed with the **same sans-io engine** every other driver uses
//! ([`urb_engine::TopicEngine`]): the node loop here is the threaded
//! runtime's node loop with the in-process router lanes swapped for real
//! sockets — protocol logic, codec and tick cadence are untouched, which
//! is exactly what the `drive_step` boundary was built to allow. The
//! loopback-parity suite (`crates/cli/tests/cluster.rs`) asserts the
//! payoff mechanically: the same seeded workload produces identical
//! per-topic delivery sets through [`crate::UrbCluster`] (threads +
//! channels) and through a cluster of these daemons (processes +
//! sockets).
//!
//! Determinism note: over real sockets, arrival order, timing and loss
//! are *not* reproducible — what stays deterministic given the config is
//! the workload (payload strings, per-node tag streams, FD labels) and,
//! because URB guarantees exactly-once delivery of every broadcast, the
//! resulting per-topic delivery **sets**. Those sets are the unit the
//! parity and fault-injection suites assert on.

use crate::state::StateDir;
use crate::transport::{MeshConfig, NetError, NetStats, TcpMesh};
use crate::MembershipRegistry;
use bytes::Bytes;
use crossbeam_channel::{unbounded, RecvTimeoutError};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};
use urb_core::Algorithm;
use urb_engine::{MuxBuffers, StepInput, TopicEngine};
use urb_types::{BufPool, Payload, SplitMix64, TopicControl, TopicId};

/// Configuration of one daemon node (the `urb node` subcommand's flags).
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's id, `0 <= id < n`.
    pub id: usize,
    /// Cluster size.
    pub n: usize,
    /// Protocol to run (shared by the whole cluster).
    pub algorithm: Algorithm,
    /// Concurrent URB instances (topics) per node.
    pub topics: u32,
    /// Cluster-wide seed: derives per-node tag streams, FD labels and
    /// the workload payloads, so every process agrees without talking.
    pub seed: u64,
    /// Broadcasts this node performs per topic at startup.
    pub msgs: usize,
    /// Listen addresses of **all** `n` nodes, in id order (node `i`
    /// listens on `addrs[i]` and dials the rest).
    pub addrs: Vec<String>,
    /// Optional listen-address override (defaults to `addrs[id]`; the
    /// port-in-use CLI tests point it at an occupied port).
    pub listen: Option<String>,
    /// Task-1 sweep period.
    pub tick_interval: Duration,
    /// Wall-clock budget for the whole run.
    pub run_for: Duration,
    /// How long to keep serving after meeting [`NodeConfig::expect`]
    /// (retransmissions for straggling peers).
    pub linger: Duration,
    /// Expected deliveries per topic; when set, the node exits complete
    /// once every topic reached it (plus linger), and incomplete at the
    /// deadline otherwise. `None` = run the full budget, always complete.
    pub expect: Option<usize>,
    /// Durable state directory (DESIGN.md §14). When set, every delivery
    /// is journaled, snapshots land periodically and at exit, and a
    /// restart recovers from disk: the engine restores its last snapshot
    /// (peers' retransmissions cover the gap), delivered sets lose
    /// nothing, and already-delivered own broadcasts are not re-issued.
    /// Unreadable state is a [`NetError::State`] (CLI exit 2).
    pub state_dir: Option<std::path::PathBuf>,
    /// How often to write a recovery point when `state_dir` is set.
    pub snapshot_interval: Duration,
}

impl NodeConfig {
    /// A config with the defaults the CLI uses: 20 ms ticks, 20 s budget,
    /// 500 ms linger, 1 broadcast per topic, 1 topic, no expectation.
    pub fn new(id: usize, n: usize, algorithm: Algorithm, addrs: Vec<String>) -> Self {
        NodeConfig {
            id,
            n,
            algorithm,
            topics: 1,
            seed: 0x5EED,
            msgs: 1,
            addrs,
            listen: None,
            tick_interval: Duration::from_millis(20),
            run_for: Duration::from_secs(20),
            linger: Duration::from_millis(500),
            expect: None,
            state_dir: None,
            snapshot_interval: Duration::from_millis(500),
        }
    }

    /// Checks internal consistency (id in range, one address per node).
    pub fn validate(&self) -> Result<(), NetError> {
        if self.n == 0 {
            return Err(NetError::Config("n must be at least 1".into()));
        }
        if self.id >= self.n {
            return Err(NetError::Config(format!(
                "id {} out of range for n = {}",
                self.id, self.n
            )));
        }
        if self.addrs.len() != self.n {
            return Err(NetError::Config(format!(
                "{} peer addresses for n = {} nodes",
                self.addrs.len(),
                self.n
            )));
        }
        if self.topics == 0 {
            return Err(NetError::Config("topics must be at least 1".into()));
        }
        Ok(())
    }
}

/// What one topic instance delivered over a daemon run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopicDeliveries {
    /// The topic.
    pub topic: TopicId,
    /// Delivered payloads as text, sorted (URB integrity makes this a
    /// set; sorting makes reports comparable across nodes and stacks).
    pub payloads: Vec<String>,
}

/// A daemon node's end-of-run report.
#[derive(Clone, Debug)]
pub struct NodeReport {
    /// The reporting node's id.
    pub id: usize,
    /// True when the node met its expectation (or had none).
    pub complete: bool,
    /// Per-topic delivery sets, ascending by topic.
    pub per_topic: Vec<TopicDeliveries>,
    /// Topics live at exit (dynamic control plane — DESIGN.md §15).
    pub topics_live: usize,
    /// Retired topic instances whose state was fully reclaimed.
    pub topics_reclaimed: u64,
    /// Socket-plane traffic counters.
    pub net: NetStats,
}

/// Sends one lifecycle control operation to a running daemon node at
/// `addr` (its listen address) as a one-shot client: connect, write one
/// length-prefixed control-only frame, close. The daemon applies the
/// control and gossips it to the rest of the cluster exactly like a
/// control received from a peer (idempotent flood — DESIGN.md §15).
/// This is what `urb topic create|retire|subscribe|unsubscribe` runs.
pub fn send_control(addr: &str, ctl: TopicControl) -> Result<(), NetError> {
    use std::io::Write;
    let mut frame = bytes::BytesMut::new();
    urb_types::encode_mux_frame_with_controls_into(&[], &[ctl], &mut frame);
    let mut wire = Vec::with_capacity(frame.len() + 4);
    crate::transport::write_stream_frame(&frame, &mut wire);
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| NetError::Config(format!("connect {addr}: {e}")))?;
    stream
        .write_all(&wire)
        .and_then(|()| stream.flush())
        .map_err(|e| NetError::Config(format!("send control to {addr}: {e}")))?;
    Ok(())
}

/// The payload node `node` broadcasts as its `i`-th message on `topic` —
/// one deterministic naming scheme shared by the daemons, the in-process
/// reference runs and the parity assertions, so delivery sets can be
/// compared across stacks as plain strings.
pub fn workload_payload(node: usize, topic: TopicId, i: usize) -> Payload {
    Payload::from(format!("n{node}.t{}.m{i}", topic.0).as_str())
}

/// The full per-topic payload set an `n`-node cluster broadcasting
/// `msgs` messages per node per topic is expected to deliver everywhere.
pub fn expected_payloads(n: usize, topic: TopicId, msgs: usize) -> BTreeSet<String> {
    (0..n)
        .flat_map(|node| (0..msgs).map(move |i| workload_payload(node, topic, i).as_text()))
        .collect()
}

/// Runs one daemon node to completion. Fails only on config/bind errors
/// ([`NetError`], CLI exit 2); network conditions during the run are
/// absorbed by the transport's retry/loss semantics and show up in the
/// report instead.
pub fn run_node(cfg: &NodeConfig) -> Result<NodeReport, NetError> {
    cfg.validate()?;
    let listen = cfg
        .listen
        .clone()
        .unwrap_or_else(|| cfg.addrs[cfg.id].clone());
    let peers: Vec<String> = cfg
        .addrs
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != cfg.id)
        .map(|(_, a)| a.clone())
        .collect();

    // Ingress funnel: socket readers and the node's own loopback copy
    // share one FIFO, the same `NodeInput::Net` shape the in-process
    // router feeds (commands don't exist here — a daemon's workload is
    // config, not RPC).
    let (ingress_tx, ingress_rx) = unbounded::<Bytes>();
    let mut mesh = TcpMesh::start(MeshConfig::new(listen, peers), ingress_tx.clone())?;

    // Same engine construction as the threaded runtime's node thread:
    // same per-node RNG stream derivation, so a daemon node and an
    // in-process node with the same (seed, id) draw identical tags. The
    // registry is local but seed-derived, so every process in the
    // cluster serves identical all-alive FD views without coordination.
    let registry = MembershipRegistry::new(cfg.n, cfg.seed, Duration::from_millis(500));
    let mut engine = TopicEngine::new(
        (0..cfg.topics.max(1))
            .map(|_| cfg.algorithm.instantiate(cfg.n))
            .collect(),
        SplitMix64::new(cfg.seed ^ 0xB07B_0B00 ^ (cfg.id as u64) << 32),
    );
    let mut mux = MuxBuffers::new();
    let pool = BufPool::default();
    let mut control_scratch: Vec<TopicControl> = Vec::new();
    let mut delivered: Vec<BTreeSet<String>> = vec![BTreeSet::new(); cfg.topics.max(1) as usize];

    // Durable state (DESIGN.md §14): recover before the first broadcast.
    // The engine restarts from its last recovery point — URB's fair-lossy
    // foundation makes a stale engine indistinguishable from lost
    // messages, so peers' retransmissions refill the gap — while the
    // delivered sets (snapshot + journal replay) lose nothing.
    let state_err = |e: crate::state::StateError| NetError::State(e.to_string());
    let state_err_snapshot =
        |e: urb_types::snapshot::SnapshotError| NetError::State(format!("snapshot: {e}"));
    let mut state = match &cfg.state_dir {
        Some(dir) => {
            let (state, recovered) = StateDir::open(dir).map_err(state_err)?;
            if let Some(blob) = &recovered.engine {
                engine
                    .restore_snapshot(blob)
                    .map_err(|e| NetError::State(format!("snapshot.bin does not restore: {e}")))?;
            }
            for (t, set) in recovered.delivered.into_iter().enumerate() {
                if let Some(slot) = delivered.get_mut(t) {
                    *slot = set;
                }
            }
            Some(state)
        }
        None => None,
    };

    // Drains one step's deliveries into the per-topic sets, journaling
    // each *new* payload before it is reported anywhere (the journal
    // must never lag the sets). The sets grow on demand: dynamically
    // created topics (DESIGN.md §15) deliver under ids beyond the dense
    // configured range.
    fn record_deliveries(
        mux: &mut MuxBuffers,
        delivered: &mut Vec<BTreeSet<String>>,
        state: &mut Option<StateDir>,
    ) -> Result<(), NetError> {
        for (t, d) in mux.deliveries.drain(..) {
            let text = d.payload.as_text();
            if delivered.len() <= t.0 as usize {
                delivered.resize(t.0 as usize + 1, BTreeSet::new());
            }
            if delivered[t.0 as usize].insert(text.clone()) {
                if let Some(s) = state.as_mut() {
                    s.append_delivery(t, &text)
                        .map_err(|e| NetError::State(e.to_string()))?;
                }
            }
        }
        Ok(())
    }

    // Flush one step's mux outbox: peers get the frame over sockets,
    // the node itself gets it through its own ingress FIFO — the
    // never-lost self-copy of the broadcast primitive, without a socket.
    let flush = |mux: &mut MuxBuffers, mesh: &TcpMesh| {
        if let Some(scratch) = mux.take_mux_frame(&pool) {
            let frame = Bytes::copy_from_slice(&scratch);
            drop(scratch); // encode buffer back to the pool
            mesh.broadcast(&frame);
            let _ = ingress_tx.send(frame);
        }
    };

    // Startup workload: all broadcasts happen before any ingress is
    // consumed, so the node's tag draws are a deterministic RNG prefix —
    // a restarted node re-broadcasts the *identical* (tag, payload)
    // messages, which URB integrity treats as retransmissions.
    for topic in 0..cfg.topics.max(1) {
        for i in 0..cfg.msgs {
            let payload = workload_payload(cfg.id, TopicId(topic), i);
            // A recovered node does not re-issue broadcasts it already
            // delivered: its restored engine (and its peers) still hold
            // and retransmit them, and a fresh tag draw here would
            // duplicate the message under a second identity.
            if delivered[topic as usize].contains(&payload.as_text()) {
                continue;
            }
            mux.clear();
            let snapshot = registry.snapshot(cfg.id, Instant::now());
            engine.step_mux(
                TopicId(topic),
                StepInput::Broadcast(payload),
                &snapshot,
                &mut mux,
            );
            record_deliveries(&mut mux, &mut delivered, &mut state)?;
            flush(&mut mux, &mesh);
        }
    }

    let deadline = Instant::now() + cfg.run_for;
    let mut next_tick = Instant::now() + cfg.tick_interval;
    let mut next_snapshot = Instant::now() + cfg.snapshot_interval;
    // Set once every topic meets the expectation; the node keeps
    // serving (acks, retransmissions) until it passes.
    let mut linger_until: Option<Instant> = None;
    let mut complete = cfg.expect.is_none();

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if let Some(t) = linger_until {
            if now >= t {
                complete = true;
                break;
            }
        }
        mux.clear();
        let timeout = next_tick
            .min(deadline)
            .saturating_duration_since(now)
            .min(Duration::from_millis(50));
        match ingress_rx.recv_timeout(timeout) {
            Ok(frame) => {
                let registry = &registry;
                let id = cfg.id;
                if engine
                    .receive_mux_frame(&frame, &mut mux, |_, _| {
                        registry.snapshot(id, Instant::now())
                    })
                    .is_err()
                {
                    // A peer sent a frame our codec rejects: drop it like
                    // a lost message (never panic on network input).
                    continue;
                }
                // Lifecycle gossip (DESIGN.md §15): apply what the
                // frame's control section carried — peer gossip or a
                // one-shot `urb topic` client — and push back exactly
                // what changed state, which the flush below forwards.
                crate::node::apply_surfaced_controls(
                    &mut engine,
                    cfg.n,
                    &mut mux,
                    &mut control_scratch,
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= next_tick {
                    let snapshot = registry.snapshot(cfg.id, Instant::now());
                    engine.tick_all(&snapshot, &mut mux);
                    // Ticks are the reap points (the quiescence rule):
                    // draining instances free their state here.
                    engine.reap_drained(&snapshot);
                    next_tick = Instant::now() + cfg.tick_interval;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break, // cannot happen: we hold a sender
        }
        record_deliveries(&mut mux, &mut delivered, &mut state)?;
        flush(&mut mux, &mesh);
        if let Some(s) = state.as_mut() {
            if Instant::now() >= next_snapshot {
                let blob = engine.save_snapshot().map_err(state_err_snapshot)?;
                s.write_snapshot(&blob, &delivered).map_err(state_err)?;
                next_snapshot = Instant::now() + cfg.snapshot_interval;
            }
        }
        if let Some(expect) = cfg.expect {
            if linger_until.is_none() && delivered.iter().all(|set| set.len() >= expect) {
                linger_until = Some(Instant::now() + cfg.linger);
            }
        }
    }

    // Final recovery point so a clean exit restarts exactly where it
    // stopped (no journal replay needed).
    if let Some(s) = state.as_mut() {
        let blob = engine.save_snapshot().map_err(state_err_snapshot)?;
        s.write_snapshot(&blob, &delivered).map_err(state_err)?;
    }

    mesh.shutdown();
    let topics_live = engine.live_topics().count();
    let topics_reclaimed = engine.counters().topics_reclaimed;
    Ok(NodeReport {
        id: cfg.id,
        complete,
        topics_live,
        topics_reclaimed,
        per_topic: delivered
            .into_iter()
            .enumerate()
            .map(|(t, set)| TopicDeliveries {
                topic: TopicId(t as u32),
                payloads: set.into_iter().collect(),
            })
            .collect(),
        net: mesh_stats_of(&mesh),
    })
}

/// Reads the final counters (after shutdown, so nothing is in flight).
fn mesh_stats_of(mesh: &TcpMesh) -> NetStats {
    mesh.stats()
}

/// Runs the identical workload through the **in-process** threaded
/// runtime ([`crate::UrbCluster`]) and returns the per-topic delivery
/// sets of every node: `sets[topic][pid]`. This is the reference side of
/// the loopback-parity check — same engine, same seeds, same workload,
/// channels instead of sockets.
pub fn run_reference(
    n: usize,
    algorithm: Algorithm,
    topics: u32,
    msgs: usize,
    seed: u64,
    timeout: Duration,
) -> Vec<Vec<BTreeSet<String>>> {
    let cluster = crate::UrbCluster::spawn(
        crate::ClusterConfig::new(n, algorithm)
            .topics(topics)
            .seed(seed),
    );
    let mut tags = Vec::new();
    for topic in 0..topics.max(1) {
        for i in 0..msgs {
            for pid in 0..n {
                if let Some(tag) = cluster.broadcast_on(
                    pid,
                    TopicId(topic),
                    workload_payload(pid, TopicId(topic), i),
                ) {
                    tags.push(tag);
                }
            }
        }
    }
    for tag in tags {
        cluster.await_delivery_everywhere(tag, timeout);
    }
    let sets = (0..topics.max(1))
        .map(|topic| {
            (0..n)
                .map(|pid| {
                    cluster
                        .delivery_log_on(pid, TopicId(topic))
                        .into_iter()
                        .map(|d| d.payload.as_text())
                        .collect()
                })
                .collect()
        })
        .collect();
    cluster.shutdown();
    sets
}
