//! Durable node state: atomic snapshots plus an append-only delivery
//! journal (DESIGN.md §14).
//!
//! A [`StateDir`] holds exactly two files:
//!
//! * `snapshot.bin` — the node's full recovery point: the engine's
//!   schema-versioned snapshot ([`urb_engine::TopicEngine::save_snapshot`])
//!   plus the per-topic delivered payload sets, wrapped in one more
//!   sealed envelope (magic + version + checksum — the same
//!   [`urb_types::snapshot`] framing end to end). Written via temp
//!   file, `fsync`, atomic rename — a crash mid-write leaves the
//!   previous snapshot intact.
//! * `journal.bin` — deliveries since the last snapshot, one
//!   length-prefixed checksummed record per delivery, appended with a
//!   single `write` each. The journal is truncated every time a new
//!   snapshot lands (the snapshot subsumes it).
//!
//! Recovery is snapshot + journal replay: the engine restarts from its
//! last snapshot (peers' retransmissions refill anything newer — URB is
//! built on fair-lossy channels, so "my state is a little stale" is
//! indistinguishable from "some messages were lost"), while the
//! delivered *sets* lose nothing because every delivery was journaled
//! before being reported. Corrupt or torn state is never guessed at:
//! every failure is a typed [`StateError`] and the daemon refuses to
//! start (CLI exit 2).

use std::collections::BTreeSet;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use urb_types::snapshot::{fnv1a, seal, unseal, SnapshotError, SnapshotReader, SnapshotWriter};
use urb_types::TopicId;

/// File name of the atomic recovery point inside a state dir.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// File name of the append-only delivery journal inside a state dir.
pub const JOURNAL_FILE: &str = "journal.bin";

/// Why durable state could not be read or written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// An OS-level file operation failed.
    Io {
        /// The file (or directory) involved.
        path: String,
        /// The OS error text.
        reason: String,
    },
    /// `snapshot.bin` exists but does not decode (bad magic, version,
    /// checksum, or malformed body).
    Snapshot(SnapshotError),
    /// `journal.bin` ends mid-record: the length prefix promises more
    /// bytes than the file holds.
    JournalTruncated {
        /// Byte offset of the torn record.
        offset: u64,
    },
    /// A journal record's checksum does not match its body.
    JournalCorrupt {
        /// Byte offset of the bad record.
        offset: u64,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io { path, reason } => write!(f, "state io error on {path}: {reason}"),
            StateError::Snapshot(e) => write!(f, "snapshot.bin: {e}"),
            StateError::JournalTruncated { offset } => {
                write!(f, "journal.bin: truncated record at byte {offset}")
            }
            StateError::JournalCorrupt { offset } => {
                write!(f, "journal.bin: corrupt record at byte {offset}")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<SnapshotError> for StateError {
    fn from(e: SnapshotError) -> Self {
        StateError::Snapshot(e)
    }
}

/// What [`StateDir::open`] recovered from disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredState {
    /// The engine's sealed snapshot bytes from the last recovery point
    /// (`None` on a fresh dir): feed to
    /// [`urb_engine::TopicEngine::restore_snapshot`] on a freshly built
    /// same-config engine.
    pub engine: Option<Vec<u8>>,
    /// Per-topic delivered payload sets: the snapshot's sets plus every
    /// journaled delivery since. Indexed by `TopicId`.
    pub delivered: Vec<BTreeSet<String>>,
}

/// A node's durable state directory (see the module docs for the
/// layout). One instance owns the open journal handle; drop it before
/// reopening the same directory.
#[derive(Debug)]
pub struct StateDir {
    dir: PathBuf,
    journal: File,
}

fn io_err(path: &Path, e: std::io::Error) -> StateError {
    StateError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

impl StateDir {
    /// Opens (creating if needed) `dir` and recovers whatever state it
    /// holds. Any undecodable snapshot or journal is a hard error —
    /// never silently discarded.
    pub fn open(dir: &Path) -> Result<(StateDir, RecoveredState), StateError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let recovered = Self::recover(dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| io_err(&journal_path, e))?;
        Ok((
            StateDir {
                dir: dir.to_path_buf(),
                journal,
            },
            recovered,
        ))
    }

    /// Reads and validates a state directory without opening it for
    /// writing (the pure recovery half of [`StateDir::open`]).
    pub fn recover(dir: &Path) -> Result<RecoveredState, StateError> {
        let mut state = RecoveredState::default();
        let snap_path = dir.join(SNAPSHOT_FILE);
        match fs::read(&snap_path) {
            Ok(bytes) => {
                let body = unseal(&bytes)?;
                let mut r = SnapshotReader::new(body);
                state.engine = Some(r.get_bytes()?.to_vec());
                let topics = r.get_u64()? as usize;
                if topics > u32::MAX as usize {
                    return Err(SnapshotError::Malformed(format!(
                        "snapshot claims {topics} topics"
                    ))
                    .into());
                }
                for _ in 0..topics {
                    let count = r.get_u64()? as usize;
                    let mut set = BTreeSet::new();
                    for _ in 0..count {
                        set.insert(r.get_str()?.to_string());
                    }
                    state.delivered.push(set);
                }
                r.finish()?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&snap_path, e)),
        }
        let journal_path = dir.join(JOURNAL_FILE);
        match fs::read(&journal_path) {
            Ok(bytes) => Self::replay_journal(&bytes, &mut state.delivered)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&journal_path, e)),
        }
        Ok(state)
    }

    /// Replays journal bytes into the delivered sets. Record layout:
    /// `len: u32 LE` | `body` | `fnv1a(body): u64 LE`, body =
    /// `topic: u32 LE` | `payload len: u32 LE` | payload bytes.
    fn replay_journal(
        bytes: &[u8],
        delivered: &mut Vec<BTreeSet<String>>,
    ) -> Result<(), StateError> {
        let mut offset = 0usize;
        while offset < bytes.len() {
            let torn = |offset: usize| StateError::JournalTruncated {
                offset: offset as u64,
            };
            let rest = &bytes[offset..];
            if rest.len() < 4 {
                return Err(torn(offset));
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            if rest.len() < 4 + len + 8 {
                return Err(torn(offset));
            }
            let body = &rest[4..4 + len];
            let sum = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
            if fnv1a(body) != sum {
                return Err(StateError::JournalCorrupt {
                    offset: offset as u64,
                });
            }
            let mut r = SnapshotReader::new(body);
            let topic = r.get_u32()? as usize;
            let payload = r.get_str()?.to_string();
            r.finish()?;
            if delivered.len() <= topic {
                delivered.resize_with(topic + 1, BTreeSet::new);
            }
            delivered[topic].insert(payload);
            offset += 4 + len + 8;
        }
        Ok(())
    }

    /// Appends one delivery record to the journal (a single `write`, so
    /// a killed process leaves whole records behind). Call *before*
    /// acting on the delivery: the journal must never lag the sets.
    pub fn append_delivery(&mut self, topic: TopicId, payload: &str) -> Result<(), StateError> {
        let mut body = SnapshotWriter::new();
        body.put_u32(topic.0);
        body.put_str(payload);
        let body = body.into_body();
        let mut record = Vec::with_capacity(4 + body.len() + 8);
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&body);
        record.extend_from_slice(&fnv1a(&body).to_le_bytes());
        let journal_path = self.dir.join(JOURNAL_FILE);
        self.journal
            .write_all(&record)
            .and_then(|()| self.journal.flush())
            .map_err(|e| io_err(&journal_path, e))
    }

    /// Writes a new recovery point atomically (temp file + `fsync` +
    /// rename) and truncates the journal it subsumes. `engine` is the
    /// sealed blob from [`urb_engine::TopicEngine::save_snapshot`].
    pub fn write_snapshot(
        &mut self,
        engine: &[u8],
        delivered: &[BTreeSet<String>],
    ) -> Result<(), StateError> {
        let mut w = SnapshotWriter::new();
        w.put_bytes(engine);
        w.put_u64(delivered.len() as u64);
        for set in delivered {
            w.put_u64(set.len() as u64);
            for payload in set {
                w.put_str(payload);
            }
        }
        let sealed = seal(w.as_slice());

        let tmp_path = self.dir.join("snapshot.bin.tmp");
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
        tmp.write_all(&sealed)
            .and_then(|()| tmp.sync_all())
            .map_err(|e| io_err(&tmp_path, e))?;
        drop(tmp);
        fs::rename(&tmp_path, &snap_path).map_err(|e| io_err(&snap_path, e))?;

        // The snapshot covers everything journaled so far: reset the
        // journal to empty (a crash between rename and set_len just
        // replays deliveries the snapshot already holds — inserts into
        // sets are idempotent).
        let journal_path = self.dir.join(JOURNAL_FILE);
        self.journal
            .set_len(0)
            .map_err(|e| io_err(&journal_path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_core::Algorithm;
    use urb_engine::TopicEngine;
    use urb_types::SplitMix64;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("urb-state-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn engine() -> TopicEngine {
        TopicEngine::new(
            (0..2)
                .map(|_| Algorithm::Quiescent.instantiate(3))
                .collect(),
            SplitMix64::new(7),
        )
    }

    #[test]
    fn fresh_dir_recovers_empty_then_round_trips() {
        let dir = tmpdir("round");
        let (mut state, recovered) = StateDir::open(&dir).unwrap();
        assert_eq!(recovered, RecoveredState::default());

        state.append_delivery(TopicId(0), "n0.t0.m0").unwrap();
        state.append_delivery(TopicId(1), "n2.t1.m0").unwrap();
        let blob = engine().save_snapshot().unwrap();
        let sets = vec![
            BTreeSet::from(["n0.t0.m0".to_string()]),
            BTreeSet::from(["n2.t1.m0".to_string()]),
        ];
        state.write_snapshot(&blob, &sets).unwrap();
        state.append_delivery(TopicId(1), "n1.t1.m0").unwrap();
        drop(state);

        let (_, recovered) = StateDir::open(&dir).unwrap();
        assert_eq!(recovered.engine.as_deref(), Some(blob.as_slice()));
        assert_eq!(recovered.delivered[0], sets[0]);
        assert_eq!(
            recovered.delivered[1],
            BTreeSet::from(["n1.t1.m0".to_string(), "n2.t1.m0".to_string()])
        );
        // The recovered blob restores into a fresh same-config engine.
        let mut restored = engine();
        restored
            .restore_snapshot(recovered.engine.as_deref().unwrap())
            .unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncates_the_journal() {
        let dir = tmpdir("trunc");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        state.append_delivery(TopicId(0), "early").unwrap();
        state
            .write_snapshot(&engine().save_snapshot().unwrap(), &[BTreeSet::new()])
            .unwrap();
        assert_eq!(fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), 0);
        // Journaling keeps working through the truncated handle.
        state.append_delivery(TopicId(0), "late").unwrap();
        drop(state);
        let recovered = StateDir::recover(&dir).unwrap();
        assert_eq!(recovered.delivered[0], BTreeSet::from(["late".to_string()]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = tmpdir("badsnap");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        state
            .write_snapshot(&engine().save_snapshot().unwrap(), &[])
            .unwrap();
        drop(state);
        let mut bytes = fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(dir.join(SNAPSHOT_FILE), &bytes).unwrap();
        match StateDir::open(&dir) {
            Err(StateError::Snapshot(_)) => {}
            other => panic!("expected Snapshot error, got {other:?}"),
        }
        fs::write(dir.join(SNAPSHOT_FILE), b"junk").unwrap();
        assert_eq!(
            StateDir::recover(&dir),
            Err(StateError::Snapshot(SnapshotError::BadMagic))
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_corrupt_journal_records_are_typed_errors() {
        let dir = tmpdir("badjournal");
        let (mut state, _) = StateDir::open(&dir).unwrap();
        state.append_delivery(TopicId(0), "whole").unwrap();
        drop(state);
        let good = fs::read(dir.join(JOURNAL_FILE)).unwrap();

        // Mid-record EOF: chop the trailing checksum.
        fs::write(dir.join(JOURNAL_FILE), &good[..good.len() - 3]).unwrap();
        assert_eq!(
            StateDir::recover(&dir),
            Err(StateError::JournalTruncated { offset: 0 })
        );

        // Bit flip in the second record's body.
        let mut two = good.clone();
        two.extend_from_slice(&good);
        two[good.len() + 8] ^= 0x01;
        fs::write(dir.join(JOURNAL_FILE), &two).unwrap();
        assert_eq!(
            StateDir::recover(&dir),
            Err(StateError::JournalCorrupt {
                offset: good.len() as u64
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
