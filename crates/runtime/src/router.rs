//! The lossy broadcast medium of the threaded runtime.
//!
//! One router thread fans every node's outgoing message out to all `n`
//! inboxes (sender included — the paper's `broadcast` primitive), dropping
//! each *copy* independently with the configured probability. The
//! sender-to-self copy is never dropped, mirroring the simulator's reliable
//! self-channel. Traffic counters feed the cluster's quiescence observer.

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use urb_types::{RandomSource, WireKind, WireMessage, Xoshiro256};

/// Aggregate router statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// MSG + ACK messages routed (broadcast invocations, not copies).
    pub protocol_messages: u64,
    /// Heartbeats routed.
    pub heartbeats: u64,
    /// Copies dropped by loss injection.
    pub dropped_copies: u64,
    /// Copies delivered into inboxes.
    pub delivered_copies: u64,
}

/// Shared counters written by the router thread.
#[derive(Default)]
pub struct TrafficCounters {
    protocol_messages: AtomicU64,
    heartbeats: AtomicU64,
    dropped_copies: AtomicU64,
    delivered_copies: AtomicU64,
    /// Instant of the last MSG/ACK routed (quiescence detection).
    last_protocol: Mutex<Option<Instant>>,
}

impl TrafficCounters {
    /// Snapshot of the counters.
    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            protocol_messages: self.protocol_messages.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            dropped_copies: self.dropped_copies.load(Ordering::Relaxed),
            delivered_copies: self.delivered_copies.load(Ordering::Relaxed),
        }
    }

    /// When the last protocol message crossed the router.
    pub fn last_protocol_activity(&self) -> Option<Instant> {
        *self.last_protocol.lock()
    }
}

/// Spawns the router thread. It exits when every node-side sender is gone.
pub fn spawn_router(
    ingress: Receiver<(usize, WireMessage)>,
    inboxes: Vec<Sender<WireMessage>>,
    loss: f64,
    seed: u64,
    counters: Arc<TrafficCounters>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("urb-router".into())
        .spawn(move || {
            let mut rng = Xoshiro256::new(seed ^ 0x4007_E4B0_5555_0001);
            while let Ok((from, msg)) = ingress.recv() {
                match msg.kind() {
                    WireKind::Heartbeat => {
                        counters.heartbeats.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        counters.protocol_messages.fetch_add(1, Ordering::Relaxed);
                        *counters.last_protocol.lock() = Some(Instant::now());
                    }
                }
                for (to, inbox) in inboxes.iter().enumerate() {
                    if to != from && loss > 0.0 && rng.gen_bool(loss) {
                        counters.dropped_copies.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // A closed inbox = crashed/stopped node; copies to it
                    // simply vanish, like messages to a dead process.
                    if inbox.send(msg.clone()).is_ok() {
                        counters.delivered_copies.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
        .expect("spawn router thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;
    use urb_types::{Payload, Tag};

    fn msg(tag: u128) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from("m"),
        }
    }

    #[test]
    fn fans_out_to_all_including_sender() {
        let (tx, rx) = unbounded();
        let mut inbox_rx = Vec::new();
        let mut inbox_tx = Vec::new();
        for _ in 0..3 {
            let (t, r) = unbounded();
            inbox_tx.push(t);
            inbox_rx.push(r);
        }
        let counters = Arc::new(TrafficCounters::default());
        let h = spawn_router(rx, inbox_tx, 0.0, 1, Arc::clone(&counters));
        tx.send((1, msg(7))).unwrap();
        drop(tx);
        h.join().unwrap();
        for r in &inbox_rx {
            assert_eq!(r.try_recv().unwrap().tag(), Some(Tag(7)));
        }
        let s = counters.snapshot();
        assert_eq!(s.protocol_messages, 1);
        assert_eq!(s.delivered_copies, 3);
        assert!(counters.last_protocol_activity().is_some());
    }

    #[test]
    fn self_copy_survives_total_loss() {
        let (tx, rx) = unbounded();
        let mut inbox_rx = Vec::new();
        let mut inbox_tx = Vec::new();
        for _ in 0..2 {
            let (t, r) = unbounded();
            inbox_tx.push(t);
            inbox_rx.push(r);
        }
        let counters = Arc::new(TrafficCounters::default());
        let h = spawn_router(rx, inbox_tx, 1.0, 2, Arc::clone(&counters));
        tx.send((0, msg(9))).unwrap();
        drop(tx);
        h.join().unwrap();
        assert!(inbox_rx[0].try_recv().is_ok(), "self copy delivered");
        assert!(inbox_rx[1].try_recv().is_err(), "peer copy lost");
        assert_eq!(counters.snapshot().dropped_copies, 1);
    }

    #[test]
    fn heartbeats_counted_separately() {
        let (tx, rx) = unbounded();
        let (t, _r) = unbounded();
        let counters = Arc::new(TrafficCounters::default());
        let h = spawn_router(rx, vec![t], 0.0, 3, Arc::clone(&counters));
        tx.send((
            0,
            WireMessage::Heartbeat {
                label: urb_types::Label(1),
                seq: 0,
            },
        ))
        .unwrap();
        drop(tx);
        h.join().unwrap();
        let s = counters.snapshot();
        assert_eq!(s.heartbeats, 1);
        assert_eq!(s.protocol_messages, 0);
        assert!(counters.last_protocol_activity().is_none());
    }
}
