//! The lossy broadcast medium of the threaded runtime — the sharded wire
//! plane of the topic system (DESIGN.md §12).
//!
//! One or more **router lanes** (threads) fan every node's outgoing
//! **encoded multiplexed frame** out to all `n` inboxes (sender included
//! — the paper's `broadcast` primitive). Topics are sharded across lanes
//! (`lane = topic % lanes`): each node partitions its step's topic-tagged
//! outbox by lane and sends one [`urb_types::MuxBatch`] frame per lane
//! that has traffic, so independent topics ride independent router
//! threads and the routing plane scales with cores, not with topic
//! count. A single-lane single-topic cluster degenerates to the previous
//! one-router design.
//!
//! Nodes and router exchange real wire bytes, not in-memory structs: a
//! node encodes its step's mux outbox through the zero-copy codec
//! (`MuxBuffers::take_mux_frame` on single-lane clusters, its per-lane
//! `encode_mux_frame_into` partition twin otherwise) and decodes
//! incoming frames with shared payloads
//! (`TopicEngine::receive_mux_frame`), so the runtime exercises the
//! exact serialization boundary a networked deployment would.
//!
//! Loss is applied **per message copy**, exactly as in the unbatched
//! design: each lane decodes its ingress frame once (zero-copy — the
//! decoded payloads are refcounted views of the frame), drops each
//! message independently per destination, and forwards
//!
//! * the **original frame** (a refcount bump, no bytes touched) to every
//!   destination whose sub-batch survived intact;
//! * a **re-encoded thinned frame** (built in a pooled buffer, no
//!   per-message allocation) when loss thinned the batch.
//!
//! Traffic counters count *messages*, not frames, so quiescence
//! observation and statistics are unchanged by batching, multiplexing or
//! sharding — every lane writes the same shared counters.

use crate::NodeInput;
use bytes::Bytes;
use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use urb_types::{
    encode_mux_frame_into, BufPool, MuxBatch, RandomSource, TopicId, WireKind, WireMessage,
    Xoshiro256,
};

/// Aggregate router statistics (summed across every lane).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// MSG + ACK messages routed (broadcast invocations, not copies).
    pub protocol_messages: u64,
    /// Heartbeats routed.
    pub heartbeats: u64,
    /// Multiplexed frames routed (one per producing protocol step and
    /// lane with traffic).
    pub batches: u64,
    /// Message copies dropped by loss injection.
    pub dropped_copies: u64,
    /// Message copies delivered into inboxes.
    pub delivered_copies: u64,
    /// Destination fan-outs served by forwarding the original frame
    /// (refcount bump — no re-encode, no copy).
    pub forwarded_frames: u64,
    /// Destination fan-outs that required re-encoding a thinned
    /// sub-batch.
    pub reencoded_frames: u64,
}

/// Shared counters written by every router lane.
#[derive(Default)]
pub struct TrafficCounters {
    protocol_messages: AtomicU64,
    heartbeats: AtomicU64,
    batches: AtomicU64,
    dropped_copies: AtomicU64,
    delivered_copies: AtomicU64,
    forwarded_frames: AtomicU64,
    reencoded_frames: AtomicU64,
    /// Instant of the last MSG/ACK routed (quiescence detection).
    last_protocol: Mutex<Option<Instant>>,
}

impl TrafficCounters {
    /// Snapshot of the counters.
    pub fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            protocol_messages: self.protocol_messages.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            dropped_copies: self.dropped_copies.load(Ordering::Relaxed),
            delivered_copies: self.delivered_copies.load(Ordering::Relaxed),
            forwarded_frames: self.forwarded_frames.load(Ordering::Relaxed),
            reencoded_frames: self.reencoded_frames.load(Ordering::Relaxed),
        }
    }

    /// When the last protocol message crossed any lane.
    pub fn last_protocol_activity(&self) -> Option<Instant> {
        *self.last_protocol.lock()
    }
}

/// Spawns one router lane thread. It exits when every node-side sender
/// for this lane is gone. Frame buffers for thinned sub-batches come
/// from `pool` (shared with the nodes), so the lane allocates nothing
/// per message. `lane` seeds the lane's own loss RNG stream, so
/// different lanes drop independently.
pub fn spawn_router_lane(
    lane: usize,
    ingress: Receiver<(usize, Bytes)>,
    inboxes: Vec<Sender<NodeInput>>,
    loss: f64,
    seed: u64,
    counters: Arc<TrafficCounters>,
    pool: BufPool,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("urb-router-{lane}"))
        .spawn(move || {
            let mut rng = Xoshiro256::new(seed ^ 0x4007_E4B0_5555_0001 ^ (lane as u64) << 40);
            // Reusable scratch: the decoded ingress entries and the
            // per-destination survivor list.
            let mut decoded: Vec<(TopicId, WireMessage)> = Vec::new();
            let mut survivors: Vec<(TopicId, WireMessage)> = Vec::new();
            while let Ok((from, frame)) = ingress.recv() {
                // In-process frames come from the node's zero-copy mux
                // encode; a decode failure is a codec bug, not a network
                // condition.
                MuxBatch::decode_shared_into(&frame, &mut decoded)
                    .expect("malformed frame from node — codec bug");
                counters.batches.fetch_add(1, Ordering::Relaxed);
                let mut protocol = 0u64;
                let mut heartbeats = 0u64;
                for (_, msg) in &decoded {
                    match msg.kind() {
                        WireKind::Heartbeat => heartbeats += 1,
                        _ => protocol += 1,
                    }
                }
                counters.heartbeats.fetch_add(heartbeats, Ordering::Relaxed);
                if protocol > 0 {
                    counters
                        .protocol_messages
                        .fetch_add(protocol, Ordering::Relaxed);
                    *counters.last_protocol.lock() = Some(Instant::now());
                }
                for (to, inbox) in inboxes.iter().enumerate() {
                    // Per-copy loss, per message inside the frame; the
                    // sender-to-self sub-batch is never thinned.
                    let thin = to != from && loss > 0.0;
                    let outgoing: Bytes = if thin {
                        survivors.clear();
                        survivors.extend(decoded.iter().filter(|_| !rng.gen_bool(loss)).cloned());
                        counters
                            .dropped_copies
                            .fetch_add((decoded.len() - survivors.len()) as u64, Ordering::Relaxed);
                        if survivors.is_empty() {
                            continue;
                        }
                        if survivors.len() == decoded.len() {
                            // Nothing dropped: the original frame is the
                            // sub-batch — forward it untouched.
                            counters.forwarded_frames.fetch_add(1, Ordering::Relaxed);
                            frame.clone()
                        } else {
                            let mut buf = pool.acquire();
                            encode_mux_frame_into(&survivors, &mut buf);
                            counters.reencoded_frames.fetch_add(1, Ordering::Relaxed);
                            Bytes::copy_from_slice(&buf)
                        }
                    } else {
                        counters.forwarded_frames.fetch_add(1, Ordering::Relaxed);
                        frame.clone()
                    };
                    let count = if thin { survivors.len() } else { decoded.len() } as u64;
                    // A closed inbox = crashed/stopped node; copies to it
                    // simply vanish, like messages to a dead process.
                    if inbox.send(NodeInput::Net(outgoing)).is_ok() {
                        counters
                            .delivered_copies
                            .fetch_add(count, Ordering::Relaxed);
                    }
                }
            }
        })
        .expect("spawn router lane thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;
    use urb_types::{Payload, Tag};

    fn frame_of(entries: &[(u32, u128)]) -> Bytes {
        let mux = MuxBatch::from_entries(
            &entries
                .iter()
                .map(|&(t, tag)| {
                    (
                        TopicId(t),
                        WireMessage::Msg {
                            tag: Tag(tag),
                            payload: Payload::from("m"),
                        },
                    )
                })
                .collect::<Vec<_>>(),
        );
        mux.encode()
    }

    fn recv_mux(rx: &crossbeam_channel::Receiver<NodeInput>) -> MuxBatch {
        match rx.try_recv().expect("an input") {
            NodeInput::Net(frame) => MuxBatch::decode_shared(&frame).expect("valid frame"),
            NodeInput::Cmd(_) => panic!("router never sends commands"),
        }
    }

    #[test]
    fn fans_out_to_all_including_sender() {
        let (tx, rx) = unbounded();
        let mut inbox_rx = Vec::new();
        let mut inbox_tx = Vec::new();
        for _ in 0..3 {
            let (t, r) = unbounded();
            inbox_tx.push(t);
            inbox_rx.push(r);
        }
        let counters = Arc::new(TrafficCounters::default());
        let h = spawn_router_lane(
            0,
            rx,
            inbox_tx,
            0.0,
            1,
            Arc::clone(&counters),
            BufPool::default(),
        );
        tx.send((1, frame_of(&[(0, 7)]))).unwrap();
        drop(tx);
        h.join().unwrap();
        for r in &inbox_rx {
            let mux = recv_mux(r);
            assert_eq!(mux.sub_batches()[0].1[0].tag(), Some(Tag(7)));
        }
        let s = counters.snapshot();
        assert_eq!(s.protocol_messages, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.delivered_copies, 3);
        assert_eq!(
            s.forwarded_frames, 3,
            "lossless fan-out is pure refcount forwarding"
        );
        assert_eq!(s.reencoded_frames, 0);
        assert!(counters.last_protocol_activity().is_some());
    }

    #[test]
    fn self_copy_survives_total_loss() {
        let (tx, rx) = unbounded();
        let mut inbox_rx = Vec::new();
        let mut inbox_tx = Vec::new();
        for _ in 0..2 {
            let (t, r) = unbounded();
            inbox_tx.push(t);
            inbox_rx.push(r);
        }
        let counters = Arc::new(TrafficCounters::default());
        let h = spawn_router_lane(
            0,
            rx,
            inbox_tx,
            1.0,
            2,
            Arc::clone(&counters),
            BufPool::default(),
        );
        tx.send((0, frame_of(&[(0, 9)]))).unwrap();
        drop(tx);
        h.join().unwrap();
        assert_eq!(recv_mux(&inbox_rx[0]).len(), 1, "self copy delivered");
        assert!(inbox_rx[1].try_recv().is_err(), "peer copy lost");
        assert_eq!(counters.snapshot().dropped_copies, 1);
    }

    #[test]
    fn batch_members_are_dropped_independently_across_topics() {
        // With 50% loss over a 64-message two-topic frame, the surviving
        // sub-batch is (with overwhelming probability) neither empty nor
        // complete — loss applies per message, not per frame or topic —
        // and the thinned destination receives a re-encoded mux frame.
        let (tx, rx) = unbounded();
        let (peer_tx, peer_rx) = unbounded();
        let (self_tx, self_rx) = unbounded();
        let counters = Arc::new(TrafficCounters::default());
        let pool = BufPool::default();
        let h = spawn_router_lane(
            0,
            rx,
            vec![self_tx, peer_tx],
            0.5,
            3,
            Arc::clone(&counters),
            pool.clone(),
        );
        let entries: Vec<(u32, u128)> = (0..64).map(|i| ((i / 32) as u32, i)).collect();
        tx.send((0, frame_of(&entries))).unwrap();
        drop(tx);
        h.join().unwrap();
        assert_eq!(recv_mux(&self_rx).len(), 64, "self sub-batch intact");
        let survived_mux = recv_mux(&peer_rx);
        let survived = survived_mux.len();
        assert!(survived > 0 && survived < 64, "got {survived}/64");
        let s = counters.snapshot();
        assert_eq!(s.delivered_copies as usize, 64 + survived);
        assert_eq!(s.dropped_copies as usize, 64 - survived);
        assert_eq!(s.reencoded_frames, 1, "thinned sub-batch re-encoded");
        assert_eq!(pool.stats().acquired, 1, "re-encode used the pool");
    }

    #[test]
    fn heartbeats_counted_separately() {
        let (tx, rx) = unbounded();
        let (t, _r) = unbounded();
        let counters = Arc::new(TrafficCounters::default());
        let h = spawn_router_lane(
            0,
            rx,
            vec![t],
            0.0,
            3,
            Arc::clone(&counters),
            BufPool::default(),
        );
        let hb = MuxBatch::from_entries(&[(
            TopicId::ZERO,
            WireMessage::Heartbeat {
                label: urb_types::Label(1),
                seq: 0,
            },
        )]);
        tx.send((0, hb.encode())).unwrap();
        drop(tx);
        h.join().unwrap();
        let s = counters.snapshot();
        assert_eq!(s.heartbeats, 1);
        assert_eq!(s.protocol_messages, 0);
        assert!(counters.last_protocol_activity().is_none());
    }
}
