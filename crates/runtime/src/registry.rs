//! Registry-backed failure detector for the threaded runtime.
//!
//! Crash injection in the runtime is explicit ([`crate::UrbCluster::crash`]),
//! so a *perfect* detector is honest here: the registry learns of every
//! crash the instant it is injected and removes the victim's label from the
//! views after a configurable detection delay — exactly the `AP*` contract
//! ("eventually and permanently deleted"), with "eventually" made concrete.
//! Both `a_theta` and `a_p*` are served from the same membership state with
//! `number = |alive|` (every alive process knows every alive label), which
//! satisfies the `AΘ` clauses for the same reason the simulator's oracle
//! does.

use parking_lot::RwLock;
use std::time::{Duration, Instant};
use urb_types::{FdPair, FdSnapshot, FdView, Label, SplitMix64};

struct State {
    /// `crashed_at[i] = Some(t)` once a crash for `i` was injected at `t`.
    crashed_at: Vec<Option<Instant>>,
}

/// Shared membership/label registry (one per cluster).
pub struct MembershipRegistry {
    labels: Vec<Label>,
    detection_delay: Duration,
    state: RwLock<State>,
}

impl MembershipRegistry {
    /// New registry for `n` processes with labels drawn from `seed`.
    pub fn new(n: usize, seed: u64, detection_delay: Duration) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x4AB0_11ED_FACE_0001);
        MembershipRegistry {
            labels: (0..n).map(|_| Label::random(&mut rng)).collect(),
            detection_delay,
            state: RwLock::new(State {
                crashed_at: vec![None; n],
            }),
        }
    }

    /// The label of process `pid` (driver-side knowledge; protocol code
    /// never sees the mapping).
    pub fn label_of(&self, pid: usize) -> Label {
        self.labels[pid]
    }

    /// Records a crash at `when` (idempotent, keeps the earliest instant).
    pub fn mark_crashed(&self, pid: usize, when: Instant) {
        let mut st = self.state.write();
        match st.crashed_at[pid] {
            Some(prev) if prev <= when => {}
            _ => st.crashed_at[pid] = Some(when),
        }
    }

    /// True once a crash has been injected for `pid`.
    pub fn is_crashed(&self, pid: usize) -> bool {
        self.state.read().crashed_at[pid].is_some()
    }

    /// Labels currently *visible*: alive processes, plus crashed ones whose
    /// detection delay has not yet elapsed.
    fn visible(&self, now: Instant) -> Vec<Label> {
        let st = self.state.read();
        self.labels
            .iter()
            .enumerate()
            .filter(|&(i, _)| match st.crashed_at[i] {
                None => true,
                Some(t) => now.saturating_duration_since(t) < self.detection_delay,
            })
            .map(|(_, &l)| l)
            .collect()
    }

    /// Number of processes not yet known to have crashed.
    fn alive_count(&self, now: Instant) -> u32 {
        self.visible(now).len() as u32
    }

    /// The detector snapshot served to process `pid` at `now`. Crashed
    /// processes get empty views (they are about to stop anyway; an oracle
    /// may output anything for them, and empty is trivially accurate).
    pub fn snapshot(&self, pid: usize, now: Instant) -> FdSnapshot {
        if self.is_crashed(pid) {
            return FdSnapshot::none();
        }
        let number = self.alive_count(now);
        let view = FdView::from_pairs(
            self.visible(now)
                .into_iter()
                .map(|label| FdPair { label, number }),
        );
        FdSnapshot::new(view.clone(), view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_alive_views_are_complete() {
        let r = MembershipRegistry::new(4, 1, Duration::from_millis(100));
        let s = r.snapshot(0, Instant::now());
        assert_eq!(s.a_theta.len(), 4);
        for p in s.a_theta.iter() {
            assert_eq!(p.number, 4);
        }
        assert_eq!(s.a_theta, s.a_p_star);
    }

    #[test]
    fn crash_removes_label_after_delay() {
        let r = MembershipRegistry::new(3, 2, Duration::from_millis(50));
        let t0 = Instant::now();
        r.mark_crashed(2, t0);
        let dead_label = r.label_of(2);
        // Within the detection window the label lingers.
        let s = r.snapshot(0, t0 + Duration::from_millis(10));
        assert!(s.a_theta.contains_label(dead_label));
        // After the window it is permanently gone and numbers shrink.
        let s = r.snapshot(0, t0 + Duration::from_millis(60));
        assert!(!s.a_theta.contains_label(dead_label));
        assert_eq!(s.a_theta.len(), 2);
        for p in s.a_theta.iter() {
            assert_eq!(p.number, 2);
        }
    }

    #[test]
    fn crashed_process_sees_nothing() {
        let r = MembershipRegistry::new(2, 3, Duration::from_millis(10));
        r.mark_crashed(0, Instant::now());
        assert!(r.snapshot(0, Instant::now()).a_theta.is_empty());
        assert!(r.is_crashed(0));
        assert!(!r.is_crashed(1));
    }

    #[test]
    fn mark_crashed_is_idempotent_keeping_earliest() {
        let r = MembershipRegistry::new(2, 4, Duration::from_millis(100));
        let t0 = Instant::now();
        r.mark_crashed(1, t0);
        r.mark_crashed(1, t0 + Duration::from_millis(500));
        // Still measured from t0: gone at t0 + 100ms.
        let s = r.snapshot(0, t0 + Duration::from_millis(150));
        assert!(!s.a_theta.contains_label(r.label_of(1)));
    }

    #[test]
    fn labels_distinct() {
        let r = MembershipRegistry::new(16, 5, Duration::from_millis(1));
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            assert!(seen.insert(r.label_of(i)));
        }
    }
}
