//! Crash-schedule-aware oracle implementations of `AΘ` and `AP*`.
//!
//! ## Why an oracle
//!
//! `AΘ` and `AP*` are axiomatic objects; like Θ and P in the non-anonymous
//! literature they are not implementable in a bare asynchronous system — any
//! realization must embed knowledge of the run's failure pattern. The
//! simulator *has* that knowledge (it owns the crash schedule), so the
//! oracle can emit, at every process and every instant, outputs that satisfy
//! the paper's formal clauses exactly. [`OracleFd::audit`] re-checks the
//! clauses mechanically for any configuration.
//!
//! ## Output model
//!
//! Each process `j` owns one random label `ℓ_j`. For a **correct** process
//! `i` at time `t`:
//!
//! * `a_theta_i(t)` contains `(ℓ_j, number_j(t))` for every `j` whose label
//!   has *appeared* at `i` (appearance is staggered over
//!   [`OracleConfig::appearance_spread`] to exercise Algorithm 2's
//!   label-set-growth path) and, for faulty `j`, has not yet been removed
//!   (removal happens `theta_removal_delay` after the crash — the shrink
//!   path). `number_j(t)` is the current count of correct processes at
//!   which `ℓ_j` has appeared, monotonically converging to `|Correct|`.
//! * `a_p*_i(t)` is **empty** until a global readiness instant (all correct
//!   labels appeared everywhere, plus [`OracleConfig::pstar_ready_slack`]),
//!   then contains `(ℓ_j, |Correct|)` for every correct `j`, plus
//!   `(ℓ_q, |Correct|)` for crashed `q` until `crash_q +
//!   pstar_removal_delay`. Starting empty is essential: Algorithm 2's prune
//!   condition universally quantifies over `a_p*`, so a transiently
//!   *under-complete* `AP*` (fewer pairs than correct processes) would let a
//!   lone sender prune before anyone else holds the message and violate
//!   uniform agreement. The paper's completeness clause only speaks about
//!   the limit; this implementation choice picks the safe representative of
//!   the class (see DESIGN.md D5).
//!
//! **Faulty** processes see empty views by default, which satisfies every
//! clause vacuously. With [`OracleConfig::faulty_knowledge`] enabled they
//! instead see a *restricted* subset of correct labels — at most
//! `|Correct| − 1` faulty processes ever know a given label, and the
//! attributed `number` is floored at `|knowing faulty| + 1`, which keeps
//! the accuracy clause (`every size-number subset of S(label) intersects
//! Correct`) true at every instant while letting doomed processes
//! URB-deliver before they crash (the paper's "fast deliver then crash"
//! scenario).

use crate::FdService;
use urb_types::{FdPair, FdSnapshot, FdView, Label, RandomSource, SplitMix64, WireMessage};

/// Tuning knobs for the oracle. All times are in simulator ticks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OracleConfig {
    /// Labels appear at each correct process at a uniformly random time in
    /// `[0, appearance_spread]`. 0 = everything known from the start.
    pub appearance_spread: u64,
    /// How long after a crash the crashed process's label lingers in
    /// `a_theta` outputs (exercises the ACK label-set shrink path).
    pub theta_removal_delay: u64,
    /// How long after a crash the crashed process's label lingers in `a_p*`
    /// outputs (the paper's "eventually and permanently deleted"). This is
    /// the detector latency that experiment E7 sweeps.
    pub pstar_removal_delay: u64,
    /// Extra delay after full label appearance before `a_p*` becomes
    /// non-empty.
    pub pstar_ready_slack: u64,
    /// Let (a bounded number of) faulty processes know correct labels, so
    /// they can URB-deliver before crashing. Default off.
    pub faulty_knowledge: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            appearance_spread: 50,
            theta_removal_delay: 200,
            pstar_removal_delay: 400,
            pstar_ready_slack: 50,
            faulty_knowledge: false,
        }
    }
}

impl OracleConfig {
    /// An oracle with zero latencies: labels known everywhere from t=0,
    /// crashed labels removed instantly, `a_p*` ready immediately.
    /// The "perfect information" corner of experiment E7.
    pub fn instant() -> Self {
        OracleConfig {
            appearance_spread: 0,
            theta_removal_delay: 0,
            pstar_removal_delay: 0,
            pstar_ready_slack: 0,
            faulty_knowledge: false,
        }
    }
}

/// The oracle `AΘ` + `AP*` for one simulated run.
///
/// ```
/// use urb_fd::{OracleConfig, OracleFd};
///
/// // 4 processes, process 2 crashes at t=1000.
/// let crashes = vec![None, None, Some(1_000), None];
/// let fd = OracleFd::new(crashes, 42, OracleConfig::default());
/// assert_eq!(fd.correct_count(), 3);
///
/// // Late views at a correct process contain exactly the 3 correct
/// // labels, each with number = |Correct| = 3 …
/// let late = fd.a_theta(0, 1_000_000);
/// assert_eq!(late.len(), 3);
/// assert!(late.iter().all(|p| p.number == 3));
///
/// // … and the formal AΘ/AP* clauses hold at *every* instant:
/// fd.audit(1_000_000).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct OracleFd {
    n: usize,
    labels: Vec<Label>,
    /// `crash_time[j] = Some(t)` when process `j` crashes at `t` in this run.
    crash_time: Vec<Option<u64>>,
    /// `appear[i][j]`: time at which `ℓ_j` appears at process `i`
    /// (`u64::MAX` = never).
    appear: Vec<Vec<u64>>,
    /// Number of correct processes.
    correct: u32,
    /// Time from which `a_p*` outputs are populated at correct processes.
    pstar_ready: u64,
    config: OracleConfig,
    /// `faulty_know[q][j]`: faulty process `q` knows correct label `ℓ_j`.
    faulty_know: Vec<Vec<bool>>,
}

impl OracleFd {
    /// Builds the oracle for a run of `n` processes with the given crash
    /// schedule (`crash_time[j] = None` ⇒ `j` is correct in this run).
    ///
    /// # Panics
    /// If every process crashes (the paper assumes at least one correct
    /// process, `t ≤ n − 1`).
    pub fn new(crash_time: Vec<Option<u64>>, seed: u64, config: OracleConfig) -> Self {
        let n = crash_time.len();
        assert!(n >= 1);
        let correct = crash_time.iter().filter(|c| c.is_none()).count() as u32;
        assert!(
            correct >= 1,
            "the model requires at least one correct process (t <= n-1)"
        );
        let mut rng = SplitMix64::new(seed ^ 0x0BAC_1E5E_ED15_EA5E);
        let labels: Vec<Label> = (0..n).map(|_| Label::random(&mut rng)).collect();

        // Staggered appearance times. Labels appear only at correct
        // processes (faulty knowledge handled separately below): keeping
        // S(label) inside Correct is what makes every (label, number) pair
        // trivially accurate in the default configuration.
        let mut appear = vec![vec![u64::MAX; n]; n];
        for i in 0..n {
            if crash_time[i].is_some() {
                continue;
            }
            for slot in appear[i].iter_mut() {
                *slot = if config.appearance_spread == 0 {
                    0
                } else {
                    rng.gen_range(config.appearance_spread + 1)
                };
            }
        }

        // a_p* readiness: all correct labels appeared at all correct
        // processes.
        let mut ready = 0u64;
        for i in 0..n {
            if crash_time[i].is_some() {
                continue;
            }
            for j in 0..n {
                if crash_time[j].is_none() {
                    ready = ready.max(appear[i][j]);
                }
            }
        }
        let pstar_ready = ready.saturating_add(config.pstar_ready_slack);

        // Bounded faulty knowledge (DESIGN.md D5). In this mode doomed
        // processes see (and attach to their ACKs) real label sets —
        // including their *own* label — which is what lets them URB-deliver
        // before crashing and what creates the stale-ACKer entries the D4
        // purge exists for. Accuracy is preserved by two caps:
        //   * only the first `|Correct| − 1` faulty processes (by index)
        //     ever know any label, so every label's faulty-knower count
        //     stays below the `number` floor applied in `number_of`;
        //   * no faulty process ever knows the first correct process's
        //     label — that "clean" label keeps the delivery equality
        //     reachable at every correct process even though faulty ACKers
        //     inflate the other labels' counters.
        let mut faulty_know = vec![vec![false; n]; n];
        if config.faulty_knowledge && correct >= 2 {
            let first_correct = crash_time.iter().position(|c| c.is_none()).unwrap();
            let budget = (correct - 1) as usize;
            let mut eligible = 0usize;
            for q in 0..n {
                if crash_time[q].is_none() {
                    continue;
                }
                if eligible >= budget {
                    break;
                }
                eligible += 1;
                for (j, know) in faulty_know[q].iter_mut().enumerate() {
                    if j != first_correct {
                        *know = true;
                    }
                }
            }
        }

        OracleFd {
            n,
            labels,
            crash_time,
            appear,
            correct,
            pstar_ready,
            config,
            faulty_know,
        }
    }

    /// The label assigned to process `j` (driver/diagnostic use only — no
    /// protocol code ever sees this mapping, preserving anonymity).
    pub fn label_of(&self, j: usize) -> Label {
        self.labels[j]
    }

    /// Number of correct processes in this run.
    pub fn correct_count(&self) -> u32 {
        self.correct
    }

    /// The instant from which `a_p*` outputs are populated.
    pub fn pstar_ready_at(&self) -> u64 {
        self.pstar_ready
    }

    /// `number_j(t)`: count of correct processes at which `ℓ_j` has
    /// appeared by `t`, floored per the faulty-knowledge accuracy rule.
    fn number_of(&self, j: usize, now: u64) -> u32 {
        let knowers = (0..self.n)
            .filter(|&i| self.crash_time[i].is_none() && self.appear[i][j] <= now)
            .count() as u32;
        let faulty_knowers = (0..self.n)
            .filter(|&q| self.crash_time[q].is_some() && self.faulty_know[q][j])
            .count() as u32;
        knowers.max(faulty_knowers + 1)
    }

    /// Is `ℓ_j` present in `a_theta` outputs at time `now`?
    fn theta_visible(&self, j: usize, now: u64) -> bool {
        match self.crash_time[j] {
            None => true,
            Some(c) => now < c.saturating_add(self.config.theta_removal_delay),
        }
    }

    /// Is `ℓ_j` present in `a_p*` outputs at time `now`?
    fn pstar_visible(&self, j: usize, now: u64) -> bool {
        match self.crash_time[j] {
            None => true,
            Some(c) => now < c.saturating_add(self.config.pstar_removal_delay),
        }
    }

    /// The `a_theta` view at process `i`, time `now`.
    pub fn a_theta(&self, i: usize, now: u64) -> FdView {
        if self.crash_time[i].is_some() {
            // Faulty processes: empty by default, restricted correct labels
            // with faulty_knowledge.
            if !self.config.faulty_knowledge {
                return FdView::empty();
            }
            return FdView::from_pairs((0..self.n).filter_map(|j| {
                if self.faulty_know[i][j] {
                    Some(FdPair {
                        label: self.labels[j],
                        number: self.number_of(j, now),
                    })
                } else {
                    None
                }
            }));
        }
        FdView::from_pairs((0..self.n).filter_map(|j| {
            if self.appear[i][j] <= now && self.theta_visible(j, now) {
                Some(FdPair {
                    label: self.labels[j],
                    number: self.number_of(j, now),
                })
            } else {
                None
            }
        }))
    }

    /// The `a_p*` view at process `i`, time `now`.
    pub fn a_p_star(&self, i: usize, now: u64) -> FdView {
        if self.crash_time[i].is_some() || now < self.pstar_ready {
            return FdView::empty();
        }
        FdView::from_pairs((0..self.n).filter_map(|j| {
            if self.pstar_visible(j, now) {
                Some(FdPair {
                    label: self.labels[j],
                    number: self.correct,
                })
            } else {
                None
            }
        }))
    }

    /// Machine-checks the paper's formal clauses over `[0, horizon]`
    /// (sampled at every event-relevant instant: appearances, crashes,
    /// removals, readiness). Returns a description of the first violation.
    ///
    /// Checked clauses:
    /// * **AΘ-accuracy** — for every pair `(ℓ, num)` ever output, the number
    ///   of *faulty* processes that ever know `ℓ` is `< num` (hence every
    ///   size-`num` subset of `S(ℓ)` intersects `Correct`).
    /// * **AΘ-completeness** — at `horizon`, every correct process's
    ///   `a_theta` contains exactly the correct labels, each with
    ///   `number = |S(label) ∩ Correct| = |Correct|`.
    /// * **AP*-completeness** — same at `horizon` for `a_p*`.
    /// * **AP*-accuracy** — at `horizon`, no crashed label appears in any
    ///   correct process's `a_p*`.
    pub fn audit(&self, horizon: u64) -> Result<(), String> {
        // Interesting instants.
        let mut times: Vec<u64> = vec![0, self.pstar_ready, horizon];
        for i in 0..self.n {
            for j in 0..self.n {
                if self.appear[i][j] != u64::MAX {
                    times.push(self.appear[i][j]);
                }
            }
            if let Some(c) = self.crash_time[i] {
                times.push(c);
                times.push(c.saturating_add(self.config.theta_removal_delay));
                times.push(c.saturating_add(self.config.pstar_removal_delay));
            }
        }
        times.retain(|&t| t <= horizon);
        times.sort_unstable();
        times.dedup();

        // S(ℓ_j) over the whole run: processes that ever have ℓ_j in an
        // output. Correct knowers + configured faulty knowers.
        let faulty_in_s = |j: usize| -> u32 {
            (0..self.n)
                .filter(|&q| self.crash_time[q].is_some() && self.faulty_know[q][j])
                .count() as u32
        };

        for &t in &times {
            for i in 0..self.n {
                for view in [self.a_theta(i, t), self.a_p_star(i, t)] {
                    for pair in view.iter() {
                        let j = self
                            .labels
                            .iter()
                            .position(|&l| l == pair.label)
                            .expect("output label must belong to a process");
                        if pair.number == 0 {
                            return Err(format!("accuracy: zero number for label of {j} at t={t}"));
                        }
                        if faulty_in_s(j) >= pair.number {
                            return Err(format!(
                                "accuracy: label of {j} at t={t} has number {} but {} faulty knowers",
                                pair.number,
                                faulty_in_s(j)
                            ));
                        }
                    }
                }
            }
        }

        // Completeness at the horizon (must be past appearance + removals).
        for i in 0..self.n {
            if self.crash_time[i].is_some() {
                continue;
            }
            for (name, view) in [
                ("a_theta", self.a_theta(i, horizon)),
                ("a_p*", self.a_p_star(i, horizon)),
            ] {
                let mut expected = 0;
                for j in 0..self.n {
                    let correct_j = self.crash_time[j].is_none();
                    let present = view.contains_label(self.labels[j]);
                    if correct_j {
                        expected += 1;
                        if !present {
                            return Err(format!(
                                "completeness: {name} at {i} misses correct label of {j}"
                            ));
                        }
                        if view.number_of(self.labels[j]) != Some(self.correct) {
                            return Err(format!(
                                "completeness: {name} at {i} has wrong number for {j}"
                            ));
                        }
                    } else if present {
                        return Err(format!(
                            "AP*/AΘ accuracy: {name} at {i} still contains crashed label of {j} at horizon {horizon}"
                        ));
                    }
                }
                if view.len() != expected {
                    return Err(format!("completeness: {name} at {i} has stray pairs"));
                }
            }
        }
        Ok(())
    }
}

impl OracleFd {
    /// Resolves a dynamically-triggered crash to its actual instant (the
    /// process must already be declared faulty — an oracle cannot change a
    /// process's correctness class mid-run, only refine *when* it crashes).
    pub fn record_crash(&mut self, pid: usize, now: u64) {
        match self.crash_time[pid] {
            Some(planned) if planned > now => self.crash_time[pid] = Some(now),
            Some(_) => {}
            None => panic!(
                "process {pid} crashed at {now} but the oracle classified it correct; \
                 the crash plan and the oracle must be built from the same schedule"
            ),
        }
    }

    /// True when every declared-faulty process has a concrete crash time
    /// (required before [`audit`](Self::audit) is meaningful).
    pub fn fully_resolved(&self) -> bool {
        self.crash_time
            .iter()
            .all(|c| c.is_none_or(|t| t != u64::MAX))
    }
}

impl FdService for OracleFd {
    fn on_tick(&mut self, _pid: usize, _now: u64, _out: &mut Vec<WireMessage>) {}

    fn on_receive(&mut self, _pid: usize, _now: u64, _msg: &WireMessage) {}

    fn on_crash(&mut self, pid: usize, now: u64) {
        self.record_crash(pid, now);
    }

    fn snapshot(&self, pid: usize, now: u64) -> FdSnapshot {
        FdSnapshot::new(self.a_theta(pid, now), self.a_p_star(pid, now))
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_crashes(n: usize) -> Vec<Option<u64>> {
        vec![None; n]
    }

    #[test]
    fn all_correct_instant_oracle_is_complete_from_t0() {
        let fd = OracleFd::new(no_crashes(4), 1, OracleConfig::instant());
        for i in 0..4 {
            let s = fd.snapshot(i, 0);
            assert_eq!(s.a_theta.len(), 4);
            assert_eq!(s.a_p_star.len(), 4);
            for p in s.a_theta.iter() {
                assert_eq!(p.number, 4);
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let fd = OracleFd::new(no_crashes(8), 2, OracleConfig::default());
        let mut seen = std::collections::HashSet::new();
        for j in 0..8 {
            assert!(seen.insert(fd.label_of(j)));
        }
    }

    #[test]
    fn appearance_is_staggered_then_converges() {
        let cfg = OracleConfig {
            appearance_spread: 1000,
            ..OracleConfig::default()
        };
        let fd = OracleFd::new(no_crashes(6), 3, cfg);
        // Early: typically partial views (with spread 1000 the chance all 36
        // appearances are < 10 is astronomically small).
        let early: usize = (0..6).map(|i| fd.a_theta(i, 10).len()).sum();
        assert!(early < 36, "views should still be partial at t=10");
        // Late: complete.
        for i in 0..6 {
            assert_eq!(fd.a_theta(i, 2000).len(), 6);
            for p in fd.a_theta(i, 2000).iter() {
                assert_eq!(p.number, 6);
            }
        }
    }

    #[test]
    fn numbers_are_monotone_for_correct_labels() {
        let cfg = OracleConfig {
            appearance_spread: 500,
            ..OracleConfig::default()
        };
        let fd = OracleFd::new(no_crashes(5), 4, cfg);
        let l0 = fd.label_of(0);
        let mut prev = 0;
        for t in (0..=600).step_by(25) {
            if let Some(n) = fd.a_theta(0, t).number_of(l0) {
                assert!(n >= prev, "number must not shrink for correct labels");
                prev = n;
            }
        }
        assert_eq!(prev, 5);
    }

    #[test]
    fn crashed_label_lingers_then_leaves_theta() {
        let mut crashes = no_crashes(4);
        crashes[3] = Some(1_000);
        let cfg = OracleConfig {
            appearance_spread: 0,
            theta_removal_delay: 200,
            pstar_removal_delay: 300,
            pstar_ready_slack: 0,
            faulty_knowledge: false,
        };
        let fd = OracleFd::new(crashes, 5, cfg);
        let l3 = fd.label_of(3);
        assert!(fd.a_theta(0, 1_100).contains_label(l3), "still lingering");
        assert!(!fd.a_theta(0, 1_200).contains_label(l3), "removed");
        assert!(fd.a_p_star(0, 1_250).contains_label(l3), "AP* slower");
        assert!(!fd.a_p_star(0, 1_300).contains_label(l3));
    }

    #[test]
    fn pstar_empty_before_ready() {
        let cfg = OracleConfig {
            appearance_spread: 100,
            pstar_ready_slack: 50,
            ..OracleConfig::default()
        };
        let fd = OracleFd::new(no_crashes(4), 6, cfg);
        let ready = fd.pstar_ready_at();
        assert!(ready >= 50);
        assert!(fd.a_p_star(0, 0).is_empty());
        assert!(!fd.a_p_star(0, ready).is_empty());
    }

    #[test]
    fn faulty_processes_have_empty_views_by_default() {
        let mut crashes = no_crashes(4);
        crashes[1] = Some(5_000);
        let fd = OracleFd::new(crashes, 7, OracleConfig::default());
        assert!(fd.snapshot(1, 100).a_theta.is_empty());
        assert!(fd.snapshot(1, 100).a_p_star.is_empty());
    }

    #[test]
    fn faulty_knowledge_is_bounded_and_accurate() {
        let mut crashes = no_crashes(6);
        crashes[4] = Some(10_000);
        crashes[5] = Some(20_000);
        let cfg = OracleConfig {
            faulty_knowledge: true,
            ..OracleConfig::default()
        };
        let fd = OracleFd::new(crashes, 8, cfg);
        // Every pair a faulty process sees must carry number > faulty knowers.
        for q in [4usize, 5] {
            let v = fd.a_theta(q, 100);
            for pair in v.iter() {
                assert!(pair.number >= 1);
            }
            // a_p* stays empty at faulty processes.
            assert!(fd.a_p_star(q, 1_000_000).is_empty());
        }
        fd.audit(2_000_000).expect("audit must pass");
    }

    #[test]
    fn audit_passes_across_configurations() {
        for (seed, spread, crash) in [(1u64, 0u64, None), (2, 200, Some(500)), (3, 50, Some(10))] {
            let mut crashes = no_crashes(5);
            if let Some(c) = crash {
                crashes[2] = Some(c);
                crashes[4] = Some(c * 2 + 7);
            }
            let cfg = OracleConfig {
                appearance_spread: spread,
                ..OracleConfig::default()
            };
            let fd = OracleFd::new(crashes, seed, cfg);
            fd.audit(1_000_000)
                .unwrap_or_else(|e| panic!("audit failed (seed {seed}): {e}"));
        }
    }

    #[test]
    fn minority_correct_is_supported() {
        // The whole point of AΘ: URB with any number of crashes.
        let crashes = vec![Some(100), Some(200), Some(300), None, Some(400)];
        let fd = OracleFd::new(crashes, 9, OracleConfig::default());
        assert_eq!(fd.correct_count(), 1);
        let late = fd.a_theta(3, 1_000_000);
        assert_eq!(late.len(), 1, "only the lone correct label survives");
        assert_eq!(late.iter().next().unwrap().number, 1);
        fd.audit(2_000_000).expect("audit");
    }

    #[test]
    #[should_panic(expected = "at least one correct process")]
    fn all_faulty_rejected() {
        let _ = OracleFd::new(vec![Some(1), Some(2)], 1, OracleConfig::default());
    }

    #[test]
    fn snapshot_matches_component_views() {
        let fd = OracleFd::new(no_crashes(3), 10, OracleConfig::instant());
        let s = fd.snapshot(0, 42);
        assert_eq!(s.a_theta, fd.a_theta(0, 42));
        assert_eq!(s.a_p_star, fd.a_p_star(0, 42));
    }
}
