//! # `urb-fd`
//!
//! The anonymous failure detectors of the paper (§V):
//!
//! * **`AΘ`** — the anonymous counterpart of Θ (the weakest failure detector
//!   for URB in non-anonymous systems). Outputs pairs `(label, number)` such
//!   that, at every instant, *any* set of `number` processes that know
//!   `label` contains at least one correct process (accuracy), and
//!   eventually the output settles on the correct processes' pairs with
//!   `number = |S(label) ∩ Correct|` (completeness).
//! * **`AP*`** — the anonymous perfect detector: eventually outputs exactly
//!   the pairs of the correct processes, with crashed processes' labels
//!   permanently removed.
//!
//! Two implementations are provided:
//!
//! * [`oracle::OracleFd`] — a crash-schedule-aware oracle, the honest way to
//!   realize an axiomatic detector in a simulation (exactly like Θ/P in the
//!   classic literature, these detectors are *oracles*: any implementation
//!   must embed knowledge of the failure pattern). Its outputs satisfy the
//!   paper's formal clauses **at every instant**, which
//!   [`oracle::OracleFd::audit`] machine-checks. Label appearance is
//!   staggered and crash removal delayed, so the transient paths of
//!   Algorithm 2 (growing and shrinking ACK label sets) are exercised.
//! * [`heartbeat::HeartbeatFd`] — a realistic heartbeat implementation over
//!   the same lossy network the protocol uses. Sound only probabilistically:
//!   a long loss burst can cause a false suspicion. Experiment E8 quantifies
//!   what that does to Algorithm 2.
//!
//! The simulator talks to either through the [`FdService`] trait; Algorithm 1
//! runs with [`NoFd`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod heartbeat;
pub mod oracle;

pub use heartbeat::{HeartbeatConfig, HeartbeatFd, HeartbeatService};
pub use oracle::{OracleConfig, OracleFd};

use urb_types::{FdSnapshot, WireMessage};

/// A failure-detector implementation as seen by a driver (simulator or
/// runtime): it may emit messages on ticks (heartbeats), observe received
/// messages, and must produce per-process snapshots on demand.
///
/// `pid` is the *driver-side* process index — protocol code never sees it;
/// it exists only so one service object can serve a whole run.
pub trait FdService: Send {
    /// Called once per process tick, before the protocol's own tick. May
    /// push detector messages (heartbeats) into `out`.
    fn on_tick(&mut self, pid: usize, now: u64, out: &mut Vec<WireMessage>);

    /// Observes a message received by `pid` (heartbeat implementations feed
    /// on `WireMessage::Heartbeat`; oracles ignore everything).
    fn on_receive(&mut self, pid: usize, now: u64, msg: &WireMessage);

    /// Informs the detector that `pid` crashed at `now`. Oracles use this to
    /// resolve dynamically-triggered crashes (crash-on-first-delivery plans
    /// declare the process faulty up front with an unknown time; the actual
    /// instant starts the label-removal clocks). Default: ignore.
    fn on_crash(&mut self, _pid: usize, _now: u64) {}

    /// The current `a_theta` / `a_p*` outputs at `pid`.
    fn snapshot(&self, pid: usize, now: u64) -> FdSnapshot;

    /// Implementation name for experiment tables.
    fn name(&self) -> &'static str;
}

/// The absent detector: both views always empty. What Algorithm 1 (and the
/// baselines) run with.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFd;

impl FdService for NoFd {
    fn on_tick(&mut self, _pid: usize, _now: u64, _out: &mut Vec<WireMessage>) {}
    fn on_receive(&mut self, _pid: usize, _now: u64, _msg: &WireMessage) {}
    fn snapshot(&self, _pid: usize, _now: u64) -> FdSnapshot {
        FdSnapshot::none()
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fd_is_always_empty() {
        let mut fd = NoFd;
        let mut out = Vec::new();
        fd.on_tick(0, 0, &mut out);
        assert!(out.is_empty());
        let s = fd.snapshot(3, 1_000);
        assert!(s.a_theta.is_empty());
        assert!(s.a_p_star.is_empty());
        assert_eq!(fd.name(), "none");
    }
}
