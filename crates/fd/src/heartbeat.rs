//! Heartbeat-based "realistic" implementation of `AΘ` / `AP*`.
//!
//! Each process periodically broadcasts `HEARTBEAT(label, seq)` over the
//! same fair-lossy network the protocol uses, and considers a label *alive*
//! if a heartbeat carrying it was heard within a timeout window. Both
//! detector views are then estimated as
//! `{(ℓ, |alive|) : ℓ ∈ alive}` — "every alive label is known by all alive
//! processes".
//!
//! This is exactly what a practitioner would deploy, and it is **not** a
//! sound implementation of the paper's classes: a loss burst longer than the
//! timeout produces a false suspicion (an alive label vanishes), which can
//! make Algorithm 2 prune too early (safety) or deliver late (liveness), and
//! an over-long timeout delays quiescence. Experiment E8 sweeps the
//! timeout/period ratio and measures both effects, quantifying the gap
//! between the axiomatic detectors and their realistic approximation — the
//! simulation-grade counterpart of the paper's remark that `AΘ`/`AP*` are
//! oracles.

use crate::FdService;
use urb_types::{FdPair, FdSnapshot, FdView, Label, SplitMix64, WireMessage};

/// Tuning for the heartbeat detector. Times in simulator ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Interval between heartbeat broadcasts.
    pub period: u64,
    /// A label is suspected when no heartbeat carrying it arrived for this
    /// long. Must be ≥ `period` to have any chance of stability.
    pub timeout: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: 20,
            timeout: 120,
        }
    }
}

/// Per-process heartbeat detector state.
#[derive(Clone, Debug)]
pub struct HeartbeatFd {
    my_label: Label,
    config: HeartbeatConfig,
    seq: u64,
    next_beat: u64,
    /// `label → last time a heartbeat carrying it was received`.
    last_heard: std::collections::BTreeMap<Label, u64>,
}

impl HeartbeatFd {
    /// New detector for a process whose label is `my_label`.
    pub fn new(my_label: Label, config: HeartbeatConfig) -> Self {
        HeartbeatFd {
            my_label,
            config,
            seq: 0,
            next_beat: 0,
            last_heard: std::collections::BTreeMap::new(),
        }
    }

    /// Emits a heartbeat if one is due.
    pub fn on_tick(&mut self, now: u64, out: &mut Vec<WireMessage>) {
        if now >= self.next_beat {
            out.push(WireMessage::Heartbeat {
                label: self.my_label,
                seq: self.seq,
            });
            self.seq += 1;
            self.next_beat = now + self.config.period;
        }
    }

    /// Observes a received message (only heartbeats matter).
    pub fn on_receive(&mut self, now: u64, msg: &WireMessage) {
        if let WireMessage::Heartbeat { label, .. } = msg {
            let entry = self.last_heard.entry(*label).or_insert(now);
            *entry = (*entry).max(now);
        }
    }

    /// Labels currently considered alive (own label is always alive).
    pub fn alive(&self, now: u64) -> Vec<Label> {
        let mut v: Vec<Label> = self
            .last_heard
            .iter()
            .filter(|&(_, &t)| now.saturating_sub(t) <= self.config.timeout)
            .map(|(&l, _)| l)
            .collect();
        if !v.contains(&self.my_label) {
            v.push(self.my_label);
            v.sort_unstable();
        }
        v
    }

    /// The estimated detector snapshot at `now`.
    pub fn snapshot(&self, now: u64) -> FdSnapshot {
        let alive = self.alive(now);
        let number = alive.len() as u32;
        let view = FdView::from_pairs(alive.into_iter().map(|label| FdPair { label, number }));
        FdSnapshot::new(view.clone(), view)
    }
}

/// Driver-facing service bundling one [`HeartbeatFd`] per process.
#[derive(Debug)]
pub struct HeartbeatService {
    fds: Vec<HeartbeatFd>,
}

impl HeartbeatService {
    /// Creates detectors for `n` processes with random labels derived from
    /// `seed`. Returns the service and the per-process labels (driver-side
    /// knowledge only).
    pub fn new(n: usize, seed: u64, config: HeartbeatConfig) -> (Self, Vec<Label>) {
        let mut rng = SplitMix64::new(seed ^ 0x4EA2_7BEA_7000_0001);
        let labels: Vec<Label> = (0..n).map(|_| Label::random(&mut rng)).collect();
        let fds = labels
            .iter()
            .map(|&l| HeartbeatFd::new(l, config))
            .collect();
        (HeartbeatService { fds }, labels)
    }
}

impl FdService for HeartbeatService {
    fn on_tick(&mut self, pid: usize, now: u64, out: &mut Vec<WireMessage>) {
        self.fds[pid].on_tick(now, out);
    }

    fn on_receive(&mut self, pid: usize, now: u64, msg: &WireMessage) {
        self.fds[pid].on_receive(now, msg);
    }

    fn snapshot(&self, pid: usize, now: u64) -> FdSnapshot {
        self.fds[pid].snapshot(now)
    }

    fn name(&self) -> &'static str {
        "heartbeat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(label: u64, seq: u64) -> WireMessage {
        WireMessage::Heartbeat {
            label: Label(label),
            seq,
        }
    }

    #[test]
    fn emits_heartbeats_on_schedule() {
        let mut fd = HeartbeatFd::new(Label(1), HeartbeatConfig::default());
        let mut out = Vec::new();
        fd.on_tick(0, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        fd.on_tick(5, &mut out);
        assert!(out.is_empty(), "not due yet");
        fd.on_tick(20, &mut out);
        assert_eq!(out.len(), 1);
        match &out[0] {
            WireMessage::Heartbeat { label, seq } => {
                assert_eq!(*label, Label(1));
                assert_eq!(*seq, 1, "sequence advances");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn own_label_always_alive() {
        let fd = HeartbeatFd::new(Label(9), HeartbeatConfig::default());
        assert_eq!(fd.alive(1_000_000), vec![Label(9)]);
    }

    #[test]
    fn heard_label_alive_until_timeout() {
        let mut fd = HeartbeatFd::new(
            Label(1),
            HeartbeatConfig {
                period: 10,
                timeout: 50,
            },
        );
        fd.on_receive(100, &hb(2, 0));
        assert!(fd.alive(100).contains(&Label(2)));
        assert!(fd.alive(150).contains(&Label(2)), "at the edge");
        assert!(!fd.alive(151).contains(&Label(2)), "timed out");
    }

    #[test]
    fn refreshed_heartbeat_extends_lease() {
        let mut fd = HeartbeatFd::new(
            Label(1),
            HeartbeatConfig {
                period: 10,
                timeout: 50,
            },
        );
        fd.on_receive(100, &hb(2, 0));
        fd.on_receive(140, &hb(2, 4));
        assert!(fd.alive(185).contains(&Label(2)));
    }

    #[test]
    fn out_of_order_heartbeats_do_not_regress_lease() {
        let mut fd = HeartbeatFd::new(Label(1), HeartbeatConfig::default());
        fd.on_receive(200, &hb(2, 9));
        fd.on_receive(150, &hb(2, 3)); // late, reordered delivery
        assert!(fd.alive(200 + 120).contains(&Label(2)));
    }

    #[test]
    fn snapshot_numbers_equal_alive_count() {
        let mut fd = HeartbeatFd::new(Label(1), HeartbeatConfig::default());
        fd.on_receive(10, &hb(2, 0));
        fd.on_receive(10, &hb(3, 0));
        let s = fd.snapshot(10);
        assert_eq!(s.a_theta.len(), 3);
        for p in s.a_theta.iter() {
            assert_eq!(p.number, 3);
        }
        assert_eq!(s.a_theta, s.a_p_star);
    }

    #[test]
    fn service_routes_per_process() {
        let (mut svc, labels) = HeartbeatService::new(3, 7, HeartbeatConfig::default());
        assert_eq!(labels.len(), 3);
        let mut out = Vec::new();
        svc.on_tick(0, 0, &mut out);
        assert_eq!(out.len(), 1);
        // Process 1 hears process 0's beat.
        svc.on_receive(1, 1, &out[0]);
        let s = svc.snapshot(1, 1);
        assert_eq!(s.a_theta.len(), 2, "self + heard");
        // Process 2 heard nothing.
        assert_eq!(svc.snapshot(2, 1).a_theta.len(), 1);
        assert_eq!(svc.name(), "heartbeat");
    }

    #[test]
    fn false_suspicion_under_silence() {
        // The unsoundness E8 quantifies: silence (loss burst) kills a label.
        let (mut svc, labels) = HeartbeatService::new(2, 8, HeartbeatConfig::default());
        let mut out = Vec::new();
        svc.on_tick(0, 0, &mut out);
        svc.on_receive(1, 0, &out[0]);
        assert!(svc.snapshot(1, 0).a_theta.contains_label(labels[0]));
        // No more heartbeats arrive; after the timeout the label is gone
        // even though process 0 may be perfectly alive.
        assert!(!svc.snapshot(1, 500).a_theta.contains_label(labels[0]));
    }
}
