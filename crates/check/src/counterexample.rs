//! Replayable counterexample traces.
//!
//! A counterexample is the full recipe for re-witnessing one violating
//! execution: the scenario spec (embedded as canonical TOML, so the file
//! is self-contained), the seed, and the choice sequence. The delivery
//! trace rides along in the golden-trace shape PR 2 introduced
//! (`{"pid", "time", "fast", "tag"}` rows, tags as 32-digit hex), so the
//! same eyes and tools read both. Replay is **byte-deterministic**:
//! re-serializing a replayed counterexample reproduces the original
//! body, byte for byte — that is what `urb check --replay` asserts.
//!
//! The body is bare; the CLI wraps it in the workspace's shared JSON
//! envelope (`schema_version`/`kind`/`seed`/`git_rev`/`data`).
//! [`Counterexample::parse`] accepts both forms.

use crate::model::{CheckModel, Choice};
use serde_json::Value;
use std::fmt::Write as _;
use urb_sim::metrics::DeliveryRecord;
use urb_sim::ScenarioSpec;
use urb_types::{Payload, Tag, TopicId};

/// Envelope `kind` of a counterexample file.
pub const KIND: &str = "urb-counterexample";

/// One replayable violating execution.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Scenario name.
    pub scenario: String,
    /// Strategy that found it.
    pub strategy: String,
    /// Seed the engines derived their streams from.
    pub seed: u64,
    /// Depth bound the search ran under.
    pub depth_bound: u32,
    /// The spec, as canonical TOML (self-contained replay).
    pub spec_toml: String,
    /// The violated properties, as the checker phrased them.
    pub violation: Vec<String>,
    /// The choice sequence — the schedule itself.
    pub choices: Vec<Choice>,
    /// The execution's delivery trace (golden-trace shape; `time` is the
    /// step index).
    pub deliveries: Vec<DeliveryRecord>,
}

fn choice_json(c: &Choice) -> String {
    match c {
        Choice::Broadcast => "{\"kind\": \"broadcast\"}".into(),
        Choice::Deliver { slot } => format!("{{\"kind\": \"deliver\", \"slot\": {slot}}}"),
        Choice::Drop { slot } => format!("{{\"kind\": \"drop\", \"slot\": {slot}}}"),
        Choice::Tick { pid } => format!("{{\"kind\": \"tick\", \"pid\": {pid}}}"),
        Choice::Crash { pid } => format!("{{\"kind\": \"crash\", \"pid\": {pid}}}"),
        Choice::TopicEvent => "{\"kind\": \"topic-event\"}".into(),
    }
}

fn choice_from_value(v: &Value) -> Result<Choice, String> {
    let kind = v["kind"]
        .as_str()
        .ok_or_else(|| "choice without a kind".to_string())?;
    let field = |name: &str| -> Result<usize, String> {
        v[name]
            .as_u64()
            .map(|x| x as usize)
            .ok_or_else(|| format!("choice {kind:?} needs a numeric `{name}`"))
    };
    Ok(match kind {
        "broadcast" => Choice::Broadcast,
        "deliver" => Choice::Deliver {
            slot: field("slot")?,
        },
        "drop" => Choice::Drop {
            slot: field("slot")?,
        },
        "tick" => Choice::Tick { pid: field("pid")? },
        "crash" => Choice::Crash { pid: field("pid")? },
        "topic-event" => Choice::TopicEvent,
        other => return Err(format!("unknown choice kind {other:?}")),
    })
}

impl Counterexample {
    /// The JSON body (hand-rolled like every emitter in the workspace —
    /// the offline `serde` shim generates nothing).
    pub fn body_json(&self) -> String {
        let mut s = String::with_capacity(1024 + self.spec_toml.len() * 2);
        s.push_str("{\n");
        let _ = writeln!(
            s,
            "  \"scenario\": \"{}\",",
            serde_json::escape(&self.scenario)
        );
        let _ = writeln!(
            s,
            "  \"strategy\": \"{}\",",
            serde_json::escape(&self.strategy)
        );
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"depth_bound\": {},", self.depth_bound);
        let _ = writeln!(
            s,
            "  \"spec_toml\": \"{}\",",
            serde_json::escape(&self.spec_toml)
        );
        let viol: Vec<String> = self
            .violation
            .iter()
            .map(|v| format!("\"{}\"", serde_json::escape(v)))
            .collect();
        let _ = writeln!(s, "  \"violation\": [{}],", viol.join(", "));
        let choices: Vec<String> = self.choices.iter().map(choice_json).collect();
        let _ = writeln!(s, "  \"choices\": [\n    {}\n  ],", choices.join(",\n    "));
        // Delivery rows in the PR 2 golden-trace shape.
        let rows: Vec<String> = self
            .deliveries
            .iter()
            .map(|d| {
                format!(
                    "    {{\"pid\": {}, \"topic\": {}, \"time\": {}, \"fast\": {}, \
                     \"tag\": \"{:#034x}\"}}",
                    d.pid, d.topic.0, d.time, d.fast, d.tag.0
                )
            })
            .collect();
        if rows.is_empty() {
            s.push_str("  \"deliveries\": []\n");
        } else {
            let _ = writeln!(s, "  \"deliveries\": [\n{}\n  ]", rows.join(",\n"));
        }
        s.push('}');
        s
    }

    /// Parses a counterexample from JSON text — either a bare body or a
    /// CLI-enveloped file (`data` holds the body).
    pub fn parse(text: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let body = if !v["data"].is_null() {
            if v["kind"].as_str() != Some(KIND) {
                return Err(format!(
                    "not a counterexample file (kind = {:?})",
                    v["kind"].as_str().unwrap_or("?")
                ));
            }
            &v["data"]
        } else {
            &v
        };
        let req_str = |key: &str| -> Result<String, String> {
            body[key]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("missing or mistyped `{key}`"))
        };
        let choices = body["choices"]
            .as_array()
            .ok_or_else(|| "missing `choices` array".to_string())?
            .iter()
            .map(choice_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let violation = body["violation"]
            .as_array()
            .ok_or_else(|| "missing `violation` array".to_string())?
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "violation entries must be strings".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let deliveries = body["deliveries"]
            .as_array()
            .ok_or_else(|| "missing `deliveries` array".to_string())?
            .iter()
            .map(|d| {
                let tag_text = d["tag"]
                    .as_str()
                    .ok_or_else(|| "delivery without a tag".to_string())?;
                let tag = u128::from_str_radix(tag_text.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("bad tag {tag_text:?}: {e}"))?;
                let topic = match &d["topic"] {
                    // Absent on pre-topic artifacts: default to topic 0.
                    v if v.is_null() => TopicId::ZERO,
                    // Present must be a valid dense topic id; silent
                    // coercion would replay against the wrong golden row.
                    v => TopicId(
                        v.as_u64()
                            .and_then(|t| u32::try_from(t).ok())
                            .ok_or("delivery topic must be a u32")?,
                    ),
                };
                Ok(DeliveryRecord {
                    pid: d["pid"].as_u64().ok_or("delivery without a pid")? as usize,
                    topic,
                    time: d["time"].as_u64().ok_or("delivery without a time")?,
                    fast: d["fast"].as_bool().ok_or("delivery without fast")?,
                    tag: Tag(tag),
                    // Payloads are not part of the golden shape; replay
                    // compares (pid, time, fast, tag).
                    payload: Payload::empty(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Counterexample {
            scenario: req_str("scenario")?,
            strategy: req_str("strategy")?,
            seed: body["seed"]
                .as_u64()
                .ok_or_else(|| "missing or mistyped `seed`".to_string())?,
            depth_bound: body["depth_bound"]
                .as_u64()
                .ok_or_else(|| "missing or mistyped `depth_bound`".to_string())?
                as u32,
            spec_toml: req_str("spec_toml")?,
            violation,
            choices,
            deliveries,
        })
    }

    /// Re-executes the recorded schedule from the embedded spec and
    /// verifies it reproduces the recorded violation **and** the
    /// recorded delivery trace, row for row. `Ok` carries the replayed
    /// violation strings (for display); `Err` explains the first
    /// divergence.
    pub fn replay(&self) -> Result<Vec<String>, String> {
        let spec = ScenarioSpec::from_toml_str(&self.spec_toml)
            .map_err(|e| format!("embedded spec: {e}"))?;
        let model =
            CheckModel::from_spec(&spec, Some(self.seed)).map_err(|e| format!("compile: {e}"))?;
        let mut st = model.initial();
        for (i, c) in self.choices.iter().enumerate() {
            st.apply(*c)
                .map_err(|e| format!("replay diverged at choice {i}: {e}"))?;
        }
        st.check_eventual();
        let violation: Vec<String> = st
            .violation()
            .ok_or_else(|| "replay produced no violation".to_string())?
            .to_vec();
        if violation != self.violation {
            return Err(format!(
                "replay violated differently:\n  recorded: {:?}\n  replayed: {violation:?}",
                self.violation
            ));
        }
        if st.deliveries().len() != self.deliveries.len() {
            return Err(format!(
                "replay produced {} deliveries, file records {}",
                st.deliveries().len(),
                self.deliveries.len()
            ));
        }
        for (i, (a, b)) in st.deliveries().iter().zip(&self.deliveries).enumerate() {
            if (a.pid, a.time, a.fast, a.tag) != (b.pid, b.time, b.fast, b.tag) {
                return Err(format!(
                    "delivery {i} diverged: replayed (pid {}, t {}, fast {}, {:?}), \
                     recorded (pid {}, t {}, fast {}, {:?})",
                    a.pid, a.time, a.fast, a.tag, b.pid, b.time, b.fast, b.tag
                ));
            }
        }
        Ok(violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counterexample {
        Counterexample {
            scenario: "t".into(),
            strategy: "dfs".into(),
            seed: 9,
            depth_bound: 32,
            spec_toml: "name = \"t\"\nn = 2\n".into(),
            violation: vec!["agreement: x".into()],
            choices: vec![
                Choice::Broadcast,
                Choice::Deliver { slot: 1 },
                Choice::Drop { slot: 0 },
                Choice::Tick { pid: 1 },
                Choice::Crash { pid: 0 },
                Choice::TopicEvent,
            ],
            deliveries: vec![DeliveryRecord {
                pid: 1,
                topic: TopicId::ZERO,
                time: 2,
                fast: false,
                tag: Tag(0xABCD),
                payload: Payload::empty(),
            }],
        }
    }

    #[test]
    fn body_round_trips_through_parse() {
        let cx = sample();
        let body = cx.body_json();
        let parsed = Counterexample::parse(&body).unwrap();
        assert_eq!(parsed, cx);
        assert_eq!(parsed.body_json(), body, "byte-stable re-serialization");
    }

    #[test]
    fn enveloped_files_parse_too() {
        let cx = sample();
        let enveloped = format!(
            "{{\"schema_version\": 1, \"kind\": \"{KIND}\", \"seed\": 9, \
             \"git_rev\": \"x\", \"data\": {}}}",
            cx.body_json()
        );
        assert_eq!(Counterexample::parse(&enveloped).unwrap(), cx);
        let wrong = enveloped.replace(KIND, "bench-trajectory");
        assert!(Counterexample::parse(&wrong).unwrap_err().contains("kind"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Counterexample::parse("nope").is_err());
        assert!(Counterexample::parse("{}").is_err());
        let body = sample().body_json();
        let bad = body.replace("\"kind\": \"deliver\"", "\"kind\": \"teleport\"");
        assert!(Counterexample::parse(&bad)
            .unwrap_err()
            .contains("unknown choice kind"));
    }

    #[test]
    fn golden_trace_shape_is_preserved() {
        // The delivery rows must look exactly like tests/golden/*.json
        // rows: pid/topic/time/fast plus a 32-hex-digit 0x tag.
        let body = sample().body_json();
        assert!(
            body.contains(
                "{\"pid\": 1, \"topic\": 0, \"time\": 2, \"fast\": false, \
                 \"tag\": \"0x0000000000000000000000000000abcd\"}"
            ),
            "{body}"
        );
    }

    #[test]
    fn parse_defaults_missing_topic_to_zero() {
        // Pre-topic counterexample artifacts carry no `topic` key in
        // their delivery rows; they must still parse (as topic 0).
        let body = sample().body_json();
        let legacy = body.replace("\"topic\": 0, ", "");
        let cx = Counterexample::parse(&legacy).unwrap();
        assert_eq!(cx.deliveries[0].topic, TopicId::ZERO);
        // A *present but malformed* topic is a hard error, not topic 0.
        for bad in ["\"topic\": \"1\", ", "\"topic\": 4294967296, "] {
            let corrupted = body.replace("\"topic\": 0, ", bad);
            let err = Counterexample::parse(&corrupted).unwrap_err();
            assert!(err.contains("topic"), "{bad:?} → {err}");
        }
    }
}
