//! Persistent frontier cache: the explorer's state-hash/depth table,
//! serialized so CI's bounded search deepens monotonically across runs
//! instead of re-exploring the same prefix from scratch.
//!
//! # File format (schema version 1)
//!
//! Line-oriented and append-friendly. The first line is a JSON header,
//! validated and versioned like the bench trajectory envelope:
//!
//! ```text
//! {"schema_version":1,"kind":"check-cache","scenario":"two-topics-smoke","seed":11,"mode":"dfs","spec_digest":"a1b2c3d4e5f60718"}
//! ```
//!
//! Every following non-empty line is one *fully-explored subtree root*:
//!
//! ```text
//! <hash:016x> <remaining-depth> <delay-budget>
//! ```
//!
//! meaning: from a state with this digest, exploring every schedule of
//! up to `remaining-depth` further choices under `delay-budget` found no
//! violation. A probe for `(hash, R, b)` hits when some row **dominates**
//! it (`R' >= R` and `b' >= b`) — the cached exploration covered at
//! least as much as the probe is about to do. `remaining-depth` of
//! [`UNBOUNDED`] marks a run whose exploration never hit the depth
//! bound, so the subtree is exhausted outright and hits at *any* depth.
//!
//! # Soundness rules
//!
//! * The cache is only written after a run that **completed** (frontier
//!   drained, not truncated at the state cap) and found **no violation**
//!   — a witness stops exploration early, so "expanded" would not mean
//!   "subtree clean". For the same reason the cache is inert (probes
//!   disabled, nothing persisted) on scenarios that *expect* a
//!   violation, and on the `random` strategy, whose walks prove nothing
//!   about subtrees. The Theorem-2 must-find-violation CI job is
//!   therefore untouched by caching.
//! * The header binds the table to the scenario name, seed, strategy
//!   mode and a digest of the full spec TOML. A header that parses but
//!   binds to different inputs is **stale**, not corrupt: the file is
//!   ignored (cold start) and overwritten on save — editing a scenario
//!   must not poison its next check. A file that does not parse, or
//!   parses to the wrong schema version or kind, is a [`CacheError`]
//!   and exits 2 at the CLI, exactly like a malformed spec.
//! * Saves rewrite the whole file deterministically: union of loaded
//!   and freshly-explored rows, dominance-compacted, sorted. Equal
//!   inputs produce byte-equal cache files.

use crate::model::CheckModel;
use crate::Strategy;
use std::collections::HashMap;
use std::fmt;
use urb_sim::ScenarioSpec;

/// `kind` field of the cache header.
pub const CACHE_KIND: &str = "check-cache";
/// Current cache schema version.
pub const CACHE_SCHEMA_VERSION: u64 = 1;
/// `remaining-depth` marker for subtrees exhausted with no depth prune
/// anywhere below them: such rows dominate probes at every depth.
pub const UNBOUNDED: u32 = u32::MAX;

/// Cache effectiveness counters, reported in the JSON envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered by a dominating cached row (subtree skipped).
    pub hits: u64,
    /// Probes that found no dominating row.
    pub misses: u64,
    /// Rows loaded from the file at startup.
    pub loaded: u64,
    /// Rows written back at save time (0 when the run was not eligible).
    pub persisted: u64,
}

impl CacheStats {
    /// Fraction of probes answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Why a cache file was rejected. At the CLI these are exit-2 errors:
/// the input is unusable, not a verdict.
#[derive(Debug)]
pub enum CacheError {
    /// The file exists but could not be read, or the save failed.
    Io(String),
    /// The file is not a cache file (bad header/rows).
    Corrupt(String),
    /// The header parses but carries an unsupported schema version.
    Version(u64),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache io error: {e}"),
            CacheError::Corrupt(why) => write!(f, "corrupt cache file: {why}"),
            CacheError::Version(found) => write!(
                f,
                "cache schema version {found} unsupported (expected {CACHE_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

/// What a cache file is bound to: reusing rows is only sound against
/// the identical exploration inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheBinding {
    /// Scenario name.
    pub scenario: String,
    /// Resolved exploration seed (feeds the engines' tag streams).
    pub seed: u64,
    /// Strategy mode string, including whether the independence-based
    /// reduction was active (e.g. `dfs`, `dpor-lite+ind`).
    pub mode: String,
    /// FNV-1a digest of the full spec TOML, hex-encoded.
    pub spec_digest: String,
}

impl CacheBinding {
    /// Binds a cache to a spec + resolved strategy/seed. `dpor` is the
    /// *effective* reduction switch (it changes which states get
    /// materialized, so tables must not be shared across it).
    pub fn new(spec: &ScenarioSpec, strategy: Strategy, dpor: bool, seed: u64) -> Self {
        let toml = spec.to_toml();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for b in toml.as_bytes() {
            digest ^= *b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
        CacheBinding {
            scenario: spec.name.clone(),
            seed,
            mode: format!("{}{}", strategy.as_str(), if dpor { "+ind" } else { "" }),
            spec_digest: format!("{digest:016x}"),
        }
    }

    /// Convenience: binding for a model-backed run (seed already
    /// resolved by [`CheckModel::from_spec`]).
    pub fn for_model(
        spec: &ScenarioSpec,
        strategy: Strategy,
        dpor: bool,
        model: &CheckModel,
    ) -> Self {
        CacheBinding::new(spec, strategy, dpor, model.seed())
    }

    fn header_line(&self) -> String {
        format!(
            "{{\"schema_version\":{CACHE_SCHEMA_VERSION},\"kind\":\"{CACHE_KIND}\",\
             \"scenario\":{},\"seed\":{},\"mode\":{},\"spec_digest\":\"{}\"}}",
            json_string(&self.scenario),
            self.seed,
            json_string(&self.mode),
            self.spec_digest
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An open cache session: rows loaded from disk (when present and
/// binding-compatible), rows recorded by the current run, and the
/// bookkeeping to write a merged table back.
pub struct CacheSession {
    path: String,
    binding: CacheBinding,
    /// hash → maximal antichain of (remaining, budget) rows.
    loaded: HashMap<u64, Vec<(u32, u64)>>,
    loaded_rows: u64,
    stale: Option<String>,
    fresh: Vec<(u64, u32, u64)>,
    complete: Option<bool>,
}

impl CacheSession {
    /// Opens `path` against `binding`. A missing file is a cold start;
    /// an unreadable, corrupt or wrong-version file is a [`CacheError`];
    /// a valid file bound to different inputs is *stale* — ignored with
    /// the reason retrievable via [`CacheSession::stale`], then
    /// overwritten on the next save.
    pub fn open(path: &str, binding: CacheBinding) -> Result<Self, CacheError> {
        let mut session = CacheSession {
            path: path.to_string(),
            binding,
            loaded: HashMap::new(),
            loaded_rows: 0,
            stale: None,
            fresh: Vec::new(),
            complete: None,
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(session),
            Err(e) => return Err(CacheError::Io(e.to_string())),
        };
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let v: serde_json::Value = serde_json::from_str(header)
            .map_err(|e| CacheError::Corrupt(format!("header is not JSON: {e}")))?;
        let version = v["schema_version"]
            .as_u64()
            .ok_or_else(|| CacheError::Corrupt("header lacks schema_version".into()))?;
        if version != CACHE_SCHEMA_VERSION {
            return Err(CacheError::Version(version));
        }
        let kind = v["kind"]
            .as_str()
            .ok_or_else(|| CacheError::Corrupt("header lacks kind".into()))?;
        if kind != CACHE_KIND {
            return Err(CacheError::Corrupt(format!(
                "kind {kind:?} is not {CACHE_KIND:?}"
            )));
        }
        let field = |name: &str| v[name].as_str().map(str::to_string);
        let bound = (
            field("scenario"),
            v["seed"].as_u64(),
            field("mode"),
            field("spec_digest"),
        );
        let want = &session.binding;
        if bound
            != (
                Some(want.scenario.clone()),
                Some(want.seed),
                Some(want.mode.clone()),
                Some(want.spec_digest.clone()),
            )
        {
            session.stale = Some(format!(
                "bound to scenario={:?} seed={:?} mode={:?}; this run is scenario={:?} seed={} mode={:?}",
                bound.0, bound.1, bound.2, want.scenario, want.seed, want.mode
            ));
            return Ok(session);
        }
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_ascii_whitespace();
            let row = (|| {
                let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                let remaining: u32 = parts.next()?.parse().ok()?;
                let budget: u64 = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                Some((hash, remaining, budget))
            })();
            let Some((hash, remaining, budget)) = row else {
                return Err(CacheError::Corrupt(format!(
                    "row {} is not `<hash:016x> <remaining> <budget>`: {line:?}",
                    lineno + 2
                )));
            };
            insert_dominating(&mut session.loaded, hash, remaining, budget);
            session.loaded_rows += 1;
        }
        Ok(session)
    }

    /// Why the on-disk file was ignored, when it was binding-stale.
    pub fn stale(&self) -> Option<&str> {
        self.stale.as_deref()
    }

    /// Rows loaded (and usable) from the file.
    pub fn loaded_rows(&self) -> u64 {
        if self.stale.is_some() {
            0
        } else {
            self.loaded_rows
        }
    }

    /// True when a loaded row dominates `(hash, remaining, budget)`:
    /// the cached run already explored this subtree at least this deep
    /// with at least this delay budget. Read-only and lock-free — safe
    /// to call concurrently from exploration workers.
    pub fn probe(&self, hash: u64, remaining: u32, budget: u64) -> bool {
        self.loaded
            .get(&hash)
            .is_some_and(|rows| rows.iter().any(|&(r, b)| r >= remaining && b >= budget))
    }

    /// Records one fully-expanded subtree root from the current run.
    pub fn record(&mut self, hash: u64, remaining: u32, budget: u64) {
        self.fresh.push((hash, remaining, budget));
    }

    /// Marks the run cache-eligible: exploration drained its frontier
    /// without truncation and found no violation. `unbounded` upgrades
    /// the fresh rows to [`UNBOUNDED`] remaining-depth — the run never
    /// depth-pruned, so every recorded subtree is exhausted outright.
    pub fn mark_complete(&mut self, unbounded: bool) {
        self.complete = Some(unbounded);
    }

    /// Writes the merged table back. Without [`CacheSession::mark_complete`]
    /// this is a no-op (`Ok(0)`) and the file is left untouched. Returns
    /// the number of rows persisted.
    pub fn save(&self) -> Result<u64, CacheError> {
        let Some(unbounded) = self.complete else {
            return Ok(0);
        };
        let mut table: HashMap<u64, Vec<(u32, u64)>> = HashMap::new();
        if self.stale.is_none() {
            for (&hash, rows) in &self.loaded {
                for &(r, b) in rows {
                    insert_dominating(&mut table, hash, r, b);
                }
            }
        }
        for &(hash, remaining, budget) in &self.fresh {
            let r = if unbounded { UNBOUNDED } else { remaining };
            insert_dominating(&mut table, hash, r, budget);
        }
        let mut rows: Vec<(u64, u32, u64)> = table
            .into_iter()
            .flat_map(|(hash, rs)| rs.into_iter().map(move |(r, b)| (hash, r, b)))
            .collect();
        rows.sort_unstable();
        let mut out = self.binding.header_line();
        out.push('\n');
        for (hash, remaining, budget) in &rows {
            out.push_str(&format!("{hash:016x} {remaining} {budget}\n"));
        }
        std::fs::write(&self.path, out).map_err(|e| CacheError::Io(e.to_string()))?;
        Ok(rows.len() as u64)
    }
}

/// Inserts into a dominance antichain: drop the new row if dominated,
/// evict rows the new one dominates.
fn insert_dominating(map: &mut HashMap<u64, Vec<(u32, u64)>>, hash: u64, r: u32, b: u64) {
    let rows = map.entry(hash).or_default();
    if rows.iter().any(|&(r0, b0)| r0 >= r && b0 >= b) {
        return;
    }
    rows.retain(|&(r0, b0)| !(r >= r0 && b >= b0));
    rows.push((r, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_core::Algorithm;

    fn binding() -> CacheBinding {
        let spec = ScenarioSpec::new("cache-test", 3, Algorithm::Majority);
        CacheBinding::new(&spec, Strategy::Dfs, false, 7)
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("urb_cache_test_{}_{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn missing_file_is_a_cold_start() {
        let s = CacheSession::open(&tmp("missing.cache"), binding()).unwrap();
        assert_eq!(s.loaded_rows(), 0);
        assert!(s.stale().is_none());
        assert!(!s.probe(1, 1, 0));
    }

    #[test]
    fn roundtrip_is_deterministic_and_dominance_compacted() {
        let path = tmp("roundtrip.cache");
        let mut s = CacheSession::open(&path, binding()).unwrap();
        s.record(0xAAAA, 4, 1);
        s.record(0xAAAA, 8, 1); // dominates the row above
        s.record(0xBBBB, 2, 0);
        s.mark_complete(false);
        assert_eq!(s.save().unwrap(), 2, "dominated row compacted away");
        let bytes1 = std::fs::read(&path).unwrap();

        let warm = CacheSession::open(&path, binding()).unwrap();
        assert_eq!(warm.loaded_rows(), 2);
        assert!(warm.probe(0xAAAA, 8, 1));
        assert!(warm.probe(0xAAAA, 8, 0), "lower budget is dominated");
        assert!(!warm.probe(0xAAAA, 9, 1), "deeper probe misses");
        assert!(!warm.probe(0xCCCC, 1, 0));

        // Saving the merged (unchanged) table is byte-identical.
        let mut warm = warm;
        warm.mark_complete(false);
        warm.save().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbounded_upgrade_dominates_every_depth() {
        let path = tmp("unbounded.cache");
        let mut s = CacheSession::open(&path, binding()).unwrap();
        s.record(0x1234, 6, 2);
        s.mark_complete(true);
        s.save().unwrap();
        let warm = CacheSession::open(&path, binding()).unwrap();
        assert!(warm.probe(0x1234, 1_000_000, 2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incomplete_runs_never_touch_the_file() {
        let path = tmp("incomplete.cache");
        let mut s = CacheSession::open(&path, binding()).unwrap();
        s.record(1, 1, 1);
        assert_eq!(s.save().unwrap(), 0);
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn corrupt_and_wrong_version_files_are_errors() {
        let path = tmp("corrupt.cache");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            CacheSession::open(&path, binding()),
            Err(CacheError::Corrupt(_))
        ));
        std::fs::write(&path, "{\"schema_version\":99,\"kind\":\"check-cache\"}\n").unwrap();
        assert!(matches!(
            CacheSession::open(&path, binding()),
            Err(CacheError::Version(99))
        ));
        std::fs::write(&path, format!("{}\nzzzz nope\n", binding().header_line())).unwrap();
        assert!(matches!(
            CacheSession::open(&path, binding()),
            Err(CacheError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binding_mismatch_is_stale_not_corrupt() {
        let path = tmp("stale.cache");
        let mut s = CacheSession::open(&path, binding()).unwrap();
        s.record(7, 3, 0);
        s.mark_complete(false);
        s.save().unwrap();
        // Same file, different seed: stale, zero usable rows, no error.
        let spec = ScenarioSpec::new("cache-test", 3, Algorithm::Majority);
        let other = CacheBinding::new(&spec, Strategy::Dfs, false, 8);
        let s2 = CacheSession::open(&path, other).unwrap();
        assert!(s2.stale().is_some());
        assert_eq!(s2.loaded_rows(), 0);
        assert!(!s2.probe(7, 3, 0));
        std::fs::remove_file(&path).ok();
    }
}
