//! The exploration state machine: a scenario's protocol state as a pure,
//! replayable function of a **choice sequence**.
//!
//! The simulator resolves every source of nondeterminism — delivery
//! order, message loss, crash instants — from its seed; the checker
//! resolves the same nondeterminism from explicit [`Choice`]s instead,
//! so a schedule becomes a first-class, enumerable, serializable value.
//! A [`CheckModel`] is built from a [`ScenarioSpec`]; [`CheckState`]
//! applies choices one at a time through the engine's choice-point hooks
//! ([`urb_engine::drive_step_observed`] via
//! [`TopicEngine::step_observed`]), checks the URB integrity invariants
//! after every step, and evaluates the eventual properties (validity,
//! agreement) at *silent* states — states where no choice is enabled and
//! every surviving process is quiescent, so nothing can ever happen
//! again and "eventually" is decided.
//!
//! What carries over from the compiled scenario, and what the explorer
//! owns (DESIGN.md §11):
//!
//! * **carried over** — system size, algorithm, workload (in plan
//!   order), the crash *rules* (which processes the adversary may kill,
//!   and for `on_first_delivery` rules, when the choice arms), and
//!   structurally severed links (`loss = "always"` overrides);
//! * **replaced by choices** — probabilistic loss becomes the bounded
//!   [`Choice::Drop`] budget, delay distributions and blackout windows
//!   become [`Choice::Deliver`] *order*, tick phases become bounded
//!   [`Choice::Tick`]s. Time itself is abstracted to the step index.

use std::collections::BTreeSet;
use urb_core::Algorithm;
use urb_engine::{StepBuffers, StepInput, StepObserver, TopicEngine};
use urb_sim::checker::{check_urb, CheckReport};
use urb_sim::metrics::{BroadcastRecord, DeliveryRecord};
use urb_sim::{
    CheckBounds, CrashRule, LossModel, PlannedBroadcast, ScenarioSpec, SpecError, TopicAction,
    TopicEventCfg,
};
use urb_types::{
    Delivery, FdPair, FdSnapshot, FdView, Label, SplitMix64, Tag, TopicId, WireMessage,
};

/// One resolved nondeterministic decision — the unit of exploration and
/// of counterexample replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Issue the next planned `URB_broadcast` (plan order).
    Broadcast,
    /// Deliver the pending message at `slot` to its destination.
    Deliver {
        /// Index into the pending-message list at apply time.
        slot: usize,
    },
    /// Adversarially drop the pending message at `slot` (batch thinning;
    /// draws from the scenario's `check.max_drops` budget).
    Drop {
        /// Index into the pending-message list at apply time.
        slot: usize,
    },
    /// Run one Task-1 sweep at `pid` (draws from `check.tick_budget`).
    Tick {
        /// The sweeping process.
        pid: usize,
    },
    /// Crash `pid` (enabled only for processes the scenario's crash plan
    /// marks crash-eligible; `on_first_delivery` rules arm after the
    /// first URB-delivery at that process).
    Crash {
        /// The crashing process.
        pid: usize,
    },
    /// Apply the next planned topic-lifecycle event (DESIGN.md §15):
    /// create or retire the plan's topic at every surviving process
    /// atomically, exactly like the simulator's global lifecycle plane.
    /// The plan interleaves with broadcasts in compiled-time order (the
    /// cursor is implicit, like [`Choice::Broadcast`]'s), but the event
    /// itself is a first-class choice point: the explorer schedules it
    /// before or after any pending delivery, tick or crash, checking —
    /// among everything else — that no schedule delivers into a
    /// reclaimed instance.
    TopicEvent,
}

/// One undelivered wire message — a pending deliver-or-drop choice.
#[derive(Clone, Debug)]
pub struct PendingMsg {
    /// Sending process (provenance; drops are forbidden on self-links,
    /// which the fair-lossy model keeps reliable).
    pub from: usize,
    /// Destination process.
    pub to: usize,
    /// The URB instance the message belongs to ([`TopicId::ZERO`] on
    /// single-topic scenarios).
    pub topic: TopicId,
    /// The message itself.
    pub msg: WireMessage,
}

/// The immutable part of an exploration: everything derived from the
/// scenario spec once, shared by every replay.
pub struct CheckModel {
    n: usize,
    topics: u32,
    algorithm: Algorithm,
    seed: u64,
    planned: Vec<PlannedBroadcast>,
    topic_events: Vec<TopicEventCfg>,
    drain_ticks: u32,
    crash_rules: Vec<CrashRule>,
    severed: BTreeSet<(usize, usize)>,
    bounds: CheckBounds,
    needs_fd: bool,
}

impl CheckModel {
    /// Builds the model from a spec (compiling it first, so every spec
    /// validation error surfaces here). `seed` overrides the spec's seed
    /// when given — it feeds the engines' tag RNG streams and the
    /// random-walk strategy.
    pub fn from_spec(spec: &ScenarioSpec, seed: Option<u64>) -> Result<Self, SpecError> {
        let cfg = spec.compile()?;
        let mut planned = cfg.broadcasts.clone();
        planned.sort_by_key(|b| b.time);
        let severed = cfg
            .link_overrides
            .iter()
            .filter(|ov| matches!(ov.loss, LossModel::Always))
            .map(|ov| (ov.from, ov.to))
            .collect();
        Ok(CheckModel {
            n: cfg.n,
            topics: cfg.topics.max(1),
            algorithm: cfg.algorithm,
            seed: seed.unwrap_or(spec.seed),
            planned,
            topic_events: cfg.topic_events.clone(),
            drain_ticks: cfg.drain_ticks,
            crash_rules: (0..cfg.n).map(|i| cfg.crashes.rule(i)).collect(),
            severed,
            bounds: spec.check.clone(),
            needs_fd: cfg.algorithm.needs_fd(),
        })
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exploration bounds the spec shipped (`[check]` table).
    pub fn bounds(&self) -> &CheckBounds {
        &self.bounds
    }

    /// The seed the engines derive their tag streams from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the scenario's crash plan can ever kill `pid` — i.e. its
    /// rule is anything but [`CrashRule::Never`]. The independence
    /// relation uses this: deliveries whose destinations the adversary
    /// can never crash commute freely, because no [`Choice::Crash`] can
    /// be interleaved between them to erase one of the two.
    pub fn crash_eligible(&self, pid: usize) -> bool {
        !matches!(self.crash_rules[pid], CrashRule::Never)
    }

    /// A fresh initial state (same engine seeding scheme as the
    /// simulator — one protocol instance per topic sharing the node's RNG
    /// stream — so the canonical FIFO exploration mirrors a seeded run).
    pub fn initial(&self) -> CheckState<'_> {
        let seed_mix = SplitMix64::new(self.seed ^ 0x5EED_0F00_D000_0001);
        let engines = (0..self.n)
            .map(|i| {
                let mut e = TopicEngine::new(
                    (0..self.topics)
                        .map(|_| self.algorithm.instantiate(self.n))
                        .collect(),
                    seed_mix.split(i as u64),
                );
                e.set_drain_limit(self.drain_ticks);
                e
            })
            .collect();
        CheckState {
            model: self,
            engines,
            pending: Vec::new(),
            crashed: vec![false; self.n],
            delivered_once: vec![false; self.n],
            next_broadcast: 0,
            next_topic_event: 0,
            drops_used: 0,
            ticks_used: vec![0; self.n],
            steps: 0,
            broadcasts: Vec::new(),
            deliveries: Vec::new(),
            violation: None,
            scratch: StepBuffers::new(),
        }
    }
}

/// Effects of one engine step, captured through the choice-point hooks.
#[derive(Default)]
struct Effects {
    emitted: Vec<WireMessage>,
    delivered: Vec<Delivery>,
}

impl StepObserver for Effects {
    fn on_emit(&mut self, msg: &WireMessage) {
        self.emitted.push(msg.clone());
    }
    fn on_deliver(&mut self, delivery: &Delivery) {
        self.delivered.push(delivery.clone());
    }
}

/// One explored protocol state: the engines plus the explorer-owned
/// network/adversary bookkeeping. Reconstructed by replaying a choice
/// prefix from [`CheckModel::initial`] (states are not clonable — the
/// protocol instances are trait objects — so the explorer is *stateless*
/// in the model-checking sense).
pub struct CheckState<'m> {
    model: &'m CheckModel,
    engines: Vec<TopicEngine>,
    /// Pending messages, in routing order; `Choice::Deliver`/`Drop`
    /// slots index this list at apply time.
    pending: Vec<PendingMsg>,
    crashed: Vec<bool>,
    delivered_once: Vec<bool>,
    next_broadcast: usize,
    next_topic_event: usize,
    drops_used: u32,
    ticks_used: Vec<u32>,
    steps: u64,
    broadcasts: Vec<BroadcastRecord>,
    deliveries: Vec<DeliveryRecord>,
    violation: Option<Vec<String>>,
    scratch: StepBuffers,
}

impl<'m> CheckState<'m> {
    /// The URB-deliveries this execution produced so far.
    pub fn deliveries(&self) -> &[DeliveryRecord] {
        &self.deliveries
    }

    /// The pending messages, in routing order — the list
    /// [`Choice::Deliver`]/[`Choice::Drop`] slots index at apply time.
    /// The explorer reads it to name a slot's message by *identity*
    /// (`from`, `to`, topic, content) rather than by its shifting index,
    /// which is what the DPOR sleep sets key on.
    pub fn pending(&self) -> &[PendingMsg] {
        &self.pending
    }

    /// The first invariant violation this execution hit, if any
    /// (stepwise integrity, or the eventual properties at a silent
    /// state).
    pub fn violation(&self) -> Option<&[String]> {
        self.violation.as_deref()
    }

    /// Number of choices applied so far.
    pub fn depth(&self) -> u64 {
        self.steps
    }

    /// The perfect-detector snapshot the explorer hands every step of an
    /// FD-using algorithm: one label per *currently alive* process
    /// (crashed labels removed instantly), each attributed
    /// `number = |alive ∧ crash-eligible| + 1`. That is the smallest
    /// attribution that keeps the `AΘ` **accuracy** axiom true in every
    /// completion the explorer can still choose: any `number`-sized
    /// subset of the label's knowers (all alive processes) must contain
    /// one the adversary can never crash, because at most
    /// `|alive ∧ crash-eligible|` of them are killable. Over-counting is
    /// the safe direction — the protocol never delivers or prunes on the
    /// strength of processes a later [`Choice::Crash`] could erase, so a
    /// violation found under this detector is the algorithm's, not the
    /// model's (DESIGN.md §11).
    fn fd_snapshot(&self) -> FdSnapshot {
        if !self.model.needs_fd {
            return FdSnapshot::none();
        }
        let crashable_alive = (0..self.model.n)
            .filter(|&i| !self.crashed[i] && !matches!(self.model.crash_rules[i], CrashRule::Never))
            .count() as u32;
        let view: FdView = (0..self.model.n)
            .filter(|&i| !self.crashed[i])
            .map(|i| FdPair {
                label: Label(i as u64 + 1),
                number: crashable_alive + 1,
            })
            .collect();
        FdSnapshot {
            a_theta: view.clone(),
            a_p_star: view,
        }
    }

    /// Routes one emitted message to every destination: severed links
    /// swallow their copy structurally (no budget), copies to crashed
    /// processes vanish, everything else becomes a pending choice.
    fn route(&mut self, from: usize, topic: TopicId, msg: &WireMessage) {
        for to in 0..self.model.n {
            if self.model.severed.contains(&(from, to)) || self.crashed[to] {
                continue;
            }
            self.pending.push(PendingMsg {
                from,
                to,
                topic,
                msg: msg.clone(),
            });
        }
    }

    fn record_deliveries(&mut self, pid: usize, topic: TopicId, delivered: &[Delivery]) {
        for d in delivered {
            self.delivered_once[pid] = true;
            self.deliveries.push(DeliveryRecord {
                pid,
                topic,
                tag: d.tag,
                time: self.steps,
                fast: d.fast,
                payload: d.payload.clone(),
            });
        }
        if !delivered.is_empty() {
            self.check_integrity();
        }
    }

    /// Stepwise invariant: uniform integrity (no duplicate, no phantom,
    /// no garbled payload) must hold after *every* step, not just at the
    /// end of an execution.
    fn check_integrity(&mut self) {
        if self.violation.is_some() {
            return;
        }
        let correct: Vec<bool> = self.crashed.iter().map(|c| !c).collect();
        let report = check_urb(self.model.n, &correct, &self.broadcasts, &self.deliveries);
        if !report.integrity.ok() {
            self.violation = Some(
                report
                    .violations()
                    .iter()
                    .filter(|v| v.starts_with("integrity"))
                    .map(|v| v.to_string())
                    .collect(),
            );
        }
    }

    /// Enumerates the enabled choices in **canonical order** — the order
    /// the DFS dives along and the `dpor-lite` strategy charges
    /// deviations against: broadcast, then deliveries FIFO, then armed
    /// crashes, then ticks, then drops. The prefix of this order (always
    /// index 0) is the causal "deliver everything, then let the
    /// adversary act" schedule, which reaches the interesting
    /// crash-after-delivery states at minimal depth.
    pub fn enabled_choices(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        if self.violation.is_some() {
            return out; // a violated execution stops here
        }
        // The two plan cursors — broadcasts and lifecycle events — fire
        // in compiled-time order (ties: broadcast first), so at most one
        // of them is enabled in any state; each is still a free choice
        // point against deliveries, ticks and crashes.
        match (
            self.model.planned.get(self.next_broadcast),
            self.model.topic_events.get(self.next_topic_event),
        ) {
            (Some(b), Some(e)) if e.time < b.time => out.push(Choice::TopicEvent),
            (Some(_), _) => out.push(Choice::Broadcast),
            (None, Some(_)) => out.push(Choice::TopicEvent),
            (None, None) => {}
        }
        for slot in 0..self.pending.len() {
            out.push(Choice::Deliver { slot });
        }
        for pid in 0..self.model.n {
            if self.crashed[pid] {
                continue;
            }
            let armed = match self.model.crash_rules[pid] {
                CrashRule::Never => false,
                CrashRule::At(_) => true,
                CrashRule::OnFirstDelivery { .. } => self.delivered_once[pid],
            };
            if armed {
                out.push(Choice::Crash { pid });
            }
        }
        for pid in 0..self.model.n {
            if !self.crashed[pid]
                && self.ticks_used[pid] < self.model.bounds.tick_budget
                && !self.engines[pid].is_quiescent()
            {
                out.push(Choice::Tick { pid });
            }
        }
        if self.drops_used < self.model.bounds.max_drops {
            for (slot, p) in self.pending.iter().enumerate() {
                if p.from != p.to {
                    out.push(Choice::Drop { slot });
                }
            }
        }
        out
    }

    /// Applies one choice. Returns `Err` when the choice is not enabled
    /// in this state — replays of a stale or hand-edited counterexample
    /// fail loudly instead of diverging silently.
    pub fn apply(&mut self, choice: Choice) -> Result<(), String> {
        let enabled = self.enabled_choices();
        if !enabled.contains(&choice) {
            return Err(format!(
                "choice {choice:?} not enabled at step {} (enabled: {enabled:?})",
                self.steps
            ));
        }
        self.apply_trusted(choice);
        Ok(())
    }

    /// [`CheckState::apply`] without the enabled-check: the explorer's
    /// hot path. Its choices come from [`CheckState::enabled_choices`]
    /// on the deterministic same-prefix state, so re-validating each one
    /// would re-enumerate the full choice list per replayed step.
    /// Untrusted input (counterexample files) must go through
    /// [`CheckState::apply`].
    pub(crate) fn apply_trusted(&mut self, choice: Choice) {
        self.steps += 1;
        match choice {
            Choice::Broadcast => {
                let b = self.model.planned[self.next_broadcast].clone();
                self.next_broadcast += 1;
                if self.crashed[b.pid] {
                    return; // invoking a crashed process is a no-op
                }
                if !self.engines[b.pid].is_live(b.topic) {
                    // Refused invocation (DESIGN.md §15): the target
                    // topic is not live at this process — same inert
                    // outcome as the simulator's out-of-window guard.
                    return;
                }
                let fd = self.fd_snapshot();
                let mut effects = Effects::default();
                let mut scratch = std::mem::take(&mut self.scratch);
                let tag = self.engines[b.pid]
                    .step_observed(
                        b.topic,
                        StepInput::Broadcast(b.payload.clone()),
                        &fd,
                        &mut scratch,
                        &mut effects,
                    )
                    .expect("urb_broadcast assigns a tag");
                self.scratch = scratch;
                self.broadcasts.push(BroadcastRecord {
                    pid: b.pid,
                    topic: b.topic,
                    tag,
                    time: self.steps,
                    payload: b.payload,
                });
                self.finish_step(b.pid, b.topic, effects);
            }
            Choice::Deliver { slot } => {
                let p = self.pending.remove(slot);
                if !self.engines[p.to].has_instance(p.topic) {
                    // Delivery into a retired (reclaimed) instance is
                    // inert: the copy is consumed, no engine steps —
                    // the model-level statement of "retirement frees
                    // state without reviving it".
                    return;
                }
                let fd = self.fd_snapshot();
                let mut effects = Effects::default();
                let mut scratch = std::mem::take(&mut self.scratch);
                self.engines[p.to].step_observed(
                    p.topic,
                    StepInput::Receive(p.msg),
                    &fd,
                    &mut scratch,
                    &mut effects,
                );
                self.scratch = scratch;
                self.finish_step(p.to, p.topic, effects);
            }
            Choice::Drop { slot } => {
                self.pending.remove(slot);
                self.drops_used += 1;
            }
            Choice::Tick { pid } => {
                // One node tick sweeps Task 1 of *every* topic instance,
                // matching the simulator's topic-plane semantics (one
                // budget unit per node tick, however many topics it has).
                self.ticks_used[pid] += 1;
                let fd = self.fd_snapshot();
                let topics: Vec<TopicId> = self.engines[pid].instance_topics().collect();
                for topic in topics {
                    let mut effects = Effects::default();
                    let mut scratch = std::mem::take(&mut self.scratch);
                    self.engines[pid].step_observed(
                        topic,
                        StepInput::Tick,
                        &fd,
                        &mut scratch,
                        &mut effects,
                    );
                    self.scratch = scratch;
                    self.finish_step(pid, topic, effects);
                }
                // The tick is also the reap point (the simulator's
                // quiescence rule): drained instances free their state
                // here, never mid-delivery.
                if !self.model.topic_events.is_empty() {
                    self.engines[pid].reap_drained(&fd);
                }
            }
            Choice::Crash { pid } => {
                self.crashed[pid] = true;
                // Copies addressed to the dead process are gone; the
                // slot renumbering is deterministic, so replay agrees.
                self.pending.retain(|p| p.to != pid);
            }
            Choice::TopicEvent => {
                let e = self.model.topic_events[self.next_topic_event].clone();
                self.next_topic_event += 1;
                match e.action {
                    TopicAction::Create { topic, algorithm } => {
                        let alg = algorithm.unwrap_or(self.model.algorithm);
                        for pid in 0..self.model.n {
                            if !self.crashed[pid] {
                                self.engines[pid]
                                    .create_topic(topic, alg.instantiate(self.model.n));
                            }
                        }
                    }
                    TopicAction::Retire { topic } => {
                        for pid in 0..self.model.n {
                            if !self.crashed[pid] {
                                self.engines[pid].retire_topic(topic);
                            }
                        }
                    }
                }
            }
        }
    }

    fn finish_step(&mut self, pid: usize, topic: TopicId, effects: Effects) {
        for m in &effects.emitted {
            self.route(pid, topic, m);
        }
        self.record_deliveries(pid, topic, &effects.delivered);
    }

    /// True when no choice is enabled *and* every surviving process is
    /// quiescent: nothing can ever happen again, so the eventual URB
    /// properties are decided. (A state that merely ran out of tick
    /// budget while a process still holds retransmittable state is *not*
    /// silent — exploring it further is inconclusive, never a verdict.)
    pub fn is_silent(&self) -> bool {
        self.violation.is_none()
            && self.next_broadcast == self.model.planned.len()
            && self.next_topic_event == self.model.topic_events.len()
            && self.pending.is_empty()
            && self
                .engines
                .iter()
                .enumerate()
                .all(|(i, e)| self.crashed[i] || e.is_quiescent())
    }

    /// The full URB report of this execution (integrity stepwise plus —
    /// meaningful only at [`CheckState::is_silent`] states — validity
    /// and agreement with `correct = never crashed here`).
    pub fn report(&self) -> CheckReport {
        let correct: Vec<bool> = self.crashed.iter().map(|c| !c).collect();
        check_urb(self.model.n, &correct, &self.broadcasts, &self.deliveries)
    }

    /// Evaluates the eventual properties at a silent state, recording a
    /// violation if any. Returns true when a new violation was recorded.
    pub fn check_eventual(&mut self) -> bool {
        if !self.is_silent() || self.violation.is_some() {
            return false;
        }
        let report = self.report();
        if report.all_ok() {
            return false;
        }
        self.violation = Some(report.violations().iter().map(|v| v.to_string()).collect());
        true
    }

    /// The pruning digest: per-node semantic fingerprints
    /// ([`TopicEngine::fingerprint`]), the crash set, the pending-message
    /// *multiset* of `(from, to, content)` triples (sorted, so slot
    /// order — which is behaviourally irrelevant — does not split
    /// states; `from` is kept because it decides droppability, so a
    /// self-copy and a peer copy of the same message never collide), the
    /// per-process delivered sets and the budget counters. Approximate
    /// by construction:
    /// distinct states may digest equally (pruning gets coarser, bounded
    /// search was incomplete anyway); violations are checked *before*
    /// pruning, so a collision never hides one (DESIGN.md §11).
    pub fn state_hash(&self) -> u64 {
        fn fold(h: &mut u64, word: u64) {
            for b in word.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (i, e) in self.engines.iter().enumerate() {
            fold(
                &mut h,
                if self.crashed[i] {
                    0xDEAD
                } else {
                    e.fingerprint()
                },
            );
        }
        let mut pend: Vec<u64> = self
            .pending
            .iter()
            .map(|p| {
                (((p.from as u64) << 32) | p.to as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(p.topic.mix(p.msg.content_hash()))
            })
            .collect();
        pend.sort_unstable();
        for x in pend {
            fold(&mut h, x);
        }
        // Delivered (pid, tag) pairs, order-insensitively.
        let mut delivered = 0u64;
        for d in &self.deliveries {
            let mut one = 0x100_0001u64;
            fold(&mut one, d.pid as u64);
            fold(&mut one, (d.tag.0 >> 64) as u64);
            fold(&mut one, d.tag.0 as u64);
            delivered ^= one;
        }
        fold(&mut h, delivered);
        fold(&mut h, self.next_broadcast as u64);
        // Folded only on lifecycle scenarios, so static digests (and the
        // persistent state-hash caches built from them) are unchanged.
        if !self.model.topic_events.is_empty() {
            fold(&mut h, self.next_topic_event as u64);
        }
        fold(&mut h, self.drops_used as u64);
        for t in &self.ticks_used {
            fold(&mut h, *t as u64);
        }
        h
    }

    /// Topic instances reclaimed so far, summed over every engine — the
    /// model-checker's view of the lifecycle counters
    /// ([`urb_engine::EngineCounters::topics_reclaimed`]).
    pub fn topics_reclaimed(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.counters().topics_reclaimed)
            .sum()
    }

    /// Tags delivered by `pid` (test helper).
    pub fn delivered_set(&self, pid: usize) -> BTreeSet<Tag> {
        self.deliveries
            .iter()
            .filter(|d| d.pid == pid)
            .map(|d| d.tag)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_sim::ScenarioSpec;

    fn majority_spec(n: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new("model-test", n, Algorithm::Majority);
        spec.seed = 7;
        spec
    }

    #[test]
    fn canonical_path_delivers_everywhere() {
        // Always taking the first enabled choice = the causal FIFO
        // schedule: one broadcast, all copies delivered, everyone
        // URB-delivers, no violation.
        let model = CheckModel::from_spec(&majority_spec(3), None).unwrap();
        let mut st = model.initial();
        let mut guard = 0;
        loop {
            let en = st.enabled_choices();
            let Some(&first) = en.first() else { break };
            st.apply(first).unwrap();
            guard += 1;
            assert!(guard < 500, "canonical path must terminate");
        }
        assert!(st.violation().is_none());
        for pid in 0..3 {
            assert_eq!(st.delivered_set(pid).len(), 1, "pid {pid}");
        }
        assert!(st.report().all_ok());
    }

    #[test]
    fn replaying_the_same_choices_is_deterministic() {
        let model = CheckModel::from_spec(&majority_spec(3), None).unwrap();
        let run = || {
            let mut st = model.initial();
            let mut path = Vec::new();
            for _ in 0..25 {
                let en = st.enabled_choices();
                let Some(&c) = en.last() else { break };
                st.apply(c).unwrap();
                path.push(c);
            }
            (path, st.state_hash(), st.deliveries().len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drops_respect_budget_and_self_links() {
        let mut spec = majority_spec(2);
        spec.check.max_drops = 1;
        let model = CheckModel::from_spec(&spec, None).unwrap();
        let mut st = model.initial();
        st.apply(Choice::Broadcast).unwrap();
        // Pending: copies to self (0→0) and to 1. Only the cross copy is
        // droppable.
        let drops: Vec<Choice> = st
            .enabled_choices()
            .into_iter()
            .filter(|c| matches!(c, Choice::Drop { .. }))
            .collect();
        assert_eq!(drops.len(), 1, "self-link copies are not droppable");
        st.apply(drops[0]).unwrap();
        assert!(
            !st.enabled_choices()
                .iter()
                .any(|c| matches!(c, Choice::Drop { .. })),
            "budget of 1 exhausted"
        );
    }

    #[test]
    fn crash_choices_arm_per_the_crash_rules() {
        let mut spec = majority_spec(3);
        spec.crashes = vec![
            urb_sim::spec::CrashRuleSpec {
                pid: 1,
                rule: CrashRule::At(100),
            },
            urb_sim::spec::CrashRuleSpec {
                pid: 2,
                rule: CrashRule::OnFirstDelivery { delay: 0 },
            },
        ];
        let model = CheckModel::from_spec(&spec, None).unwrap();
        let st = model.initial();
        let crashes: Vec<Choice> = st
            .enabled_choices()
            .into_iter()
            .filter(|c| matches!(c, Choice::Crash { .. }))
            .collect();
        // pid 0 is plan-correct (never crashable); pid 2's rule arms only
        // after its first delivery; pid 1 is crashable immediately.
        assert_eq!(crashes, vec![Choice::Crash { pid: 1 }]);
    }

    #[test]
    fn applying_a_disabled_choice_fails_loudly() {
        let model = CheckModel::from_spec(&majority_spec(2), None).unwrap();
        let mut st = model.initial();
        assert!(st.apply(Choice::Deliver { slot: 0 }).is_err());
        assert!(st.apply(Choice::Crash { pid: 0 }).is_err(), "plan-correct");
    }

    fn lifecycle_spec() -> ScenarioSpec {
        ScenarioSpec::from_toml_str(
            "name = \"check-lifecycle\"\nn = 3\nalgorithm = \"quiescent\"\nseed = 11\n\
             [topics]\ncount = 1\ndrain_ticks = 4\n\
             [[topics.events]]\nat = 100\ncreate = 1\n\
             [[topics.events]]\nat = 900\nretire = 1\n\
             [[workload.explicit]]\ntime = 150\npid = 0\ntopic = 1\npayload = \"dyn\"\n\
             [check]\ntick_budget = 8\n",
        )
        .unwrap()
    }

    #[test]
    fn lifecycle_canonical_path_delivers_retires_and_reclaims() {
        // Plan order: create (t=100) → broadcast (t=150) → retire
        // (t=900); the canonical walk interleaves deliveries and ticks,
        // ends silent, and every engine has reclaimed the instance.
        let model = CheckModel::from_spec(&lifecycle_spec(), None).unwrap();
        let mut st = model.initial();
        let mut guard = 0;
        loop {
            let en = st.enabled_choices();
            let Some(&first) = en.first() else { break };
            st.apply(first).unwrap();
            guard += 1;
            assert!(guard < 1000, "canonical lifecycle path must terminate");
        }
        assert!(st.violation().is_none());
        for pid in 0..3 {
            assert_eq!(st.delivered_set(pid).len(), 1, "pid {pid}");
        }
        st.check_eventual();
        assert!(st.is_silent(), "retired state must not block silence");
        assert!(st.report().all_ok());
        assert_eq!(st.topics_reclaimed(), 3, "every engine freed the instance");
    }

    #[test]
    fn lifecycle_events_gate_on_plan_order_and_replay_deterministically() {
        let model = CheckModel::from_spec(&lifecycle_spec(), None).unwrap();
        let st = model.initial();
        let en = st.enabled_choices();
        // The create (t=100) precedes the broadcast (t=150), so only the
        // lifecycle cursor is enabled among the plan choices.
        assert!(en.contains(&Choice::TopicEvent));
        assert!(!en.contains(&Choice::Broadcast));
        let run = || {
            let mut st = model.initial();
            let mut path = Vec::new();
            for _ in 0..60 {
                let en = st.enabled_choices();
                let Some(&c) = en.last() else { break };
                st.apply(c).unwrap();
                path.push(c);
            }
            (path, st.state_hash(), st.deliveries().len())
        };
        assert_eq!(run(), run(), "lifecycle choices replay byte-identically");
    }

    #[test]
    fn delivery_into_a_reclaimed_instance_is_inert() {
        // Create, broadcast, then retire + reap *before* delivering the
        // relay copies: every pending delivery must be consumed without
        // stepping a reclaimed engine, and the run stays violation-free
        // (retirement truncates "eventually"; it never corrupts).
        let model = CheckModel::from_spec(&lifecycle_spec(), None).unwrap();
        let mut st = model.initial();
        st.apply(Choice::TopicEvent).unwrap(); // create everywhere
        st.apply(Choice::Broadcast).unwrap(); // pid 0 seeds topic 1
        assert!(!st.pending().is_empty());
        st.apply(Choice::TopicEvent).unwrap(); // retire everywhere
                                               // Drain ticks until every engine reaped (budget 4 per instance).
        for _ in 0..6 {
            for pid in 0..3 {
                if st.enabled_choices().contains(&Choice::Tick { pid }) {
                    st.apply(Choice::Tick { pid }).unwrap();
                }
            }
        }
        assert_eq!(st.topics_reclaimed(), 3);
        while let Some(&c) = st
            .enabled_choices()
            .iter()
            .find(|c| matches!(c, Choice::Deliver { .. }))
        {
            st.apply(c).unwrap();
        }
        assert!(st.pending().is_empty());
        assert_eq!(
            st.topics_reclaimed(),
            3,
            "inert deliveries never revive a reclaimed instance"
        );
        // Retiring *before* the topic quiesced forfeits "eventually":
        // the checker still judges the obligation incurred while live,
        // so this schedule surfaces a validity violation — exactly the
        // quiescence rule DESIGN.md §15 documents. Integrity (no
        // phantom, no duplicate) survives: inert drops corrupt nothing.
        st.check_eventual();
        let violation = st.violation().expect("early retire loses validity");
        assert!(
            violation.iter().all(|v| v.starts_with("validity")),
            "{violation:?}"
        );
        assert!(st.report().integrity.ok());
    }

    #[test]
    fn silent_state_requires_quiescence() {
        // Majority never quiesces while it holds a message, so a fully
        // delivered state is not silent — no spurious eventual verdicts.
        let model = CheckModel::from_spec(&majority_spec(2), None).unwrap();
        let mut st = model.initial();
        let mut guard = 0;
        loop {
            let en = st.enabled_choices();
            let Some(&first) = en.first() else { break };
            st.apply(first).unwrap();
            guard += 1;
            assert!(guard < 200);
        }
        assert!(!st.is_silent(), "alg1 processes still hold state");
        assert!(!st.check_eventual());
        assert!(st.violation().is_none());
    }
}
