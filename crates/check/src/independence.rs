//! The explicit independence relation behind the `dpor-lite` strategy's
//! sleep sets: which pairs of delivery choices *commute* — executing
//! them in either order reaches the same [`state_hash`] and enables the
//! same future behaviour — so exploring both orders is redundant.
//!
//! [`state_hash`]: crate::model::CheckState::state_hash
//! [`Choice::Deliver`]: crate::model::Choice::Deliver
//! [`Choice::Crash`]: crate::model::Choice::Crash
//!
//! # Why deliveries commute
//!
//! A [`Choice::Deliver`] steps exactly one node's
//! [`TopicEngine`](urb_engine::TopicEngine). Two deliveries `a` and `b`
//! are declared independent when they target **different nodes**: the
//! two engines are fully disjoint — per-topic instance state *and* the
//! node's tag RNG stream — and neither delivery affects the other's
//! pending entry. A delivery only *appends* to the pending list (relay
//! and ack copies), never removes or reorders another message; the
//! emitted batches are the same either way because each depends only on
//! its own engine's state; and the state digest treats pending as a
//! multiset, so append order is invisible. Both orders land on the same
//! [`state_hash`].
//!
//! Note what is **not** sufficient: two deliveries to the *same* node in
//! *different topics*. Topic instances inside one node isolate their
//! protocol state, but they share the node's tag RNG stream, and the
//! quiescent algorithm draws a fresh random `TagAck` on every receive —
//! so the order of two same-node deliveries is observable in the RNG
//! cursor (and in the drawn tags) even across topics. Topic-awareness
//! instead lives one level down: [`DeliveryId`] carries the topic, so
//! sleep sets distinguish copies of one payload fanned out across
//! instances, and cross-topic schedules still collapse wherever the
//! destinations differ.
//!
//! # The crash caveat
//!
//! The commutation argument reasons about the two adjacent schedules
//! `…·a·b·…` and `…·b·a·…`. It stays sound for the *whole subtree* only
//! if no interleaved [`Choice::Crash`] can erase one of the two
//! messages: crashing `a.to` between `b` and `a` kills `a`'s copy in one
//! order but not the other. Rather than model that interaction, the
//! relation is conservative: deliveries are independent only when
//! **neither destination is crash-eligible**
//! ([`CheckModel::crash_eligible`]). Crash-free scenarios (and the
//! crash-free majority of nodes in crashy ones) get the full reduction;
//! deliveries to killable nodes are always treated as dependent.
//!
//! Conservatism is the safe direction: declaring a commuting pair
//! dependent merely re-explores an equivalent interleaving (the
//! state-hash table then prunes it one step later); declaring a
//! non-commuting pair independent would silently skip reachable states.
//! The DPOR soundness tests pin the reachable-fingerprint set at the
//! bound with the reduction on and off.

use crate::model::{CheckModel, PendingMsg};
use urb_types::TopicId;

/// A pending message named by *identity* instead of by its pending-list
/// slot. Slots shift as `Vec::remove` compacts the list, so sleep-set
/// entries must survive renumbering; `(from, to, topic, content)` is
/// exactly the quadruple the state digest uses per pending entry, so two
/// ids are equal iff the digest cannot tell the messages apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeliveryId {
    /// Sending process.
    pub from: usize,
    /// Destination process — the node whose engine the delivery steps.
    pub to: usize,
    /// The URB instance the message belongs to.
    pub topic: TopicId,
    /// Content digest of the wire message.
    pub content: u64,
}

impl DeliveryId {
    /// The identity of one pending message.
    pub fn of(p: &PendingMsg) -> Self {
        DeliveryId {
            from: p.from,
            to: p.to,
            topic: p.topic,
            content: p.msg.content_hash(),
        }
    }
}

/// True when delivering `a` and delivering `b` commute in every
/// completion the explorer can still schedule (see the module docs for
/// the argument): different destination nodes, neither of them
/// crash-eligible.
pub fn independent(model: &CheckModel, a: DeliveryId, b: DeliveryId) -> bool {
    if a.to == b.to {
        // Same engine, or same tag-RNG stream across that node's topic
        // instances: order is observable.
        return false;
    }
    !model.crash_eligible(a.to) && !model.crash_eligible(b.to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_core::Algorithm;
    use urb_sim::{CrashRule, ScenarioSpec};

    fn id(from: usize, to: usize, topic: u32, content: u64) -> DeliveryId {
        DeliveryId {
            from,
            to,
            topic: TopicId(topic),
            content,
        }
    }

    #[test]
    fn relation_is_symmetric_and_topic_aware() {
        let spec = ScenarioSpec::new("ind", 3, Algorithm::Quiescent);
        let model = CheckModel::from_spec(&spec, None).unwrap();
        let a = id(0, 1, 0, 10);
        let b = id(0, 2, 0, 10);
        let c = id(0, 1, 1, 11);
        // Different nodes, no crash rules: commute.
        assert!(independent(&model, a, b));
        assert!(independent(&model, b, a));
        // Same node, different topics: the shared tag-RNG stream makes
        // the order observable — never independent.
        assert!(!independent(&model, a, c));
        // Same node, same topic: never.
        assert!(!independent(&model, a, id(2, 1, 0, 12)));
    }

    #[test]
    fn crash_eligible_destinations_break_independence() {
        let mut spec = ScenarioSpec::new("ind-crash", 3, Algorithm::Quiescent);
        spec.crashes = vec![urb_sim::spec::CrashRuleSpec {
            pid: 1,
            rule: CrashRule::At(5),
        }];
        let model = CheckModel::from_spec(&spec, None).unwrap();
        assert!(model.crash_eligible(1));
        assert!(!model.crash_eligible(2));
        // A killable destination makes the pair dependent even across
        // nodes — an interleaved crash distinguishes the two orders.
        assert!(!independent(&model, id(0, 1, 0, 1), id(0, 2, 0, 2)));
        // Both destinations safe: the reduction applies.
        assert!(independent(&model, id(1, 0, 0, 1), id(1, 2, 0, 2)));
    }
}
