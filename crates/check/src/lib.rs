//! # `urb-check`
//!
//! The **exploration plane** (DESIGN.md §11): a bounded systematic
//! schedule checker for the paper's protocols. The simulator executes
//! *one* schedule per seed; the paper's claims quantify over *all*
//! admissible executions. This crate closes part of that gap: it drives
//! the same `urb-engine` step path the simulator and runtime use through
//! explicit permutations of message-delivery order, adversarial message
//! drops (batch thinning) and crash points, checking the URB invariants
//! at every step and the scenario's `[expect]` verdict at every silent
//! state — a model checker over the scenario plane, in which any seeded
//! run is just one path of the choice tree.
//!
//! * [`model`] — the replayable state machine: a [`model::CheckModel`]
//!   compiled from a [`urb_sim::ScenarioSpec`], stepped by explicit
//!   [`model::Choice`]s through the engine's choice-point hooks;
//! * [`explorer`] — the strategies (bounded DFS with state-hash
//!   pruning, delay-bounded `dpor-lite`, seeded random walks), the
//!   epoch-synchronous parallel frontier (`--jobs`, byte-identical for
//!   any worker count), the throughput counters and the
//!   `[expect]`-aware verdict;
//! * [`independence`] — the explicit commutation relation between
//!   delivery choices that powers the sleep-set partial-order
//!   reduction;
//! * [`cache`] — the persistent, schema-versioned state-hash/depth
//!   table (`urb check --cache FILE`) that lets bounded CI searches
//!   deepen monotonically across runs;
//! * [`counterexample`] — self-contained, byte-deterministically
//!   replayable violation traces (`urb check --replay`), with delivery
//!   rows in the PR 2 golden-trace shape.
//!
//! ## Example
//!
//! ```
//! use urb_check::{check_scenario, Strategy};
//! use urb_sim::ScenarioSpec;
//!
//! // The executable Theorem 2: a sub-majority delivery threshold must
//! // break uniform agreement on *some* schedule — the explorer finds
//! // one and hands back a replayable witness.
//! let (_, text) = urb_sim::spec::corpus()
//!     .into_iter()
//!     .find(|(name, _)| *name == "theorem2_violation")
//!     .unwrap();
//! let spec = ScenarioSpec::from_toml_str(text).unwrap();
//! let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
//! assert!(outcome.passed(), "{}", outcome.verdict_line());
//! let cx = outcome.counterexample.expect("violation witnessed");
//! assert_eq!(cx.replay().unwrap(), cx.violation);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod counterexample;
pub mod explorer;
pub mod independence;
pub mod model;

pub use cache::{CacheBinding, CacheError, CacheSession, CacheStats};
pub use counterexample::Counterexample;
pub use explorer::{
    check_scenario, check_scenario_with, CheckOutcome, ExplorationStats, ExploreOptions, Strategy,
};
pub use model::{CheckModel, CheckState, Choice};
