//! The systematic explorer: strategies over the choice tree of a
//! [`CheckModel`], with state-hash pruning, throughput counters and
//! `[expect]`-aware verdicts.
//!
//! All strategies are **stateless** (in the model-checking sense): a
//! state is materialized by replaying its choice prefix from the initial
//! state, because protocol instances are trait objects and cannot be
//! cloned. That costs `O(depth)` engine steps per visited state and buys
//! an exact, serializable witness for free — the path *is* the
//! counterexample.
//!
//! * [`Strategy::Dfs`] — bounded search in canonical choice order,
//!   pruning states whose [`CheckState::state_hash`] was already visited
//!   at least as far from the bound;
//! * [`Strategy::DporLite`] — delay-bounded search: diverging from the
//!   canonical first choice costs its index in the enabled list, and an
//!   execution may spend at most `check.delay_budget` in total. On top
//!   of the budget it runs the sleep-set reduction over the
//!   [`independence`](crate::independence) relation, skipping delivery
//!   interleavings that provably commute;
//! * [`Strategy::Random`] — `check.walks` seeded random walks to the
//!   depth bound: the fallback when the state space dwarfs the budget.
//!
//! # The determinism contract
//!
//! Exploration is **epoch-synchronous**: every frontier node carries its
//! *rank path* — the sequence of enabled-list indices that produced it —
//! and ranks order nodes exactly in serial DFS preorder (lexicographic,
//! prefix-first). Each epoch pops the `EPOCH_BATCH` (128) smallest-ranked
//! nodes, replays them concurrently on the shared work-stealing executor
//! ([`urb_sim::parallel::map_indexed_on`]), then folds the results back
//! into the stats, the visited set and the frontier **sequentially, in
//! rank order**. The visited set is frozen while workers probe it and
//! mutated only in the fold, so which states get pruned, which children
//! get pushed, and every counter are a pure function of the epoch
//! structure — never of thread scheduling. Verdicts, state counts and
//! the witness are byte-identical for any `--jobs` value, including 1.
//!
//! The reported witness is the **canonically-first** one: violating
//! nodes become candidates, and the search ends only when no frontier
//! node outranks the best candidate (descendant ranks extend ancestor
//! ranks, so nothing smaller can ever appear). Random walks parallelize
//! per walk, keep each walk's legacy seeding, and merge in walk order
//! with the same early-stop rules as the serial loop.

use crate::cache::{CacheSession, CacheStats};
use crate::counterexample::Counterexample;
use crate::independence::{independent, DeliveryId};
use crate::model::{CheckModel, CheckState, Choice};
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;
use urb_sim::metrics::DeliveryRecord;
use urb_sim::{Expectations, ScenarioSpec, SpecError};
use urb_types::{RandomSource, SplitMix64};

/// Which exploration strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Bounded DFS with state-hash pruning.
    #[default]
    Dfs,
    /// Delay-bounded search around the canonical schedule, with the
    /// sleep-set partial-order reduction.
    DporLite,
    /// Seeded random-walk fallback.
    Random,
}

impl Strategy {
    /// CLI/spec name of the strategy.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Dfs => "dfs",
            Strategy::DporLite => "dpor-lite",
            Strategy::Random => "random",
        }
    }

    /// Parses a strategy name (`dfs` | `dpor-lite` | `random`).
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "dfs" => Strategy::Dfs,
            "dpor-lite" => Strategy::DporLite,
            "random" => Strategy::Random,
            other => {
                return Err(format!(
                    "unknown strategy {other:?} (dfs | dpor-lite | random)"
                ))
            }
        })
    }

    /// Resolves the strategy one `urb check` run uses: an explicit
    /// override wins, else the spec's `[check] strategy`, else the
    /// default. Shared by the explorer and the CLI so the cache binding
    /// and the actual run can never disagree.
    pub fn resolve(spec: &ScenarioSpec, overridden: Option<Strategy>) -> Result<Self, SpecError> {
        Ok(match overridden {
            Some(s) => s,
            None => match spec.check.strategy.as_deref() {
                Some(name) => Strategy::parse(name).map_err(|message| SpecError { message })?,
                None => Strategy::default(),
            },
        })
    }
}

/// Exploration throughput and coverage counters — the bench plane of the
/// checker (`states/sec`, dedup hit-rate) and the honesty report of a
/// bounded search (what was pruned, whether the cap truncated it).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplorationStats {
    /// States materialized (= full prefix replays).
    pub states: u64,
    /// Engine steps executed across all replays.
    pub engine_steps: u64,
    /// States pruned because their hash was already visited at least as
    /// far from the depth bound with at least as much delay budget.
    pub dedup_hits: u64,
    /// Branches cut by the depth bound.
    pub depth_prunes: u64,
    /// Branches cut by the `dpor-lite` delay budget.
    pub delay_prunes: u64,
    /// Delivery interleavings skipped by the sleep-set reduction over
    /// the explicit independence relation (never materialized at all).
    pub dpor_pruned: u64,
    /// Silent states where the eventual properties were evaluated.
    pub silent_states: u64,
    /// Violating executions that did not match the scenario's expected
    /// violation shape (surfaced in the report, not as the witness).
    pub mismatched_violations: u64,
    /// Deepest execution reached.
    pub max_depth: u64,
    /// True when the state cap ended the search before the frontier was
    /// exhausted (the verdict is then "not found within budget", never
    /// "proven absent").
    pub truncated: bool,
    /// Wall-clock seconds spent exploring (throughput only — never part
    /// of any deterministic artifact).
    pub elapsed_secs: f64,
}

impl ExplorationStats {
    /// States materialized per wall-clock second.
    pub fn states_per_sec(&self) -> f64 {
        self.states as f64 / self.elapsed_secs.max(1e-9)
    }

    /// Fraction of frontier pops answered by the visited-set.
    pub fn dedup_hit_rate(&self) -> f64 {
        self.dedup_hits as f64 / (self.states + self.dedup_hits).max(1) as f64
    }
}

/// Tunables of one exploration run, beyond what the spec's `[check]`
/// table carries. `Default` reproduces a plain `urb check FILE`.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Strategy override (`None` = spec's `[check] strategy`/default).
    pub strategy: Option<Strategy>,
    /// Depth-bound override.
    pub depth: Option<u32>,
    /// Seed override (engines + random walks).
    pub seed: Option<u64>,
    /// Worker threads for the epoch executor (clamped to ≥ 1). Results
    /// are byte-identical for every value — see the module docs.
    pub jobs: usize,
    /// Force the sleep-set reduction on/off (`None` = on exactly for
    /// [`Strategy::DporLite`]). Used by the soundness tests to compare
    /// reduced and unreduced runs of the same strategy.
    pub dpor: Option<bool>,
    /// Collect the sorted set of distinct state hashes materialized at
    /// the bound into [`CheckOutcome::fingerprints`] (frontier
    /// strategies only; test instrumentation).
    pub collect_fingerprints: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            strategy: None,
            depth: None,
            seed: None,
            jobs: 1,
            dpor: None,
            collect_fingerprints: false,
        }
    }
}

/// Everything one `urb check` invocation produced.
pub struct CheckOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Effective depth bound.
    pub depth: u32,
    /// Seed (engines + random walks).
    pub seed: u64,
    /// Worker threads the run used.
    pub jobs: usize,
    /// Whether the spec's `[expect]` table demands a violation.
    pub expects_violation: bool,
    /// The witness, when one was found.
    pub counterexample: Option<Counterexample>,
    /// Throughput/coverage counters.
    pub stats: ExplorationStats,
    /// Cache effectiveness, when a [`CacheSession`] was attached.
    pub cache: Option<CacheStats>,
    /// Distinct state hashes materialized, sorted (only when
    /// [`ExploreOptions::collect_fingerprints`] was set).
    pub fingerprints: Option<Vec<u64>>,
}

impl CheckOutcome {
    /// The scenario-level verdict: an expected violation must be found;
    /// a clean scenario must survive the explored schedules.
    pub fn passed(&self) -> bool {
        self.expects_violation == self.counterexample.is_some()
    }

    /// One-line human verdict.
    pub fn verdict_line(&self) -> String {
        match (self.expects_violation, &self.counterexample) {
            (true, Some(cx)) => format!(
                "PASS — expected violation found at depth {}: {}",
                cx.choices.len(),
                cx.violation.first().map(String::as_str).unwrap_or("?")
            ),
            (true, None) => "FAIL — expected violation not found within bounds".into(),
            (false, Some(cx)) => format!(
                "FAIL — violation found at depth {}: {}",
                cx.choices.len(),
                cx.violation.first().map(String::as_str).unwrap_or("?")
            ),
            (false, None) => "PASS — no violation within bounds".into(),
        }
    }
}

/// Hard cap on materialized states per exploration, so a CI-bounded
/// check stays CI-bounded even on an adversarial spec. Hitting it sets
/// [`ExplorationStats::truncated`]. Checked at epoch boundaries, so a
/// run may overshoot by at most one epoch batch — deterministically.
pub const MAX_STATES: u64 = 200_000;

/// Frontier nodes replayed per epoch. A fixed, jobs-independent constant
/// (part of the determinism contract: the batch content depends only on
/// the frontier, never on worker count or scheduling). Small enough to
/// keep witness hunts close to serial-DFS cost, large enough to feed
/// several workers per barrier.
const EPOCH_BATCH: usize = 128;

/// Shards of the concurrent visited set (hash-indexed).
const VISITED_SHARDS: usize = 16;

/// Does `expect` ask for a violation at all?
fn expects_violation(e: &Expectations) -> bool {
    [e.all_ok, e.validity, e.agreement, e.integrity].contains(&Some(false))
}

/// Does this violating execution match the scenario's expected shape?
/// Every property the spec pins must agree with the execution's report
/// (`validity = false` must actually be violated, `integrity = true`
/// must actually hold), and `min_deliveries` binds the execution too.
fn matches_expectation(spec: &ScenarioSpec, st: &CheckState<'_>) -> bool {
    let report = st.report();
    let e = &spec.expect;
    let want = |expected: Option<bool>, got: bool| expected.is_none_or(|w| w == got);
    want(e.all_ok, report.all_ok())
        && want(e.validity, report.validity.ok())
        && want(e.agreement, report.agreement.ok())
        && want(e.integrity, report.integrity.ok())
        && e.min_deliveries.is_none_or(|m| st.deliveries().len() >= m)
}

/// Explores `spec` and returns the outcome. `seed` overrides the spec's
/// seed; `strategy`/`depth` override the spec's `[check]` table.
/// Single-threaded, cache-less convenience wrapper around
/// [`check_scenario_with`].
pub fn check_scenario(
    spec: &ScenarioSpec,
    strategy: Option<Strategy>,
    depth: Option<u32>,
    seed: Option<u64>,
) -> Result<CheckOutcome, SpecError> {
    check_scenario_with(
        spec,
        &ExploreOptions {
            strategy,
            depth,
            seed,
            ..ExploreOptions::default()
        },
        None,
    )
}

/// Explores `spec` under explicit [`ExploreOptions`], optionally probing
/// and extending a persistent [`CacheSession`].
///
/// The cache is consulted and recorded only when it is *sound* to do
/// so: frontier strategies (never `random`, whose walks prove nothing
/// about subtrees) on scenarios that do **not** expect a violation (a
/// witness ends exploration early, so "expanded" would not mean
/// "subtree clean"). On an inert cache the session's loaded rows are
/// still reported, with zero probes. The session is marked
/// save-eligible here iff the run drained its frontier untruncated and
/// violation-free; actually writing the file is the caller's
/// ([`CacheSession::save`]) decision.
pub fn check_scenario_with(
    spec: &ScenarioSpec,
    opts: &ExploreOptions,
    mut cache: Option<&mut CacheSession>,
) -> Result<CheckOutcome, SpecError> {
    let model = CheckModel::from_spec(spec, opts.seed)?;
    let strategy = Strategy::resolve(spec, opts.strategy)?;
    let depth = opts.depth.unwrap_or(spec.check.depth);
    let jobs = opts.jobs.max(1);
    let dpor = opts.dpor.unwrap_or(strategy == Strategy::DporLite);
    let expects = expects_violation(&spec.expect);
    let cache_active = cache.is_some() && strategy != Strategy::Random && !expects;
    let started = Instant::now();
    let engine = Engine {
        spec,
        model: &model,
        depth: depth as u64,
        expects,
        dpor,
        delay_budget: (strategy == Strategy::DporLite).then_some(spec.check.delay_budget as u64),
        jobs,
        collect_fp: opts.collect_fingerprints && strategy != Strategy::Random,
        visited: SharedVisited::new(),
    };
    let mut stats = ExplorationStats::default();
    let mut fingerprints = BTreeSet::new();
    let mut probes = CacheProbes::default();
    let witness = match strategy {
        Strategy::Random => engine.random_walks(spec.check.walks, &mut stats),
        Strategy::Dfs | Strategy::DporLite => engine.frontier_search(
            &mut stats,
            if cache_active {
                cache.as_deref_mut()
            } else {
                None
            },
            &mut probes,
            &mut fingerprints,
        ),
    };
    if cache_active && witness.is_none() && !stats.truncated {
        if let Some(session) = cache.as_deref_mut() {
            session.mark_complete(stats.depth_prunes == 0);
        }
    }
    stats.elapsed_secs = started.elapsed().as_secs_f64();
    Ok(CheckOutcome {
        scenario: spec.name.clone(),
        strategy,
        depth,
        seed: model.seed(),
        jobs,
        expects_violation: expects,
        counterexample: witness.map(|(path, violation, deliveries)| Counterexample {
            scenario: spec.name.clone(),
            strategy: strategy.as_str().into(),
            seed: model.seed(),
            depth_bound: depth,
            spec_toml: spec.to_toml(),
            violation,
            choices: path,
            deliveries,
        }),
        stats,
        cache: cache.as_ref().map(|session| CacheStats {
            hits: probes.hits,
            misses: probes.misses,
            loaded: session.loaded_rows(),
            persisted: 0,
        }),
        fingerprints: engine
            .collect_fp
            .then(|| fingerprints.into_iter().collect()),
    })
}

/// Witness payload: the path, the violation strings, the delivery trace.
type Witness = (Vec<Choice>, Vec<String>, Vec<DeliveryRecord>);

/// Cache probe counters accumulated during one run.
#[derive(Default)]
struct CacheProbes {
    hits: u64,
    misses: u64,
}

/// The concurrent visited set: `state_hash → maximal antichain of
/// (remaining depth, delay budget)` pairs, sharded by hash. A probe hits
/// when some recorded expansion *dominates* it (was at least as far from
/// the bound with at least as much budget) — re-expanding a state that
/// reappears closer to the bound would only re-explore a sub-cone of
/// what the dominating expansion already covered.
///
/// Workers probe it lock-cheap and **read-only** during an epoch;
/// inserts happen solely in the sequential barrier fold, so the set's
/// evolution is independent of thread scheduling.
/// One visited-set shard: `state_hash → antichain of (remaining depth,
/// delay budget)` rows.
type VisitedShard = HashMap<u64, Vec<(u32, u64)>>;

struct SharedVisited {
    shards: Vec<Mutex<VisitedShard>>,
}

impl SharedVisited {
    fn new() -> Self {
        SharedVisited {
            shards: (0..VISITED_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<HashMap<u64, Vec<(u32, u64)>>> {
        &self.shards[(hash % VISITED_SHARDS as u64) as usize]
    }

    fn dominated(&self, hash: u64, remaining: u32, budget: u64) -> bool {
        let shard = self.shard(hash).lock().unwrap_or_else(|e| e.into_inner());
        shard
            .get(&hash)
            .is_some_and(|rows| rows.iter().any(|&(r, b)| r >= remaining && b >= budget))
    }

    /// Returns false (and leaves the set unchanged) when the entry is
    /// already dominated; otherwise inserts it, evicting what it
    /// dominates.
    fn insert(&self, hash: u64, remaining: u32, budget: u64) -> bool {
        let mut shard = self.shard(hash).lock().unwrap_or_else(|e| e.into_inner());
        let rows = shard.entry(hash).or_default();
        if rows.iter().any(|&(r, b)| r >= remaining && b >= budget) {
            return false;
        }
        rows.retain(|&(r, b)| !(remaining >= r && budget >= b));
        rows.push((remaining, budget));
        true
    }
}

/// One frontier node: its rank path (enabled-list indices, the global
/// preorder key), the choice path to replay, the remaining delay budget
/// and the sleep set inherited from its parent.
struct Node {
    rank: Vec<u16>,
    path: Vec<Choice>,
    budget: u64,
    sleep: Vec<DeliveryId>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank.cmp(&other.rank)
    }
}

/// What one worker learned about one frontier node — pure data, folded
/// into the run state at the epoch barrier.
struct Scan {
    node: Node,
    engine_steps: u64,
    silent: bool,
    mismatched: bool,
    depth_pruned: bool,
    deduped: bool,
    cache_hit: bool,
    cache_probed: bool,
    dpor_pruned: u64,
    delay_prunes: u64,
    fingerprint: Option<u64>,
    witness: Option<(Vec<String>, Vec<DeliveryRecord>)>,
    /// `(state key, children)` when the node is expandable: the key to
    /// claim in the visited set and the children to push if the claim
    /// wins.
    expand: Option<((u64, u32, u64), Vec<Node>)>,
}

struct Engine<'a> {
    spec: &'a ScenarioSpec,
    model: &'a CheckModel,
    depth: u64,
    expects: bool,
    dpor: bool,
    delay_budget: Option<u64>,
    jobs: usize,
    collect_fp: bool,
    visited: SharedVisited,
}

impl Engine<'_> {
    /// Replays and examines one frontier node; worker-side, shared-state
    /// reads only. Mirrors the serial pipeline exactly: materialize →
    /// examine (silent/violation) → depth bound → visited probe → cache
    /// probe → child generation (sleep-set and delay-budget cuts).
    fn scan(&self, node: Node, cache: Option<&CacheSession>) -> Scan {
        let mut scan = Scan {
            engine_steps: node.path.len() as u64,
            silent: false,
            mismatched: false,
            depth_pruned: false,
            deduped: false,
            cache_hit: false,
            cache_probed: false,
            dpor_pruned: 0,
            delay_prunes: 0,
            fingerprint: None,
            witness: None,
            expand: None,
            node,
        };
        let mut st = self.model.initial();
        for c in &scan.node.path {
            st.apply_trusted(*c);
        }
        if st.is_silent() {
            scan.silent = true;
            st.check_eventual();
        }
        if self.collect_fp {
            scan.fingerprint = Some(st.state_hash());
        }
        if let Some(violation) = st.violation() {
            if !self.expects || matches_expectation(self.spec, &st) {
                scan.witness = Some((violation.to_vec(), st.deliveries().to_vec()));
            } else {
                scan.mismatched = true;
            }
            return scan;
        }
        if scan.node.path.len() as u64 >= self.depth {
            scan.depth_pruned = true;
            return scan;
        }
        let hash = st.state_hash();
        let remaining = (self.depth - scan.node.path.len() as u64) as u32;
        if self.visited.dominated(hash, remaining, scan.node.budget) {
            scan.deduped = true;
            return scan;
        }
        if let Some(session) = cache {
            scan.cache_probed = true;
            if session.probe(hash, remaining, scan.node.budget) {
                scan.cache_hit = true;
                return scan;
            }
        }
        let enabled = st.enabled_choices();
        let mut children = Vec::with_capacity(enabled.len());
        // Delivery siblings already emitted as children at smaller
        // indices: later independent siblings go to sleep against them.
        let mut emitted: Vec<DeliveryId> = Vec::new();
        for (i, &choice) in enabled.iter().enumerate() {
            let id = match choice {
                Choice::Deliver { slot } if self.dpor => Some(DeliveryId::of(&st.pending()[slot])),
                _ => None,
            };
            if let Some(id) = id {
                if scan.node.sleep.contains(&id) {
                    scan.dpor_pruned += 1;
                    continue;
                }
            }
            let cost = if self.delay_budget.is_some() {
                i as u64
            } else {
                0
            };
            if cost > scan.node.budget {
                scan.delay_prunes += 1;
                continue;
            }
            let sleep = match id {
                // A delivery child sleeps on every inherited or
                // earlier-sibling delivery it is independent with —
                // those orders are covered by the sibling's subtree.
                Some(id) => {
                    let mut sleep: Vec<DeliveryId> = scan
                        .node
                        .sleep
                        .iter()
                        .chain(emitted.iter())
                        .copied()
                        .filter(|&z| independent(self.model, z, id))
                        .collect();
                    sleep.dedup();
                    emitted.push(id);
                    sleep
                }
                // Non-delivery steps are conservatively dependent with
                // everything: the child starts with an empty sleep set.
                None => Vec::new(),
            };
            let mut rank = scan.node.rank.clone();
            rank.push(i as u16);
            let mut path = scan.node.path.clone();
            path.push(choice);
            children.push(Node {
                rank,
                path,
                budget: scan.node.budget - cost,
                sleep,
            });
        }
        scan.expand = Some(((hash, remaining, scan.node.budget), children));
        scan
    }

    /// The epoch-synchronous frontier search (see the module docs for
    /// the determinism contract). Returns the canonically-first witness.
    fn frontier_search(
        &self,
        stats: &mut ExplorationStats,
        mut session: Option<&mut CacheSession>,
        probes: &mut CacheProbes,
        fingerprints: &mut BTreeSet<u64>,
    ) -> Option<Witness> {
        let mut frontier: BinaryHeap<Reverse<Node>> = BinaryHeap::new();
        frontier.push(Reverse(Node {
            rank: Vec::new(),
            path: Vec::new(),
            budget: self.delay_budget.unwrap_or(0),
            sleep: Vec::new(),
        }));
        // Best (smallest-rank) witness candidate so far.
        let mut best: Option<(Vec<u16>, Witness)> = None;
        loop {
            if let Some((best_rank, _)) = &best {
                // Finality: descendant ranks extend ancestor ranks, so
                // once no frontier node outranks the candidate, nothing
                // smaller can ever appear.
                let beatable = frontier
                    .peek()
                    .is_some_and(|Reverse(node)| node.rank < *best_rank);
                if !beatable {
                    break;
                }
            }
            if stats.states >= MAX_STATES {
                stats.truncated = true;
                break;
            }
            let mut batch = Vec::with_capacity(EPOCH_BATCH);
            while batch.len() < EPOCH_BATCH {
                let Some(Reverse(node)) = frontier.pop() else {
                    break;
                };
                if best
                    .as_ref()
                    .is_some_and(|(best_rank, _)| node.rank >= *best_rank)
                {
                    continue; // outranked: can never become the witness
                }
                batch.push(node);
            }
            if batch.is_empty() {
                break;
            }
            let scans = {
                let cache_ref = session.as_deref();
                urb_sim::parallel::map_indexed_on(batch, self.jobs, &|_, node| {
                    self.scan(node, cache_ref)
                })
            };
            // Barrier fold — sequential, in canonical (rank) order.
            for scan in scans {
                stats.states += 1;
                stats.engine_steps += scan.engine_steps;
                stats.max_depth = stats.max_depth.max(scan.node.path.len() as u64);
                stats.silent_states += scan.silent as u64;
                stats.mismatched_violations += scan.mismatched as u64;
                stats.depth_prunes += scan.depth_pruned as u64;
                stats.dedup_hits += scan.deduped as u64;
                stats.dpor_pruned += scan.dpor_pruned;
                stats.delay_prunes += scan.delay_prunes;
                probes.hits += scan.cache_hit as u64;
                probes.misses += (scan.cache_probed && !scan.cache_hit) as u64;
                if let Some(fp) = scan.fingerprint {
                    fingerprints.insert(fp);
                }
                if let Some(witness) = scan.witness {
                    if best
                        .as_ref()
                        .is_none_or(|(best_rank, _)| scan.node.rank < *best_rank)
                    {
                        best = Some((scan.node.rank, (scan.node.path, witness.0, witness.1)));
                    }
                    continue;
                }
                let Some(((hash, remaining, budget), children)) = scan.expand else {
                    continue;
                };
                if !self.visited.insert(hash, remaining, budget) {
                    // A same-epoch twin (earlier in rank order) already
                    // claimed this state.
                    stats.dedup_hits += 1;
                    continue;
                }
                if let Some(s) = session.as_deref_mut() {
                    s.record(hash, remaining, budget);
                }
                for child in children {
                    if best
                        .as_ref()
                        .is_some_and(|(best_rank, _)| child.rank >= *best_rank)
                    {
                        continue;
                    }
                    frontier.push(Reverse(child));
                }
            }
        }
        best.map(|(_, witness)| witness)
    }

    /// `walks` seeded random walks to the depth bound, distributed over
    /// the executor. Walk `w` draws from `SplitMix64(seed ^ w)` — fully
    /// deterministic, independent of wall clock and of each other — and
    /// results merge **in walk order** with the serial loop's early-stop
    /// rules, so the outcome is identical for any worker count.
    fn random_walks(&self, walks: u32, stats: &mut ExplorationStats) -> Option<Witness> {
        // Opportunistic cancellation: walks beyond the best witnessing
        // index so far can never contribute to the merged outcome (the
        // merge stops at the first witnessing walk), so skip them. The
        // final winner only ever moves down, so no contributing walk is
        // ever skipped.
        let best_walk = AtomicUsize::new(usize::MAX);
        let results = urb_sim::parallel::map_indexed_on(
            (0..walks).collect::<Vec<u32>>(),
            self.jobs,
            &|index, walk| {
                if index > best_walk.load(AtomicOrdering::Relaxed) {
                    return None;
                }
                let result = self.one_walk(walk);
                if result.witness.is_some() {
                    best_walk.fetch_min(index, AtomicOrdering::Relaxed);
                }
                Some(result)
            },
        );
        for result in results {
            if stats.states >= MAX_STATES {
                stats.truncated = true;
                return None;
            }
            let Some(walk) = result else { break };
            stats.states += walk.states;
            stats.engine_steps += walk.engine_steps;
            stats.max_depth = stats.max_depth.max(walk.max_depth);
            stats.silent_states += walk.silent_states;
            stats.mismatched_violations += walk.mismatched_violations;
            if walk.witness.is_some() {
                return walk.witness;
            }
        }
        None
    }

    /// One seeded random walk — the exact serial per-walk loop.
    fn one_walk(&self, walk: u32) -> WalkResult {
        let mut out = WalkResult {
            states: 1,
            engine_steps: 0,
            max_depth: 0,
            silent_states: 0,
            mismatched_violations: 0,
            witness: None,
        };
        let mut rng = SplitMix64::new(self.model.seed() ^ 0x3A1_D0E5_u64.wrapping_add(walk as u64));
        let mut st = self.model.initial();
        let mut path = Vec::new();
        loop {
            if st.is_silent() {
                out.silent_states += 1;
                st.check_eventual();
            }
            if let Some(violation) = st.violation() {
                if !self.expects || matches_expectation(self.spec, &st) {
                    out.witness = Some((path, violation.to_vec(), st.deliveries().to_vec()));
                } else {
                    out.mismatched_violations += 1;
                }
                return out;
            }
            if path.len() as u64 >= self.depth {
                return out;
            }
            let enabled = st.enabled_choices();
            if enabled.is_empty() {
                return out;
            }
            let c = enabled[rng.gen_range(enabled.len() as u64) as usize];
            st.apply_trusted(c);
            out.engine_steps += 1;
            path.push(c);
            out.max_depth = out.max_depth.max(path.len() as u64);
        }
    }
}

/// Per-walk partial stats, merged in walk order.
struct WalkResult {
    states: u64,
    engine_steps: u64,
    max_depth: u64,
    silent_states: u64,
    mismatched_violations: u64,
    witness: Option<Witness>,
}
