//! The systematic explorer: strategies over the choice tree of a
//! [`CheckModel`], with state-hash pruning, throughput counters and
//! `[expect]`-aware verdicts.
//!
//! All three strategies are **stateless** (in the model-checking sense):
//! a state is materialized by replaying its choice prefix from the
//! initial state, because protocol instances are trait objects and
//! cannot be cloned. That costs `O(depth)` engine steps per visited
//! state and buys an exact, serializable witness for free — the path
//! *is* the counterexample.
//!
//! * [`Strategy::Dfs`] — bounded depth-first search in canonical choice
//!   order, pruning states whose [`CheckState::state_hash`] was already
//!   visited;
//! * [`Strategy::DporLite`] — delay-bounded search: diverging from the
//!   canonical first choice costs its index in the enabled list, and an
//!   execution may spend at most `check.delay_budget` in total. Explores
//!   the neighbourhood of the causal schedule first, which is where
//!   reordering bugs live (a partial-order-reduction-flavoured cut of
//!   the full DFS, hence the name);
//! * [`Strategy::Random`] — `check.walks` seeded random walks to the
//!   depth bound: the fallback when the state space dwarfs the budget,
//!   and the byte-determinism anchor (same seed ⇒ same walks ⇒ same
//!   outcome, file for file).

use crate::counterexample::Counterexample;
use crate::model::{CheckModel, CheckState, Choice};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;
use urb_sim::{Expectations, ScenarioSpec, SpecError};
use urb_types::{RandomSource, SplitMix64};

/// Which exploration strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Bounded DFS with state-hash pruning.
    #[default]
    Dfs,
    /// Delay-bounded search around the canonical schedule.
    DporLite,
    /// Seeded random-walk fallback.
    Random,
}

impl Strategy {
    /// CLI/spec name of the strategy.
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Dfs => "dfs",
            Strategy::DporLite => "dpor-lite",
            Strategy::Random => "random",
        }
    }

    /// Parses a strategy name (`dfs` | `dpor-lite` | `random`).
    pub fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "dfs" => Strategy::Dfs,
            "dpor-lite" => Strategy::DporLite,
            "random" => Strategy::Random,
            other => {
                return Err(format!(
                    "unknown strategy {other:?} (dfs | dpor-lite | random)"
                ))
            }
        })
    }
}

/// Exploration throughput and coverage counters — the bench plane of the
/// checker (`states/sec`, dedup hit-rate) and the honesty report of a
/// bounded search (what was pruned, whether the cap truncated it).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplorationStats {
    /// States materialized (= full prefix replays).
    pub states: u64,
    /// Engine steps executed across all replays.
    pub engine_steps: u64,
    /// States pruned because their hash was already visited.
    pub dedup_hits: u64,
    /// Branches cut by the depth bound.
    pub depth_prunes: u64,
    /// Branches cut by the `dpor-lite` delay budget.
    pub delay_prunes: u64,
    /// Silent states where the eventual properties were evaluated.
    pub silent_states: u64,
    /// Violating executions that did not match the scenario's expected
    /// violation shape (surfaced in the report, not as the witness).
    pub mismatched_violations: u64,
    /// Deepest execution reached.
    pub max_depth: u64,
    /// True when the state cap ended the search before the frontier was
    /// exhausted (the verdict is then "not found within budget", never
    /// "proven absent").
    pub truncated: bool,
    /// Wall-clock seconds spent exploring (throughput only — never part
    /// of any deterministic artifact).
    pub elapsed_secs: f64,
}

impl ExplorationStats {
    /// States materialized per wall-clock second.
    pub fn states_per_sec(&self) -> f64 {
        self.states as f64 / self.elapsed_secs.max(1e-9)
    }

    /// Fraction of frontier pops answered by the visited-set.
    pub fn dedup_hit_rate(&self) -> f64 {
        self.dedup_hits as f64 / (self.states + self.dedup_hits).max(1) as f64
    }
}

/// Everything one `urb check` invocation produced.
pub struct CheckOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Effective depth bound.
    pub depth: u32,
    /// Seed (engines + random walks).
    pub seed: u64,
    /// Whether the spec's `[expect]` table demands a violation.
    pub expects_violation: bool,
    /// The witness, when one was found.
    pub counterexample: Option<Counterexample>,
    /// Throughput/coverage counters.
    pub stats: ExplorationStats,
}

impl CheckOutcome {
    /// The scenario-level verdict: an expected violation must be found;
    /// a clean scenario must survive the explored schedules.
    pub fn passed(&self) -> bool {
        self.expects_violation == self.counterexample.is_some()
    }

    /// One-line human verdict.
    pub fn verdict_line(&self) -> String {
        match (self.expects_violation, &self.counterexample) {
            (true, Some(cx)) => format!(
                "PASS — expected violation found at depth {}: {}",
                cx.choices.len(),
                cx.violation.first().map(String::as_str).unwrap_or("?")
            ),
            (true, None) => "FAIL — expected violation not found within bounds".into(),
            (false, Some(cx)) => format!(
                "FAIL — violation found at depth {}: {}",
                cx.choices.len(),
                cx.violation.first().map(String::as_str).unwrap_or("?")
            ),
            (false, None) => "PASS — no violation within bounds".into(),
        }
    }
}

/// Hard cap on materialized states per exploration, so a CI-bounded
/// check stays CI-bounded even on an adversarial spec. Hitting it sets
/// [`ExplorationStats::truncated`].
pub const MAX_STATES: u64 = 200_000;

/// Does `expect` ask for a violation at all?
fn expects_violation(e: &Expectations) -> bool {
    [e.all_ok, e.validity, e.agreement, e.integrity].contains(&Some(false))
}

/// Does this violating execution match the scenario's expected shape?
/// Every property the spec pins must agree with the execution's report
/// (`validity = false` must actually be violated, `integrity = true`
/// must actually hold), and `min_deliveries` binds the execution too.
fn matches_expectation(spec: &ScenarioSpec, st: &CheckState<'_>) -> bool {
    let report = st.report();
    let e = &spec.expect;
    let want = |expected: Option<bool>, got: bool| expected.is_none_or(|w| w == got);
    want(e.all_ok, report.all_ok())
        && want(e.validity, report.validity.ok())
        && want(e.agreement, report.agreement.ok())
        && want(e.integrity, report.integrity.ok())
        && e.min_deliveries.is_none_or(|m| st.deliveries().len() >= m)
}

/// Explores `spec` and returns the outcome. `seed` overrides the spec's
/// seed; `strategy`/`depth` override the spec's `[check]` table.
pub fn check_scenario(
    spec: &ScenarioSpec,
    strategy: Option<Strategy>,
    depth: Option<u32>,
    seed: Option<u64>,
) -> Result<CheckOutcome, SpecError> {
    let model = CheckModel::from_spec(spec, seed)?;
    let strategy = match strategy {
        Some(s) => s,
        None => match spec.check.strategy.as_deref() {
            Some(name) => Strategy::parse(name).map_err(|message| SpecError { message })?,
            None => Strategy::default(),
        },
    };
    let depth = depth.unwrap_or(spec.check.depth);
    let started = Instant::now();
    let mut search = Search {
        spec,
        model: &model,
        depth: depth as u64,
        expects: expects_violation(&spec.expect),
        stats: ExplorationStats::default(),
        witness: None,
    };
    match strategy {
        Strategy::Dfs => search.dfs(None),
        Strategy::DporLite => search.dfs(Some(spec.check.delay_budget as u64)),
        Strategy::Random => search.random_walks(spec.check.walks),
    }
    let mut stats = search.stats;
    stats.elapsed_secs = started.elapsed().as_secs_f64();
    Ok(CheckOutcome {
        scenario: spec.name.clone(),
        strategy,
        depth,
        seed: model.seed(),
        expects_violation: search.expects,
        counterexample: search
            .witness
            .map(|(path, st_violation, deliveries)| Counterexample {
                scenario: spec.name.clone(),
                strategy: strategy.as_str().into(),
                seed: model.seed(),
                depth_bound: depth,
                spec_toml: spec.to_toml(),
                violation: st_violation,
                choices: path,
                deliveries,
            }),
        stats,
    })
}

/// Witness payload: the path, the violation strings, the delivery trace.
type Witness = (
    Vec<Choice>,
    Vec<String>,
    Vec<urb_sim::metrics::DeliveryRecord>,
);

struct Search<'a> {
    spec: &'a ScenarioSpec,
    model: &'a CheckModel,
    depth: u64,
    expects: bool,
    stats: ExplorationStats,
    witness: Option<Witness>,
}

impl<'a> Search<'a> {
    /// Replays `path` from the initial state. Infallible by construction
    /// (paths come from enabled-choice enumeration on the same model).
    fn materialize(&mut self, path: &[Choice]) -> CheckState<'a> {
        self.stats.states += 1;
        self.stats.max_depth = self.stats.max_depth.max(path.len() as u64);
        let mut st = self.model.initial();
        for c in path {
            st.apply_trusted(*c);
            self.stats.engine_steps += 1;
        }
        st
    }

    /// Examines a materialized state: evaluates eventual properties at
    /// silent states and captures the witness when a violation matches
    /// the scenario's expectation shape (or any violation, for a clean
    /// scenario). Returns true when the search should stop.
    fn examine(&mut self, path: &[Choice], st: &mut CheckState<'_>) -> bool {
        if st.is_silent() {
            self.stats.silent_states += 1;
            st.check_eventual();
        }
        let Some(violation) = st.violation() else {
            return false;
        };
        let matches = !self.expects || matches_expectation(self.spec, st);
        if matches {
            self.witness = Some((path.to_vec(), violation.to_vec(), st.deliveries().to_vec()));
            true
        } else {
            self.stats.mismatched_violations += 1;
            false
        }
    }

    /// Bounded DFS; `delay_budget = Some(b)` turns it into the
    /// delay-bounded `dpor-lite` cut.
    fn dfs(&mut self, delay_budget: Option<u64>) {
        // Visited set keyed on the state hash, valued with the best
        // (largest) remaining delay budget the state was expanded with:
        // in `dpor-lite` mode the budget is part of what a state can
        // still do, so a state first reached on a wasteful path must be
        // re-expanded when a thriftier path arrives with budget to
        // spend. Plain DFS carries budget 0 everywhere, where this
        // degenerates to an ordinary visited set.
        let mut visited: HashMap<u64, u64> = HashMap::new();
        // Frontier of (path, remaining delay budget); pushed in reverse
        // canonical order so the canonical child pops first.
        let mut frontier: Vec<(Vec<Choice>, u64)> = vec![(Vec::new(), delay_budget.unwrap_or(0))];
        while let Some((path, budget)) = frontier.pop() {
            if self.stats.states >= MAX_STATES {
                self.stats.truncated = true;
                return;
            }
            let mut st = self.materialize(&path);
            if self.examine(&path, &mut st) {
                return;
            }
            if st.violation().is_some() {
                continue; // mismatched violation: this branch is done
            }
            if path.len() as u64 >= self.depth {
                self.stats.depth_prunes += 1;
                continue;
            }
            match visited.entry(st.state_hash()) {
                Entry::Occupied(seen) if *seen.get() >= budget => {
                    self.stats.dedup_hits += 1;
                    continue;
                }
                Entry::Occupied(mut seen) => {
                    seen.insert(budget);
                }
                Entry::Vacant(slot) => {
                    slot.insert(budget);
                }
            }
            let enabled = st.enabled_choices();
            for (i, c) in enabled.iter().enumerate().rev() {
                let cost = if delay_budget.is_some() { i as u64 } else { 0 };
                if delay_budget.is_some() && cost > budget {
                    self.stats.delay_prunes += 1;
                    continue;
                }
                let mut child = path.clone();
                child.push(*c);
                frontier.push((child, budget - cost));
            }
        }
    }

    /// `walks` seeded random walks to the depth bound. Walk `w` draws
    /// from `SplitMix64(seed ^ w)` — fully deterministic, independent of
    /// wall clock and of each other.
    fn random_walks(&mut self, walks: u32) {
        for walk in 0..walks {
            if self.stats.states >= MAX_STATES {
                self.stats.truncated = true;
                return;
            }
            let mut rng =
                SplitMix64::new(self.model.seed() ^ 0x3A1_D0E5_u64.wrapping_add(walk as u64));
            let mut st = self.model.initial();
            let mut path = Vec::new();
            self.stats.states += 1;
            loop {
                if self.examine(&path, &mut st) {
                    return;
                }
                if st.violation().is_some() || path.len() as u64 >= self.depth {
                    break;
                }
                let enabled = st.enabled_choices();
                if enabled.is_empty() {
                    break;
                }
                let c = enabled[rng.gen_range(enabled.len() as u64) as usize];
                st.apply_trusted(c);
                self.stats.engine_steps += 1;
                path.push(c);
                self.stats.max_depth = self.stats.max_depth.max(path.len() as u64);
            }
        }
    }
}
