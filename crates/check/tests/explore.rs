//! Whole-plane tests of the systematic schedule checker (DESIGN.md §11):
//!
//! * the **Theorem-2 corpus spec** — DFS and `dpor-lite` both find the
//!   expected uniform-agreement violation within the spec's own
//!   `[check]` bounds, and the counterexample replays
//!   byte-deterministically;
//! * **clean scenarios** — bounded exploration of correct algorithms
//!   finds nothing, across all three strategies;
//! * **property tests** — random-walk exploration at a given `(depth,
//!   seed)` is byte-deterministic, and *every* emitted counterexample
//!   replays to the same invariant violation (the exploration plane's
//!   contract: a witness is a witness, forever).

use proptest::prelude::*;
use urb_check::{check_scenario, Counterexample, Strategy};
use urb_core::Algorithm;
use urb_sim::spec::{corpus, CrashRuleSpec};
use urb_sim::{CrashRule, ScenarioSpec};

fn corpus_spec(name: &str) -> ScenarioSpec {
    let (_, text) = corpus()
        .into_iter()
        .find(|(stem, _)| *stem == name)
        .unwrap_or_else(|| panic!("{name} not in corpus"));
    ScenarioSpec::from_toml_str(text).unwrap()
}

/// A small uniformity trap: eager RB (deliver on first receipt, relay
/// once, never retransmit) with a crash-on-first-delivery broadcaster.
/// Some schedule delivers at the broadcaster, crashes it and drops the
/// relays — uniform agreement breaks, exactly like experiment E11.
fn eager_trap(n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("eager-trap", n, Algorithm::EagerRb);
    spec.seed = seed;
    spec.crashes = vec![CrashRuleSpec {
        pid: 0,
        rule: CrashRule::OnFirstDelivery { delay: 0 },
    }];
    spec.expect.agreement = Some(false);
    spec.check.max_drops = 2 * n as u32;
    spec.check.depth = 64;
    spec
}

#[test]
fn dfs_finds_the_theorem2_violation_within_spec_bounds() {
    let spec = corpus_spec("theorem2_violation");
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    let cx = outcome.counterexample.expect("witness");
    assert!(
        cx.violation.iter().any(|v| v.starts_with("agreement")),
        "{:?}",
        cx.violation
    );
    assert!(
        !cx.deliveries.is_empty(),
        "S1 delivered before crashing (min_deliveries)"
    );
    assert!(outcome.stats.states > 0);
    assert!(outcome.stats.states_per_sec() > 0.0);
}

#[test]
fn dpor_lite_finds_it_near_the_canonical_schedule() {
    let spec = corpus_spec("theorem2_violation");
    let outcome = check_scenario(&spec, Some(Strategy::DporLite), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    // The witness lives on (or right next to) the canonical dive, so the
    // delay-bounded cut reaches it with almost no exploration overhead.
    assert!(
        outcome.stats.states < 5_000,
        "dpor-lite should not need a large frontier: {:?}",
        outcome.stats
    );
}

#[test]
fn counterexamples_replay_and_survive_serialization() {
    let spec = corpus_spec("theorem2_violation");
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    let cx = outcome.counterexample.expect("witness");
    // Replay reproduces the recorded violation and delivery trace.
    assert_eq!(cx.replay().unwrap(), cx.violation);
    // The serialized body round-trips and the round-tripped file still
    // replays — the `urb check --replay` contract, file for file.
    let body = cx.body_json();
    let parsed = Counterexample::parse(&body).unwrap();
    assert_eq!(parsed.body_json(), body, "byte-stable");
    assert_eq!(parsed.replay().unwrap(), cx.violation);
}

#[test]
fn clean_scenarios_pass_every_strategy() {
    // A correct algorithm under bounded exploration: nothing to find.
    // (Small n keeps full DFS exhaustion fast in debug builds.)
    let mut spec = ScenarioSpec::new("clean-explore", 3, Algorithm::Majority);
    spec.seed = 11;
    spec.check.depth = 24;
    spec.check.max_drops = 1;
    for strategy in [Strategy::Dfs, Strategy::DporLite, Strategy::Random] {
        let outcome = check_scenario(&spec, Some(strategy), None, None).unwrap();
        assert!(
            outcome.passed() && outcome.counterexample.is_none(),
            "{strategy:?}: {}",
            outcome.verdict_line()
        );
        assert!(outcome.stats.states > 0, "{strategy:?} explored something");
    }
}

#[test]
fn dfs_prunes_via_state_hashes() {
    // Commuting deliveries collapse onto shared states: on any nontrivial
    // clean exploration the visited-set must answer a decent share of
    // frontier pops.
    let mut spec = ScenarioSpec::new("dedup", 3, Algorithm::Majority);
    spec.seed = 3;
    spec.check.depth = 16;
    spec.check.max_drops = 0;
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(outcome.passed());
    assert!(
        outcome.stats.dedup_hits > 0,
        "no dedup on a commuting schedule space: {:?}",
        outcome.stats
    );
    assert!(outcome.stats.dedup_hit_rate() > 0.0);
    assert!(outcome.stats.dedup_hit_rate() < 1.0);
}

#[test]
fn eager_trap_yields_a_replayable_witness() {
    let spec = eager_trap(3, 5);
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    let cx = outcome.counterexample.expect("witness");
    assert_eq!(cx.replay().unwrap(), cx.violation);
}

#[test]
fn expected_violation_not_found_fails_the_check() {
    // Forbid every adversarial move: no drops, and the crash rule never
    // arms because nothing ever delivers at depth 0.
    let mut spec = eager_trap(3, 5);
    spec.check.max_drops = 0;
    spec.check.depth = 2; // too shallow to even deliver
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(!outcome.passed(), "{}", outcome.verdict_line());
    assert!(outcome.counterexample.is_none());
    assert!(outcome.verdict_line().contains("not found"));
}

#[test]
fn depth_and_strategy_overrides_beat_the_spec() {
    let mut spec = corpus_spec("theorem2_violation");
    spec.check.strategy = Some("random".into());
    let outcome = check_scenario(&spec, None, Some(3), None).unwrap();
    assert_eq!(outcome.strategy, Strategy::Random, "spec strategy honored");
    assert_eq!(outcome.depth, 3, "CLI depth override wins");
    assert!(!outcome.passed(), "depth 3 cannot reach the violation");
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert_eq!(outcome.strategy, Strategy::Dfs, "explicit strategy wins");
    assert!(outcome.passed());
}

#[test]
fn quiescent_algorithm_explores_clean_under_crash_choices() {
    // Algorithm 2 with a crash-eligible process: the explorer may kill
    // it at any point, and agreement must still hold at every silent
    // state (Theorem 3, explored rather than sampled).
    let mut spec = ScenarioSpec::new("alg2-crashes", 3, Algorithm::Quiescent);
    spec.seed = 13;
    spec.crashes = vec![CrashRuleSpec {
        pid: 1,
        rule: CrashRule::At(50),
    }];
    spec.check.depth = 40;
    spec.check.max_drops = 1;
    let outcome = check_scenario(&spec, Some(Strategy::Random), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    let outcome = check_scenario(&spec, Some(Strategy::DporLite), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
}

// ------------------------------------------------------------------
// Property tests (the PR's proptest satellite).

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random-walk exploration at depth `d` with seed `s` is
    /// byte-deterministic: same inputs, same witness (or same absence),
    /// byte for byte, and same coverage counters.
    #[test]
    fn random_walks_are_byte_deterministic(
        seed in 0u64..10_000,
        depth in 8u32..48,
        n in 2usize..5,
    ) {
        let mut spec = eager_trap(n, seed);
        spec.check.walks = 16;
        let run = || check_scenario(&spec, Some(Strategy::Random), Some(depth), Some(seed)).unwrap();
        let a = run();
        let b = run();
        prop_assert_eq!(a.stats.states, b.stats.states);
        prop_assert_eq!(a.stats.engine_steps, b.stats.engine_steps);
        prop_assert_eq!(a.stats.max_depth, b.stats.max_depth);
        match (&a.counterexample, &b.counterexample) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert_eq!(x.body_json(), y.body_json()),
            _ => prop_assert!(false, "witness presence must be deterministic"),
        }
    }

    /// Every counterexample any strategy emits replays to the same
    /// invariant violation — including after a serialization round trip.
    #[test]
    fn every_emitted_counterexample_replays(
        seed in 0u64..10_000,
        n in 2usize..5,
        strategy_pick in 0u8..3,
    ) {
        let strategy = match strategy_pick {
            0 => Strategy::Dfs,
            1 => Strategy::DporLite,
            _ => Strategy::Random,
        };
        let spec = eager_trap(n, seed);
        let outcome = check_scenario(&spec, Some(strategy), None, Some(seed)).unwrap();
        if let Some(cx) = &outcome.counterexample {
            let replayed = cx.replay();
            prop_assert!(replayed.is_ok(), "{:?}", replayed);
            prop_assert_eq!(replayed.unwrap(), cx.violation.clone());
            let parsed = Counterexample::parse(&cx.body_json()).unwrap();
            prop_assert_eq!(parsed.replay().unwrap(), cx.violation.clone());
        }
    }
}
