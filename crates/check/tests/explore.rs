//! Whole-plane tests of the systematic schedule checker (DESIGN.md §11):
//!
//! * the **Theorem-2 corpus spec** — DFS and `dpor-lite` both find the
//!   expected uniform-agreement violation within the spec's own
//!   `[check]` bounds, and the counterexample replays
//!   byte-deterministically;
//! * **clean scenarios** — bounded exploration of correct algorithms
//!   finds nothing, across all three strategies;
//! * **property tests** — random-walk exploration at a given `(depth,
//!   seed)` is byte-deterministic, and *every* emitted counterexample
//!   replays to the same invariant violation (the exploration plane's
//!   contract: a witness is a witness, forever).

use proptest::prelude::*;
use urb_check::{
    check_scenario, check_scenario_with, CacheBinding, CacheSession, CheckOutcome, Counterexample,
    ExploreOptions, Strategy,
};
use urb_core::Algorithm;
use urb_sim::spec::{corpus, CrashRuleSpec};
use urb_sim::{CrashRule, ScenarioSpec};

fn corpus_spec(name: &str) -> ScenarioSpec {
    let (_, text) = corpus()
        .into_iter()
        .find(|(stem, _)| *stem == name)
        .unwrap_or_else(|| panic!("{name} not in corpus"));
    ScenarioSpec::from_toml_str(text).unwrap()
}

/// A small uniformity trap: eager RB (deliver on first receipt, relay
/// once, never retransmit) with a crash-on-first-delivery broadcaster.
/// Some schedule delivers at the broadcaster, crashes it and drops the
/// relays — uniform agreement breaks, exactly like experiment E11.
fn eager_trap(n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("eager-trap", n, Algorithm::EagerRb);
    spec.seed = seed;
    spec.crashes = vec![CrashRuleSpec {
        pid: 0,
        rule: CrashRule::OnFirstDelivery { delay: 0 },
    }];
    spec.expect.agreement = Some(false);
    spec.check.max_drops = 2 * n as u32;
    spec.check.depth = 64;
    spec
}

#[test]
fn dfs_finds_the_theorem2_violation_within_spec_bounds() {
    let spec = corpus_spec("theorem2_violation");
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    let cx = outcome.counterexample.expect("witness");
    assert!(
        cx.violation.iter().any(|v| v.starts_with("agreement")),
        "{:?}",
        cx.violation
    );
    assert!(
        !cx.deliveries.is_empty(),
        "S1 delivered before crashing (min_deliveries)"
    );
    assert!(outcome.stats.states > 0);
    assert!(outcome.stats.states_per_sec() > 0.0);
}

#[test]
fn dpor_lite_finds_it_near_the_canonical_schedule() {
    let spec = corpus_spec("theorem2_violation");
    let outcome = check_scenario(&spec, Some(Strategy::DporLite), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    // The witness lives on (or right next to) the canonical dive, so the
    // delay-bounded cut reaches it with almost no exploration overhead.
    assert!(
        outcome.stats.states < 5_000,
        "dpor-lite should not need a large frontier: {:?}",
        outcome.stats
    );
}

#[test]
fn counterexamples_replay_and_survive_serialization() {
    let spec = corpus_spec("theorem2_violation");
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    let cx = outcome.counterexample.expect("witness");
    // Replay reproduces the recorded violation and delivery trace.
    assert_eq!(cx.replay().unwrap(), cx.violation);
    // The serialized body round-trips and the round-tripped file still
    // replays — the `urb check --replay` contract, file for file.
    let body = cx.body_json();
    let parsed = Counterexample::parse(&body).unwrap();
    assert_eq!(parsed.body_json(), body, "byte-stable");
    assert_eq!(parsed.replay().unwrap(), cx.violation);
}

#[test]
fn clean_scenarios_pass_every_strategy() {
    // A correct algorithm under bounded exploration: nothing to find.
    // (Small n keeps full DFS exhaustion fast in debug builds.)
    let mut spec = ScenarioSpec::new("clean-explore", 3, Algorithm::Majority);
    spec.seed = 11;
    spec.check.depth = 24;
    spec.check.max_drops = 1;
    for strategy in [Strategy::Dfs, Strategy::DporLite, Strategy::Random] {
        let outcome = check_scenario(&spec, Some(strategy), None, None).unwrap();
        assert!(
            outcome.passed() && outcome.counterexample.is_none(),
            "{strategy:?}: {}",
            outcome.verdict_line()
        );
        assert!(outcome.stats.states > 0, "{strategy:?} explored something");
    }
}

#[test]
fn dfs_prunes_via_state_hashes() {
    // Commuting deliveries collapse onto shared states: on any nontrivial
    // clean exploration the visited-set must answer a decent share of
    // frontier pops.
    let mut spec = ScenarioSpec::new("dedup", 3, Algorithm::Majority);
    spec.seed = 3;
    spec.check.depth = 16;
    spec.check.max_drops = 0;
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(outcome.passed());
    assert!(
        outcome.stats.dedup_hits > 0,
        "no dedup on a commuting schedule space: {:?}",
        outcome.stats
    );
    assert!(outcome.stats.dedup_hit_rate() > 0.0);
    assert!(outcome.stats.dedup_hit_rate() < 1.0);
}

#[test]
fn eager_trap_yields_a_replayable_witness() {
    let spec = eager_trap(3, 5);
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    let cx = outcome.counterexample.expect("witness");
    assert_eq!(cx.replay().unwrap(), cx.violation);
}

#[test]
fn expected_violation_not_found_fails_the_check() {
    // Forbid every adversarial move: no drops, and the crash rule never
    // arms because nothing ever delivers at depth 0.
    let mut spec = eager_trap(3, 5);
    spec.check.max_drops = 0;
    spec.check.depth = 2; // too shallow to even deliver
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert!(!outcome.passed(), "{}", outcome.verdict_line());
    assert!(outcome.counterexample.is_none());
    assert!(outcome.verdict_line().contains("not found"));
}

#[test]
fn depth_and_strategy_overrides_beat_the_spec() {
    let mut spec = corpus_spec("theorem2_violation");
    spec.check.strategy = Some("random".into());
    let outcome = check_scenario(&spec, None, Some(3), None).unwrap();
    assert_eq!(outcome.strategy, Strategy::Random, "spec strategy honored");
    assert_eq!(outcome.depth, 3, "CLI depth override wins");
    assert!(!outcome.passed(), "depth 3 cannot reach the violation");
    let outcome = check_scenario(&spec, Some(Strategy::Dfs), None, None).unwrap();
    assert_eq!(outcome.strategy, Strategy::Dfs, "explicit strategy wins");
    assert!(outcome.passed());
}

#[test]
fn quiescent_algorithm_explores_clean_under_crash_choices() {
    // Algorithm 2 with a crash-eligible process: the explorer may kill
    // it at any point, and agreement must still hold at every silent
    // state (Theorem 3, explored rather than sampled).
    let mut spec = ScenarioSpec::new("alg2-crashes", 3, Algorithm::Quiescent);
    spec.seed = 13;
    spec.crashes = vec![CrashRuleSpec {
        pid: 1,
        rule: CrashRule::At(50),
    }];
    spec.check.depth = 40;
    spec.check.max_drops = 1;
    let outcome = check_scenario(&spec, Some(Strategy::Random), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
    let outcome = check_scenario(&spec, Some(Strategy::DporLite), None, None).unwrap();
    assert!(outcome.passed(), "{}", outcome.verdict_line());
}

// ------------------------------------------------------------------
// Parallel frontier, persistent cache and sleep-set DPOR (DESIGN.md
// §11, "Parallel exploration & cache format").

/// The determinism matrix: jobs ∈ {1, 2, 4} × cache {cold, warm}.
///
/// The witness half runs the Theorem-2 hunt at every worker count and
/// demands the *same* counterexample, byte for byte. The cache half
/// explores a clean two-topic scenario cold and warm at every worker
/// count: every cold run agrees with every other cold run, every warm
/// run with every other warm run, and warm is strictly cheaper.
#[test]
fn determinism_matrix_jobs_times_cache() {
    let spec = corpus_spec("theorem2_violation");
    let runs: Vec<CheckOutcome> = [1usize, 2, 4]
        .into_iter()
        .map(|jobs| {
            let opts = ExploreOptions {
                jobs,
                ..Default::default()
            };
            check_scenario_with(&spec, &opts, None).unwrap()
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(run.stats.states, runs[0].stats.states, "state count");
        assert_eq!(run.verdict_line(), runs[0].verdict_line(), "verdict");
    }
    let first = runs[0]
        .counterexample
        .as_ref()
        .expect("witness")
        .body_json();
    for run in &runs {
        let cx = run.counterexample.as_ref().expect("witness");
        assert_eq!(cx.body_json(), first, "same witness at jobs {}", run.jobs);
        assert_eq!(cx.replay().unwrap(), cx.violation, "replays");
    }

    let spec = corpus_spec("two_topics_smoke");
    let strategy = Strategy::resolve(&spec, None).unwrap();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for jobs in [1usize, 2, 4] {
        let path = std::env::temp_dir().join(format!(
            "urb-determinism-matrix-{}-{jobs}.cache",
            std::process::id()
        ));
        let path_str = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        for bucket in [&mut cold, &mut warm] {
            let binding = CacheBinding::new(&spec, strategy, true, spec.seed);
            let mut session = CacheSession::open(&path_str, binding).unwrap();
            let opts = ExploreOptions {
                jobs,
                ..Default::default()
            };
            let outcome = check_scenario_with(&spec, &opts, Some(&mut session)).unwrap();
            session.save().unwrap();
            assert!(outcome.passed(), "{}", outcome.verdict_line());
            bucket.push(outcome);
        }
        let _ = std::fs::remove_file(&path);
    }
    for bucket in [&cold, &warm] {
        for run in &bucket[1..] {
            assert_eq!(run.stats.states, bucket[0].stats.states, "state count");
            assert_eq!(run.verdict_line(), bucket[0].verdict_line(), "verdict");
        }
    }
    assert!(
        warm[0].stats.states < cold[0].stats.states,
        "warm rerun must explore strictly fewer new states: {} vs {}",
        warm[0].stats.states,
        cold[0].stats.states
    );
    let stats = warm[0].cache.as_ref().expect("cache session attached");
    assert!(stats.hits > 0, "warm run answered from the cache");
    assert!(stats.hit_rate() > 0.0);
}

fn dpor_on_off(spec: &ScenarioSpec, depth: u32) -> (CheckOutcome, CheckOutcome) {
    let run = |dpor: bool| {
        let opts = ExploreOptions {
            strategy: Some(Strategy::Dfs),
            depth: Some(depth),
            dpor: Some(dpor),
            collect_fingerprints: true,
            ..Default::default()
        };
        check_scenario_with(spec, &opts, None).unwrap()
    };
    (run(true), run(false))
}

/// DPOR soundness on the corpus topic scenarios: the sleep-set cut
/// must not change the set of reachable state fingerprints at the
/// bound — only how many interleavings get materialized to reach it.
#[test]
fn dpor_preserves_fingerprints_while_pruning_two_topics_smoke() {
    let spec = corpus_spec("two_topics_smoke");
    let (on, off) = dpor_on_off(&spec, 6);
    assert!(on.passed() && off.passed());
    assert!(
        !off.stats.truncated,
        "bound too wide for a sound comparison"
    );
    assert_eq!(on.fingerprints, off.fingerprints, "reachable set unchanged");
    assert!(
        on.stats.states < off.stats.states,
        "dpor must strictly reduce explored states: {} vs {}",
        on.stats.states,
        off.stats.states
    );
    assert!(on.stats.dpor_pruned > 0);
}

/// Same contract under crash pressure: `cross_topic_storm` keeps a
/// majority of processes crash-free, so deliveries fanned out to
/// distinct safe destinations still commute even though crash-eligible
/// destinations never do.
#[test]
fn dpor_preserves_fingerprints_while_pruning_cross_topic_storm() {
    let spec = corpus_spec("cross_topic_storm");
    let (on, off) = dpor_on_off(&spec, 5);
    assert!(on.passed() && off.passed());
    assert!(
        !off.stats.truncated,
        "bound too wide for a sound comparison"
    );
    assert_eq!(on.fingerprints, off.fingerprints, "reachable set unchanged");
    assert!(
        on.stats.states < off.stats.states,
        "dpor must strictly reduce explored states: {} vs {}",
        on.stats.states,
        off.stats.states
    );
    assert!(on.stats.dpor_pruned > 0);
}

// ------------------------------------------------------------------
// Property tests (the PR's proptest satellite).

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random-walk exploration at depth `d` with seed `s` is
    /// byte-deterministic: same inputs, same witness (or same absence),
    /// byte for byte, and same coverage counters.
    #[test]
    fn random_walks_are_byte_deterministic(
        seed in 0u64..10_000,
        depth in 8u32..48,
        n in 2usize..5,
    ) {
        let mut spec = eager_trap(n, seed);
        spec.check.walks = 16;
        let run = || check_scenario(&spec, Some(Strategy::Random), Some(depth), Some(seed)).unwrap();
        let a = run();
        let b = run();
        prop_assert_eq!(a.stats.states, b.stats.states);
        prop_assert_eq!(a.stats.engine_steps, b.stats.engine_steps);
        prop_assert_eq!(a.stats.max_depth, b.stats.max_depth);
        match (&a.counterexample, &b.counterexample) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert_eq!(x.body_json(), y.body_json()),
            _ => prop_assert!(false, "witness presence must be deterministic"),
        }
    }

    /// Every counterexample any strategy emits replays to the same
    /// invariant violation — including after a serialization round trip.
    #[test]
    fn every_emitted_counterexample_replays(
        seed in 0u64..10_000,
        n in 2usize..5,
        strategy_pick in 0u8..3,
    ) {
        let strategy = match strategy_pick {
            0 => Strategy::Dfs,
            1 => Strategy::DporLite,
            _ => Strategy::Random,
        };
        let spec = eager_trap(n, seed);
        let outcome = check_scenario(&spec, Some(strategy), None, Some(seed)).unwrap();
        if let Some(cx) = &outcome.counterexample {
            let replayed = cx.replay();
            prop_assert!(replayed.is_ok(), "{:?}", replayed);
            prop_assert_eq!(replayed.unwrap(), cx.violation.clone());
            let parsed = Counterexample::parse(&cx.body_json()).unwrap();
            prop_assert_eq!(parsed.replay().unwrap(), cx.violation.clone());
        }
    }
}
