//! A tiny single-process driving harness for unit tests, doctests and
//! examples.
//!
//! [`StepHarness`] owns the buffers a [`Context`] borrows, so a test can
//! feed a state machine one event at a time and inspect exactly what it
//! broadcast and delivered — no network, no scheduler. The full multi-process
//! drivers live in `urb-sim` (discrete-event) and `urb-runtime` (threads);
//! this harness is deliberately minimal.

use urb_types::{
    AnonProcess, Context, Delivery, FdSnapshot, Payload, RandomSource, SplitMix64, Tag,
    WireMessage,
};

/// Owns everything a [`Context`] needs, for driving one process by hand.
pub struct StepHarness {
    rng: SplitMix64,
    /// The failure-detector snapshot handed to the next step. Mutate freely
    /// between steps to script detector behaviour.
    pub fd: FdSnapshot,
    outbox: Vec<WireMessage>,
    deliveries: Vec<Delivery>,
}

impl StepHarness {
    /// New harness with a deterministic RNG seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        StepHarness {
            rng: SplitMix64::new(seed),
            fd: FdSnapshot::none(),
            outbox: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    /// Calls `URB_broadcast(payload)` on `proc` and returns the assigned tag
    /// together with everything the step emitted.
    pub fn broadcast(&mut self, proc: &mut dyn AnonProcess, payload: Payload) -> (Tag, StepOut) {
        let mut outbox = Vec::new();
        let mut deliveries = Vec::new();
        let tag = {
            let mut ctx = Context::new(&mut self.rng, &self.fd, &mut outbox, &mut deliveries);
            proc.urb_broadcast(payload, &mut ctx)
        };
        self.collect(&mut outbox, &mut deliveries);
        (tag, self.last_step(outbox, deliveries))
    }

    /// Feeds one received wire message to `proc`.
    pub fn receive(&mut self, proc: &mut dyn AnonProcess, msg: WireMessage) -> StepOut {
        let mut outbox = Vec::new();
        let mut deliveries = Vec::new();
        {
            let mut ctx = Context::new(&mut self.rng, &self.fd, &mut outbox, &mut deliveries);
            proc.on_receive(msg, &mut ctx);
        }
        self.collect(&mut outbox, &mut deliveries);
        self.last_step(outbox, deliveries)
    }

    /// Runs one Task-1 sweep on `proc`.
    pub fn tick(&mut self, proc: &mut dyn AnonProcess) -> StepOut {
        let mut outbox = Vec::new();
        let mut deliveries = Vec::new();
        {
            let mut ctx = Context::new(&mut self.rng, &self.fd, &mut outbox, &mut deliveries);
            proc.on_tick(&mut ctx);
        }
        self.collect(&mut outbox, &mut deliveries);
        self.last_step(outbox, deliveries)
    }

    fn collect(&mut self, outbox: &[WireMessage], deliveries: &[Delivery]) {
        self.outbox.extend(outbox.iter().cloned());
        self.deliveries.extend(deliveries.iter().cloned());
    }

    fn last_step(&self, outbox: Vec<WireMessage>, deliveries: Vec<Delivery>) -> StepOut {
        StepOut {
            broadcasts: outbox,
            deliveries,
        }
    }

    /// Every message broadcast since the harness was created.
    pub fn all_broadcasts(&self) -> &[WireMessage] {
        &self.outbox
    }

    /// Every delivery since the harness was created.
    pub fn all_deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Direct access to the deterministic RNG (e.g. to mint tags for
    /// hand-crafted incoming messages).
    pub fn rng(&mut self) -> &mut dyn RandomSource {
        &mut self.rng
    }
}

/// What one protocol step emitted.
#[derive(Clone, Debug, Default)]
pub struct StepOut {
    /// Messages pushed to the outbox by this step, in order.
    pub broadcasts: Vec<WireMessage>,
    /// Deliveries produced by this step, in order.
    pub deliveries: Vec<Delivery>,
}

impl StepOut {
    /// The ACK messages among this step's broadcasts.
    pub fn acks(&self) -> Vec<&WireMessage> {
        self.broadcasts
            .iter()
            .filter(|m| matches!(m, WireMessage::Ack { .. }))
            .collect()
    }

    /// The MSG messages among this step's broadcasts.
    pub fn msgs(&self) -> Vec<&WireMessage> {
        self.broadcasts
            .iter()
            .filter(|m| matches!(m, WireMessage::Msg { .. }))
            .collect()
    }

    /// True when nothing was broadcast and nothing delivered.
    pub fn is_silent(&self) -> bool {
        self.broadcasts.is_empty() && self.deliveries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorityUrb;

    #[test]
    fn harness_accumulates_history() {
        let mut h = StepHarness::new(1);
        let mut p = MajorityUrb::new(3);
        let (_, out) = h.broadcast(&mut p, Payload::from("x"));
        // urb_broadcast emits the initial MSG immediately (D7 note).
        assert_eq!(out.msgs().len(), 1);
        let _ = h.tick(&mut p);
        assert!(h.all_broadcasts().len() >= 2);
        assert!(h.all_deliveries().is_empty());
    }

    #[test]
    fn stepout_filters() {
        let out = StepOut::default();
        assert!(out.is_silent());
        assert!(out.acks().is_empty());
        assert!(out.msgs().is_empty());
    }
}
