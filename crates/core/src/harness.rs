//! A tiny single-process driving harness for unit tests, doctests and
//! examples — the third adapter over the shared engine.
//!
//! [`StepHarness`] owns the RNG, the scripted failure-detector snapshot and
//! the reusable [`StepBuffers`] a [`urb_types::Context`] borrows, so a test
//! can feed a state machine one event at a time and inspect exactly what it
//! broadcast and delivered — no network, no scheduler. Every step goes
//! through [`urb_engine::drive_step`], the *same* code path the
//! discrete-event simulator (`urb-sim`) and the threaded runtime
//! (`urb-runtime`) execute, so what a unit test observes is what a
//! deployment does.

use urb_engine::{drive_step, StepBuffers, StepInput};
use urb_types::{
    AnonProcess, Delivery, FdSnapshot, Payload, RandomSource, SplitMix64, Tag, WireMessage,
};

/// Owns everything a protocol step needs, for driving one process by hand.
pub struct StepHarness {
    rng: SplitMix64,
    /// The failure-detector snapshot handed to the next step. Mutate freely
    /// between steps to script detector behaviour.
    pub fd: FdSnapshot,
    buf: StepBuffers,
    outbox_history: Vec<WireMessage>,
    delivery_history: Vec<Delivery>,
}

impl StepHarness {
    /// New harness with a deterministic RNG seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        StepHarness {
            rng: SplitMix64::new(seed),
            fd: FdSnapshot::none(),
            buf: StepBuffers::new(),
            outbox_history: Vec::new(),
            delivery_history: Vec::new(),
        }
    }

    /// Calls `URB_broadcast(payload)` on `proc` and returns the assigned tag
    /// together with everything the step emitted.
    pub fn broadcast(&mut self, proc: &mut dyn AnonProcess, payload: Payload) -> (Tag, StepOut) {
        let tag = self
            .step(proc, StepInput::Broadcast(payload))
            .expect("urb_broadcast assigns a tag");
        (tag, self.collect())
    }

    /// Feeds one received wire message to `proc`.
    pub fn receive(&mut self, proc: &mut dyn AnonProcess, msg: WireMessage) -> StepOut {
        self.step(proc, StepInput::Receive(msg));
        self.collect()
    }

    /// Runs one Task-1 sweep on `proc`.
    pub fn tick(&mut self, proc: &mut dyn AnonProcess) -> StepOut {
        self.step(proc, StepInput::Tick);
        self.collect()
    }

    fn step(&mut self, proc: &mut dyn AnonProcess, input: StepInput) -> Option<Tag> {
        drive_step(proc, input, &self.fd, &mut self.rng, &mut self.buf)
    }

    fn collect(&mut self) -> StepOut {
        self.outbox_history.extend(self.buf.outbox.iter().cloned());
        self.delivery_history
            .extend(self.buf.deliveries.iter().cloned());
        StepOut {
            broadcasts: self.buf.outbox.clone(),
            deliveries: self.buf.deliveries.clone(),
        }
    }

    /// Every message broadcast since the harness was created.
    pub fn all_broadcasts(&self) -> &[WireMessage] {
        &self.outbox_history
    }

    /// Every delivery since the harness was created.
    pub fn all_deliveries(&self) -> &[Delivery] {
        &self.delivery_history
    }

    /// Direct access to the deterministic RNG (e.g. to mint tags for
    /// hand-crafted incoming messages).
    pub fn rng(&mut self) -> &mut dyn RandomSource {
        &mut self.rng
    }
}

/// What one protocol step emitted.
#[derive(Clone, Debug, Default)]
pub struct StepOut {
    /// Messages pushed to the outbox by this step, in order.
    pub broadcasts: Vec<WireMessage>,
    /// Deliveries produced by this step, in order.
    pub deliveries: Vec<Delivery>,
}

impl StepOut {
    /// The ACK messages among this step's broadcasts.
    pub fn acks(&self) -> Vec<&WireMessage> {
        self.broadcasts
            .iter()
            .filter(|m| matches!(m, WireMessage::Ack { .. }))
            .collect()
    }

    /// The MSG messages among this step's broadcasts.
    pub fn msgs(&self) -> Vec<&WireMessage> {
        self.broadcasts
            .iter()
            .filter(|m| matches!(m, WireMessage::Msg { .. }))
            .collect()
    }

    /// True when nothing was broadcast and nothing delivered.
    pub fn is_silent(&self) -> bool {
        self.broadcasts.is_empty() && self.deliveries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorityUrb;

    #[test]
    fn harness_accumulates_history() {
        let mut h = StepHarness::new(1);
        let mut p = MajorityUrb::new(3);
        let (_, out) = h.broadcast(&mut p, Payload::from("x"));
        // urb_broadcast emits the initial MSG immediately (D7 note).
        assert_eq!(out.msgs().len(), 1);
        let _ = h.tick(&mut p);
        assert!(h.all_broadcasts().len() >= 2);
        assert!(h.all_deliveries().is_empty());
    }

    #[test]
    fn stepout_filters() {
        let out = StepOut::default();
        assert!(out.is_silent());
        assert!(out.acks().is_empty());
        assert!(out.msgs().is_empty());
    }
}
