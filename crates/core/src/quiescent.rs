//! **Algorithm 2** — Quiescent Uniform Reliable Broadcast in
//! `AAS_F[AΘ, AP*]` (paper §VI).
//!
//! Two problems with Algorithm 1 are fixed at once:
//!
//! 1. *Resilience.* Theorem 2 shows URB is unsolvable with `t ≥ n/2` in the
//!    bare model. The anonymous failure detector `AΘ` circumvents it: an ACK
//!    now carries the set of labels its sender currently sees in `a_theta`,
//!    and a message is delivered once, for some `(label, number) ∈ a_theta`,
//!    exactly `number` distinct ACKers have reported `label`
//!    (line 46). `AΘ`-accuracy guarantees any such set of ACKers contains a
//!    correct process — the URB delivery condition — with **any** number of
//!    crashes.
//! 2. *Quiescence.* `AP*` eventually outputs exactly the labels of the
//!    correct processes. Once every pair `(label, number) ∈ a_p*` is matched
//!    by the ACK counters for a delivered message (line 55), every correct
//!    process provably has the message, so Task 1 can stop retransmitting it
//!    (line 57) and the protocol goes silent — Theorem 3.
//!
//! ### Label-counter bookkeeping (lines 22–45)
//!
//! For each tracked message the process maintains
//! `all_labels[tag_ack] = labels` (the label set most recently reported by
//! that anonymous ACKer) and `label_counter[label] = |{tag_ack : label ∈
//! all_labels[tag_ack]}|`. The paper's three reception cases (new ACK,
//! repeated ACK with more labels, repeated ACK with fewer labels) are all
//! instances of one *reconcile* operation that replaces the stored label set
//! and repairs the counters — see DESIGN.md D3 for why we collapse the
//! paper's (garbled) nested loops into this invariant-preserving form.
//!
//! ### The dead-ACKer purge (DESIGN.md D4)
//!
//! The literal line-55 equality can be blocked forever by the ACK of a
//! process that crashed *after* acknowledging: its `all_labels` entry still
//! contains the crashed process's own label, which `AP*` has removed, so the
//! label sets never reconverge. [`PruneRule::Purge`] (the default) removes
//! entries containing labels absent from `a_p*` before evaluating the
//! condition; [`PruneRule::Literal`] keeps the paper's literal condition for
//! the E12 ablation, which demonstrates the blockage empirically.

use crate::compact::{fd_signature, TombstoneRing};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use urb_types::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use urb_types::{
    AnonProcess, CompactionReport, Context, FdSnapshot, FdView, Label, LabelSet, MemoryConfig,
    Payload, ProcessStats, SpillPolicy, Tag, TagAck, WireMessage,
};

/// How the Task-1 prune condition (line 55) treats stale state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PruneRule {
    /// Default: purge entries of dead ACKers (label sets containing labels
    /// absent from `a_p*`) before testing the equality. Quiescent even when
    /// processes crash after acknowledging.
    Purge,
    /// The paper's literal condition, no purge. Quiescent only when crashed
    /// processes never acknowledged; used by ablation E12.
    Literal,
}

/// Acknowledgment table for one `(m, tag)` — the per-tag slice of the
/// paper's `ALL_ACK_i`, `all_labels_i[(m,tag), −]` and
/// `label_counter_i[(m,tag), −]` structures (allocated at line 24–25).
#[derive(Clone, Debug, Default, Serialize)]
struct AckTable {
    /// `all_labels[(m,tag), tag_ack]` — latest label set per distinct ACKer.
    entries: BTreeMap<TagAck, LabelSet>,
    /// `label_counter[(m,tag), label]` — how many ACKers currently report
    /// `label`. Invariant: `counters[l] == |{ta : l ∈ entries[ta]}|`,
    /// entries with count 0 removed.
    counters: BTreeMap<Label, u32>,
    /// Payload learned from ACKs (they piggyback `m`; DESIGN.md D1).
    payload: Payload,
}

impl AckTable {
    fn new(payload: Payload) -> Self {
        AckTable {
            entries: BTreeMap::new(),
            counters: BTreeMap::new(),
            payload,
        }
    }

    /// Current counter for `label` (0 when absent).
    fn counter(&self, label: Label) -> u32 {
        self.counters.get(&label).copied().unwrap_or(0)
    }

    /// The reconcile operation (lines 27–45 collapsed, DESIGN.md D3):
    /// replace the label set stored for `tag_ack` with `labels`, repairing
    /// the counters. Handles all three of the paper's cases (first ACK from
    /// this ACKer, repeated ACK with more labels, repeated ACK with fewer).
    fn reconcile(&mut self, tag_ack: TagAck, labels: LabelSet) {
        let old = self.entries.insert(tag_ack, labels.clone());
        if let Some(old) = old {
            // Decrement labels that disappeared (lines 38–44).
            for l in old.difference(&labels) {
                self.dec(l);
            }
            // Increment labels that are new (lines 34–37).
            for l in labels.difference(&old) {
                self.inc(l);
            }
        } else {
            // First ACK from this ACKer (lines 27–32).
            for l in labels.iter() {
                self.inc(l);
            }
        }
    }

    fn inc(&mut self, label: Label) {
        *self.counters.entry(label).or_insert(0) += 1;
    }

    fn dec(&mut self, label: Label) {
        match self.counters.get_mut(&label) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counters.remove(&label);
            }
            None => debug_assert!(false, "decrement of absent counter"),
        }
    }

    /// Removes every entry whose label set contains a label outside `live`
    /// (dead-ACKer purge, DESIGN.md D4). Returns how many entries went.
    fn purge_dead(&mut self, live: &LabelSet) -> usize {
        let dead: Vec<TagAck> = self
            .entries
            .iter()
            .filter(|(_, ls)| !ls.is_subset(live))
            .map(|(ta, _)| *ta)
            .collect();
        for ta in &dead {
            if let Some(old) = self.entries.remove(ta) {
                for l in old.iter() {
                    self.dec(l);
                }
            }
        }
        dead.len()
    }

    /// Union of all stored label sets — the paper's
    /// `all_labels_i[(m,tag), −]` as used on line 55.
    fn label_union(&self) -> LabelSet {
        let mut u = LabelSet::new();
        for ls in self.entries.values() {
            u.union_with(ls);
        }
        u
    }

    /// Re-derives the counters from the entries. Test/debug aid for the
    /// counter invariant.
    #[cfg(test)]
    fn recomputed_counters(&self) -> BTreeMap<Label, u32> {
        let mut m = BTreeMap::new();
        for ls in self.entries.values() {
            for l in ls.iter() {
                *m.entry(l).or_insert(0u32) += 1;
            }
        }
        m
    }
}

/// Algorithm 2: quiescent URB with `AΘ` and `AP*` (code of `p_i`).
///
/// ```
/// use urb_core::{harness::StepHarness, QuiescentUrb};
/// use urb_types::{AnonProcess, FdPair, FdSnapshot, FdView, Label, LabelSet,
///                 Payload, Tag, TagAck, WireMessage};
///
/// // One correct process knowing one label: a_theta = a_p* = {(ℓ, 1)}.
/// let view = FdView::from_pairs([FdPair { label: Label(10), number: 1 }]);
/// let mut h = StepHarness::new(3);
/// h.fd = FdSnapshot::new(view.clone(), view);
///
/// let mut p = QuiescentUrb::new();
/// // Receive the message, then its (self-)ACK carrying label 10.
/// h.receive(&mut p, WireMessage::Msg { tag: Tag(7), payload: Payload::from("m") });
/// let out = h.receive(&mut p, WireMessage::Ack {
///     tag: Tag(7), tag_ack: TagAck(100), payload: Payload::from("m"),
///     labels: Some(LabelSet::from_iter([Label(10)])),
/// });
/// assert_eq!(out.deliveries.len(), 1);  // counter(ℓ10) == number == 1
///
/// // One Task-1 sweep later the message is pruned: quiescence.
/// h.tick(&mut p);
/// assert!(p.is_quiescent());
/// ```
///
/// State maps to the paper's structures:
///
/// | paper                          | field        |
/// |--------------------------------|--------------|
/// | `MSG_i`                        | `msgs`       |
/// | `MY_ACK_i`                     | `my_acks`    |
/// | `ALL_ACK_i` + `all_labels_i` + `label_counter_i` | `acks` (per-tag ACK tables) |
/// | `URB_DELIVERED_i`              | `delivered`  |
#[derive(Clone, Debug)]
pub struct QuiescentUrb {
    msgs: BTreeMap<Tag, Payload>,
    my_acks: BTreeMap<Tag, TagAck>,
    acks: BTreeMap<Tag, AckTable>,
    delivered: BTreeSet<Tag>,
    rule: PruneRule,
    /// Count of prune events (messages removed from `MSG`), for diagnostics.
    pruned: u64,
    /// Bounded-memory mode (DESIGN.md §14); `None` = compaction off, state
    /// and behavior byte-identical to the unbounded engine.
    mem: Option<MemoryConfig>,
    /// Grace clocks: consecutive stable compaction sweeps per candidate tag.
    grace: BTreeMap<Tag, u32>,
    /// Tags already compacted; late copies are dropped on receipt.
    tombs: TombstoneRing,
    /// Detector-view fingerprint at the last sweep (conservative mode).
    fd_sig: u64,
    /// Count of tags compacted so far, for diagnostics.
    compacted: u64,
}

impl QuiescentUrb {
    /// Faithful Algorithm 2 with the D4 purge enabled.
    pub fn new() -> Self {
        Self::with_rule(PruneRule::Purge)
    }

    /// Algorithm 2 with an explicit prune rule (E12 ablation uses
    /// [`PruneRule::Literal`]).
    pub fn with_rule(rule: PruneRule) -> Self {
        QuiescentUrb {
            msgs: BTreeMap::new(),
            my_acks: BTreeMap::new(),
            acks: BTreeMap::new(),
            delivered: BTreeSet::new(),
            rule,
            pruned: 0,
            mem: None,
            grace: BTreeMap::new(),
            tombs: TombstoneRing::new(0),
            fd_sig: 0,
            compacted: 0,
        }
    }

    /// Number of tags reclaimed by the bounded-memory mode so far.
    pub fn compacted_count(&self) -> u64 {
        self.compacted
    }

    /// True when `tag` was compacted and is still tombstoned.
    pub fn is_tombstoned(&self, tag: Tag) -> bool {
        self.tombs.contains(tag)
    }

    /// True when this process has URB-delivered `tag`.
    pub fn has_delivered(&self, tag: Tag) -> bool {
        self.delivered.contains(&tag)
    }

    /// Number of messages this process has pruned from its `MSG` set.
    pub fn pruned_count(&self) -> u64 {
        self.pruned
    }

    /// Current counter for (`tag`, `label`) — test/diagnostic accessor.
    pub fn label_counter(&self, tag: Tag, label: Label) -> u32 {
        self.acks.get(&tag).map_or(0, |t| t.counter(label))
    }

    /// Lines 7–21: handle `(MSG, m, tag)`.
    fn handle_msg(&mut self, tag: Tag, payload: Payload, ctx: &mut Context<'_>) {
        // DESIGN.md §14: a compacted tag's late copies are dropped whole.
        // Re-acknowledging would need MY_ACK back (gone), and re-entering
        // MSG would resurrect a message every correct process already has.
        if self.tombs.contains(tag) {
            return;
        }
        // Lines 8–12: enter MSG only if neither tracked nor already
        // delivered (a pruned message must not re-enter the rebroadcast set,
        // or quiescence would be lost).
        if !self.msgs.contains_key(&tag) && !self.delivered.contains(&tag) {
            self.msgs.insert(tag, payload.clone());
        }
        // Lines 13–21: acknowledge with the stable tag_ack and the *current*
        // a_theta labels (the label set is re-read on every retransmission —
        // that is what lets receivers reconcile stale label information).
        let tag_ack = match self.my_acks.get(&tag) {
            Some(ta) => *ta, // lines 13–15
            None => {
                let ta = TagAck::random(ctx.rng); // line 17
                self.my_acks.insert(tag, ta); // line 18
                ta
            }
        };
        let labels = ctx.fd.a_theta.labels(); // lines 14 / 19
        ctx.broadcast(WireMessage::Ack {
            tag,
            tag_ack,
            payload,
            labels: Some(labels),
        }); // lines 15 / 20
    }

    /// Lines 22–51: handle `(ACK, m, tag, tag_ack, labels_j)`.
    fn handle_ack(
        &mut self,
        tag: Tag,
        tag_ack: TagAck,
        payload: Payload,
        labels: Option<LabelSet>,
        ctx: &mut Context<'_>,
    ) {
        // DESIGN.md §14: ignore ACKs for compacted tags — the tag was
        // already delivered here, and rebuilding its ACK table would undo
        // the reclamation for no protocol benefit.
        if self.tombs.contains(tag) {
            return;
        }
        // Lines 23–26: lazily allocate the per-tag table.
        let table = self
            .acks
            .entry(tag)
            .or_insert_with(|| AckTable::new(payload));
        // Lines 27–45: reconcile this ACKer's label set (DESIGN.md D3).
        table.reconcile(tag_ack, labels.unwrap_or_default());
        // D4 extension (see module docs): purge entries carrying labels the
        // detector no longer outputs before evaluating the delivery
        // equality. Without this, an ACKer that crashes after acknowledging
        // permanently inflates the counters of *live* labels past `number`
        // once `number` shrinks — the equality is then missed forever and
        // the message is never delivered (observed under online detectors;
        // the paper's Lemma 1 implicitly assumes counters pass through
        // `number`, which only holds if dead entries are dropped). Removing
        // entries only lowers counters, so the condition gets *harder*:
        // safety is unaffected, and liveness is restored because live
        // ACKers keep refreshing their entries.
        if self.rule == PruneRule::Purge && !ctx.fd.a_theta.is_empty() {
            table.purge_dead(&ctx.fd.a_theta.labels());
        }
        // Lines 46–51: the AΘ delivery condition.
        if !self.delivered.contains(&tag) {
            let matched = ctx
                .fd
                .a_theta
                .iter()
                // number == 0 never triggers delivery: a pair whose label no
                // correct process knows carries no evidence (and 0 == empty
                // counter would mis-fire). The paper implicitly has
                // number >= 1 (accuracy forces a correct knower).
                .any(|pair| pair.number > 0 && table.counter(pair.label) == pair.number);
            if matched {
                self.delivered.insert(tag);
                let fast = !self.msgs.contains_key(&tag);
                let body = table.payload.clone();
                ctx.deliver(tag, body, fast);
            }
        }
    }

    /// Line 55 (plus D4): may `tag` stop being retransmitted?
    fn prune_ready(&mut self, tag: Tag, a_p_star: &FdView) -> bool {
        // No AP* information yet — keep retransmitting. (An empty a_p* would
        // make the universally-quantified condition vacuously true and prune
        // everything instantly, which is clearly not the intent: AP*
        // completeness guarantees the correct processes' pairs eventually
        // appear.)
        if a_p_star.is_empty() {
            return false;
        }
        let Some(table) = self.acks.get_mut(&tag) else {
            return false;
        };
        let live = a_p_star.labels();
        if self.rule == PruneRule::Purge {
            table.purge_dead(&live);
        }
        // "each pair (label, number) ∈ a_p*: label_counter[(m,tag), label] =
        // number" …
        for pair in a_p_star.iter() {
            if pair.number == 0 || table.counter(pair.label) != pair.number {
                return false;
            }
        }
        // … "∧ all_labels[(m,tag), −] = {label | (label, −) ∈ a_p*}".
        table.label_union() == live
    }

    /// Testing hook used by the simulator's diagnostics: evaluates the prune
    /// condition without mutating (clone-based; cheap at protocol scale).
    pub fn would_prune(&self, tag: Tag, a_p_star: &FdView) -> bool {
        self.clone().prune_ready(tag, a_p_star)
    }

    /// Reclaims every entry held for `tag` and tombstones it. Returns the
    /// number of state entries dropped (in [`ProcessStats::total`] units).
    fn reclaim(&mut self, tag: Tag) -> usize {
        let mut freed = 0;
        if self.my_acks.remove(&tag).is_some() {
            freed += 1;
        }
        if let Some(table) = self.acks.remove(&tag) {
            freed += table.entries.len() + table.counters.len();
        }
        if self.delivered.remove(&tag) {
            freed += 1;
        }
        self.grace.remove(&tag);
        self.tombs.push(tag);
        self.compacted += 1;
        freed
    }
}

impl Default for QuiescentUrb {
    fn default() -> Self {
        Self::new()
    }
}

impl AnonProcess for QuiescentUrb {
    /// Lines 4–6 plus the immediate first transmission (D7).
    fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
        let tag = Tag::random(ctx.rng); // line 5
        self.msgs.insert(tag, payload.clone()); // line 6
        ctx.broadcast(WireMessage::Msg { tag, payload });
        tag
    }

    fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
        match msg {
            WireMessage::Msg { tag, payload } => self.handle_msg(tag, payload, ctx),
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels,
            } => self.handle_ack(tag, tag_ack, payload, labels, ctx),
            WireMessage::Heartbeat { .. } => {}
        }
    }

    /// Task 1, lines 52–61: rebroadcast everything still in `MSG`, then
    /// prune the messages whose line-55 condition holds.
    fn on_tick(&mut self, ctx: &mut Context<'_>) {
        let tags: Vec<Tag> = self.msgs.keys().copied().collect();
        let mut to_remove = Vec::new();
        for tag in tags {
            let payload = self.msgs[&tag].clone();
            ctx.broadcast(WireMessage::Msg { tag, payload }); // line 54

            // Lines 55–58: only a *delivered* message may be pruned.
            if self.delivered.contains(&tag) && self.prune_ready(tag, &ctx.fd.a_p_star) {
                to_remove.push(tag);
            }
        }
        for tag in to_remove {
            self.msgs.remove(&tag); // line 57
            self.pruned += 1;
        }
    }

    /// Quiescent once `MSG_i` is empty: Task 1 sends nothing, and ACKs are
    /// only ever triggered by incoming MSGs.
    fn is_quiescent(&self) -> bool {
        self.msgs.is_empty()
    }

    fn stats(&self) -> ProcessStats {
        ProcessStats {
            msg_set: self.msgs.len(),
            my_acks: self.my_acks.len(),
            all_ack_entries: self.acks.values().map(|t| t.entries.len()).sum(),
            delivered: self.delivered.len(),
            label_counters: self.acks.values().map(|t| t.counters.len()).sum(),
        }
    }

    fn algorithm_name(&self) -> &'static str {
        match self.rule {
            PruneRule::Purge => "alg2-quiescent",
            PruneRule::Literal => "alg2-literal",
        }
    }

    fn configure_memory(&mut self, cfg: MemoryConfig) {
        self.tombs = TombstoneRing::new(cfg.tombstones);
        self.mem = Some(cfg);
    }

    /// Algorithm 2 stability rule (DESIGN.md §14): a tag may be reclaimed
    /// once it is delivered, already line-57 pruned out of `MSG`, and the
    /// line-55 coverage (`a_p*` counters exact, label union equal) still
    /// holds — i.e. every correct process provably URB-delivered it — for
    /// `grace_ticks` consecutive sweeps.
    fn compact(&mut self, fd: &FdSnapshot) -> CompactionReport {
        let Some(cfg) = self.mem else {
            return CompactionReport::default();
        };
        let mut report = CompactionReport::default();
        // Conservative mode: any detector movement is treated as suspicion
        // and restarts every grace clock.
        if cfg.conservative {
            let sig = fd_signature(fd);
            if sig != self.fd_sig {
                self.fd_sig = sig;
                self.grace.clear();
            }
        }
        let over = cfg.ceiling.is_some_and(|c| self.stats().total() > c);
        let candidates: Vec<Tag> = self.delivered.iter().copied().collect();
        for tag in candidates {
            let stable = !self.msgs.contains_key(&tag) && self.prune_ready(tag, &fd.a_p_star);
            if !stable {
                self.grace.remove(&tag);
                continue;
            }
            let clock = self.grace.entry(tag).or_insert(0);
            *clock += 1;
            // Over the ceiling the grace period is waived for stable tags
            // (the SpillPolicy::StableOnly floor: unstable state is never
            // touched, no matter the pressure).
            if *clock > cfg.grace_ticks || over {
                report.reclaimed += self.reclaim(tag);
                report.tombstoned += 1;
            }
        }
        if over && cfg.spill == SpillPolicy::Tombstones {
            self.tombs.shed_half();
        }
        report
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = SnapshotWriter::new();
        w.put_u8(match self.rule {
            PruneRule::Purge => 0,
            PruneRule::Literal => 1,
        });
        w.put_u64(self.pruned);
        w.put_u64(self.compacted);
        w.put_u64(self.fd_sig);
        w.put_u64(self.msgs.len() as u64);
        for (tag, payload) in &self.msgs {
            w.put_u128(tag.0);
            w.put_bytes(payload.as_slice());
        }
        w.put_u64(self.my_acks.len() as u64);
        for (tag, ta) in &self.my_acks {
            w.put_u128(tag.0);
            w.put_u128(ta.0);
        }
        w.put_u64(self.acks.len() as u64);
        for (tag, table) in &self.acks {
            w.put_u128(tag.0);
            w.put_bytes(table.payload.as_slice());
            w.put_u64(table.entries.len() as u64);
            for (ta, labels) in &table.entries {
                w.put_u128(ta.0);
                w.put_u64(labels.len() as u64);
                for label in labels.iter() {
                    w.put_u64(label.0);
                }
            }
        }
        w.put_u64(self.delivered.len() as u64);
        for tag in &self.delivered {
            w.put_u128(tag.0);
        }
        self.tombs.save(&mut w);
        w.put_u64(self.grace.len() as u64);
        for (tag, clock) in &self.grace {
            w.put_u128(tag.0);
            w.put_u32(*clock);
        }
        Some(w.into_body())
    }

    fn restore_state(&mut self, body: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(body);
        let rule = match r.get_u8()? {
            0 => PruneRule::Purge,
            1 => PruneRule::Literal,
            other => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown prune rule byte {other}"
                )))
            }
        };
        if rule != self.rule {
            return Err(SnapshotError::Malformed(format!(
                "snapshot prune rule {rule:?} does not match instance rule {:?}",
                self.rule
            )));
        }
        self.pruned = r.get_u64()?;
        self.compacted = r.get_u64()?;
        self.fd_sig = r.get_u64()?;
        self.msgs.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let payload = Payload::copy_from_slice(r.get_bytes()?);
            self.msgs.insert(tag, payload);
        }
        self.my_acks.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let ta = TagAck(r.get_u128()?);
            self.my_acks.insert(tag, ta);
        }
        self.acks.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let payload = Payload::copy_from_slice(r.get_bytes()?);
            let mut table = AckTable::new(payload);
            for _ in 0..r.get_u64()? {
                let ta = TagAck(r.get_u128()?);
                let mut labels = LabelSet::new();
                for _ in 0..r.get_u64()? {
                    labels.insert(Label(r.get_u64()?));
                }
                // Rebuild through reconcile so the counter invariant is
                // re-derived, never trusted from the file.
                table.reconcile(ta, labels);
            }
            self.acks.insert(tag, table);
        }
        self.delivered.clear();
        for _ in 0..r.get_u64()? {
            self.delivered.insert(Tag(r.get_u128()?));
        }
        self.tombs = TombstoneRing::restore(&mut r, self.mem.map_or(0, |m| m.tombstones))?;
        self.grace.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let clock = r.get_u32()?;
            self.grace.insert(tag, clock);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StepHarness;
    use urb_types::{FdPair, FdSnapshot};

    fn labels(ls: &[u64]) -> LabelSet {
        LabelSet::from_iter(ls.iter().map(|&l| Label(l)))
    }

    fn theta(pairs: &[(u64, u32)]) -> FdView {
        FdView::from_pairs(pairs.iter().map(|&(l, n)| FdPair {
            label: Label(l),
            number: n,
        }))
    }

    fn msg(tag: u128, body: &str) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from(body),
        }
    }

    fn ack(tag: u128, ta: u128, body: &str, ls: &[u64]) -> WireMessage {
        WireMessage::Ack {
            tag: Tag(tag),
            tag_ack: TagAck(ta),
            payload: Payload::from(body),
            labels: Some(labels(ls)),
        }
    }

    /// Harness with `a_theta = a_p* = {(ℓ, n) for ℓ in ls}`.
    fn fd_harness(seed: u64, ls: &[(u64, u32)]) -> StepHarness {
        let mut h = StepHarness::new(seed);
        h.fd = FdSnapshot::new(theta(ls), theta(ls));
        h
    }

    // ---- reception of MSG (lines 7–21) ----------------------------------

    #[test]
    fn ack_carries_current_theta_labels() {
        let mut h = fd_harness(1, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        let out = h.receive(&mut p, msg(7, "m"));
        match out.acks()[0] {
            WireMessage::Ack {
                labels: Some(ls), ..
            } => {
                assert_eq!(*ls, labels(&[10, 20]));
            }
            _ => panic!("expected labelled ACK"),
        }
    }

    #[test]
    fn retransmitted_ack_has_same_tag_ack_but_fresh_labels() {
        let mut h = fd_harness(2, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        let o1 = h.receive(&mut p, msg(7, "m"));
        // Detector evolves: label 20's process crashed and was removed.
        h.fd = FdSnapshot::new(theta(&[(10, 1)]), theta(&[(10, 1)]));
        let o2 = h.receive(&mut p, msg(7, "m"));
        let parse = |o: &crate::harness::StepOut| match o.acks()[0] {
            WireMessage::Ack {
                tag_ack,
                labels: Some(ls),
                ..
            } => (*tag_ack, ls.clone()),
            _ => panic!(),
        };
        let (ta1, ls1) = parse(&o1);
        let (ta2, ls2) = parse(&o2);
        assert_eq!(ta1, ta2, "tag_ack stable (MY_ACK)");
        assert_eq!(ls1, labels(&[10, 20]));
        assert_eq!(ls2, labels(&[10]), "labels re-read each time");
    }

    #[test]
    fn delivered_and_pruned_message_does_not_reenter_msg_set() {
        // Lines 8–12: URB_DELIVERED check prevents re-adding.
        let mut h = fd_harness(3, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        // Get tag 7 delivered via an ACK from one ACKer knowing label 10.
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        assert!(p.has_delivered(Tag(7)));
        assert_eq!(p.stats().msg_set, 0, "fast delivery: MSG never stored");
        // Now the MSG copy arrives late.
        let out = h.receive(&mut p, msg(7, "m"));
        assert_eq!(p.stats().msg_set, 0, "delivered message must not enter MSG");
        // … but it is still acknowledged (for other processes' progress).
        assert_eq!(out.acks().len(), 1);
    }

    // ---- reception of ACK (lines 22–51) ----------------------------------

    #[test]
    fn delivery_when_counter_matches_theta_number() {
        let mut h = fd_harness(4, &[(10, 2)]);
        let mut p = QuiescentUrb::new();
        assert!(h
            .receive(&mut p, ack(7, 100, "m", &[10]))
            .deliveries
            .is_empty());
        let out = h.receive(&mut p, ack(7, 101, "m", &[10]));
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].payload.as_slice(), b"m");
        assert!(out.deliveries[0].fast);
    }

    #[test]
    fn no_delivery_on_zero_number_pair() {
        let mut h = fd_harness(5, &[(10, 0)]);
        let mut p = QuiescentUrb::new();
        let out = h.receive(&mut p, ack(7, 100, "m", &[]));
        assert!(out.deliveries.is_empty(), "number=0 must never fire");
    }

    #[test]
    fn repeated_ack_does_not_inflate_counters() {
        let mut h = fd_harness(6, &[(10, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        assert_eq!(p.label_counter(Tag(7), Label(10)), 1);
    }

    #[test]
    fn repeated_ack_with_more_labels_increments_new_only() {
        // Paper's case 1 of repeated ACKs (lines 34–37).
        let mut h = fd_harness(7, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        h.receive(&mut p, ack(7, 100, "m", &[10, 20]));
        assert_eq!(p.label_counter(Tag(7), Label(10)), 1);
        assert_eq!(p.label_counter(Tag(7), Label(20)), 1);
    }

    #[test]
    fn repeated_ack_with_fewer_labels_decrements_removed() {
        // Paper's case 2 of repeated ACKs (lines 38–44): a label vanished
        // from the ACKer's detector (its process crashed).
        let mut h = fd_harness(8, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, ack(7, 100, "m", &[10, 20]));
        h.receive(&mut p, ack(7, 101, "m", &[10, 20]));
        assert_eq!(p.label_counter(Tag(7), Label(20)), 2);
        // ACKer 100 refreshes with label 20 gone.
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        assert_eq!(p.label_counter(Tag(7), Label(10)), 2);
        assert_eq!(p.label_counter(Tag(7), Label(20)), 1);
    }

    #[test]
    fn delivery_condition_reevaluated_after_reconcile_shrink() {
        // number drops to 1 after a crash; the remaining ACKer's refreshed
        // ACK must still be able to trigger delivery.
        let mut h = fd_harness(9, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, ack(7, 100, "m", &[10, 20]));
        // Crash: detector now says only label 10 with number 1.
        h.fd = FdSnapshot::new(theta(&[(10, 1)]), theta(&[(10, 1)]));
        let out = h.receive(&mut p, ack(7, 100, "m", &[10]));
        assert_eq!(out.deliveries.len(), 1, "counter(10)=1 == number(10)=1");
    }

    #[test]
    fn no_duplicate_delivery() {
        let mut h = fd_harness(10, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        assert_eq!(
            h.receive(&mut p, ack(7, 100, "m", &[10])).deliveries.len(),
            1
        );
        assert!(h
            .receive(&mut p, ack(7, 101, "m", &[10]))
            .deliveries
            .is_empty());
        assert_eq!(h.all_deliveries().len(), 1);
    }

    #[test]
    fn unlabelled_ack_is_tolerated_as_empty_set() {
        // Mixed deployments (an Algorithm-1 ACK) must not crash Algorithm 2.
        let mut h = fd_harness(11, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        let out = h.receive(
            &mut p,
            WireMessage::Ack {
                tag: Tag(7),
                tag_ack: TagAck(100),
                payload: Payload::from("m"),
                labels: None,
            },
        );
        assert!(out.deliveries.is_empty());
        assert_eq!(p.stats().all_ack_entries, 1);
        assert_eq!(p.stats().label_counters, 0);
    }

    // ---- Task 1 and quiescence (lines 52–61) -----------------------------

    #[test]
    fn tick_rebroadcasts_until_prune_condition() {
        let mut h = fd_harness(12, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        assert_eq!(h.tick(&mut p).msgs().len(), 1);
        assert!(!p.is_quiescent());
    }

    #[test]
    fn prune_after_delivery_and_full_ack_coverage() {
        // One correct process (us): a_theta = a_p* = {(10, 1)}. Our own ACK
        // (tag_ack 100) covers label 10 once — counters match, union matches.
        let mut h = fd_harness(13, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10])); // delivers
        assert!(p.has_delivered(Tag(7)));
        let out = h.tick(&mut p); // broadcasts once more, then prunes
        assert_eq!(out.msgs().len(), 1, "line 54 broadcast precedes prune");
        assert!(p.is_quiescent(), "line 57 removed the message");
        assert_eq!(p.pruned_count(), 1);
        // Subsequent ticks are silent.
        assert!(h.tick(&mut p).is_silent());
    }

    #[test]
    fn no_prune_before_delivery() {
        // Line 56: only delivered messages leave MSG.
        let mut h = fd_harness(14, &[(10, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10])); // counter 1 < number 2
        h.tick(&mut p);
        assert!(!p.is_quiescent());
    }

    #[test]
    fn no_prune_when_counter_below_number() {
        let mut h = fd_harness(15, &[(10, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        h.receive(&mut p, ack(7, 101, "m", &[10])); // delivers (counter==2)

        // a_p* wants 3 ACKers per label now (simulate: number 3).
        h.fd = FdSnapshot::new(theta(&[(10, 2)]), theta(&[(10, 3)]));
        h.tick(&mut p);
        assert!(!p.is_quiescent(), "a_p* coverage incomplete");
    }

    #[test]
    fn no_prune_when_apstar_empty() {
        let mut h = fd_harness(16, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        h.fd = FdSnapshot::new(theta(&[(10, 1)]), FdView::empty());
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        h.tick(&mut p);
        assert!(!p.is_quiescent(), "empty a_p* must not prune");
    }

    #[test]
    fn prune_survives_stale_acker() {
        // DESIGN.md D4: an ACKer that reported {10, 20} and then crashed
        // (label 20 removed from a_p*) must not block quiescence.
        let mut h = fd_harness(17, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10, 20])); // our own ACK, say
        h.receive(&mut p, ack(7, 101, "m", &[10, 20])); // the doomed ACKer → delivery
        assert!(p.has_delivered(Tag(7)));
        // Process with label 20 crashes; detectors converge; the live ACKer
        // (100) refreshes its ACK with the shrunk label set; the dead one
        // (101) never will.
        h.fd = FdSnapshot::new(theta(&[(10, 1)]), theta(&[(10, 1)]));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        h.tick(&mut p);
        assert!(
            p.is_quiescent(),
            "purge removed the dead ACKer's stale entry"
        );
    }

    #[test]
    fn delivery_survives_counter_overshoot_from_dead_acker() {
        // The second D4 finding (observed live in the runtime chaos test):
        // a doomed process ACKs with the full label set and crashes; its
        // entry inflates counter(ℓ) for every live label ℓ. Once the
        // detector's `number` shrinks below the inflated counter, the
        // line-46 equality can never hold again — unless dead entries are
        // purged at delivery evaluation too.
        let mut h = fd_harness(30, &[(1, 3), (2, 3), (3, 3)]);
        let mut p = QuiescentUrb::new();
        // Three ACKers (one is the doomed process with label 3), all
        // reporting all three labels: counters hit 3, but number is 3 and
        // the check at each step sees counter pass 1, 2, 3 — however we
        // arrange the overshoot by having number shrink *before* the last
        // live ACK arrives.
        h.receive(&mut p, ack(7, 100, "m", &[1, 2, 3])); // live
        h.receive(&mut p, ack(7, 101, "m", &[1, 2, 3])); // doomed, then crashes

        // Crash detected: labels shrink to {1, 2}, number to 2. counter(1)
        // is already 2 (entries 100, 101) — but entry 101 is dead and will
        // never refresh, while entry 100 refreshes with the shrunk set.
        h.fd = FdSnapshot::new(theta(&[(1, 2), (2, 2)]), theta(&[(1, 2), (2, 2)]));
        h.receive(&mut p, ack(7, 100, "m", &[1, 2]));
        // Live ACKer 102 completes the live quorum.
        let out = h.receive(&mut p, ack(7, 102, "m", &[1, 2]));
        assert_eq!(
            out.deliveries.len(),
            1,
            "purge at delivery lets the live quorum fire (counter(1)=2==number)"
        );
    }

    #[test]
    fn literal_rule_misses_delivery_on_overshoot() {
        // Same scenario under the literal rule: counter(1) is stuck at 3
        // (two live + one dead entry) while number converged to 2 — the
        // equality never holds and the message is never delivered. This is
        // a genuine gap in the paper's Lemma 1 for crash-after-ACK
        // patterns under detectors whose `number` shrinks after a crash.
        let mut h = fd_harness(31, &[(1, 3), (2, 3), (3, 3)]);
        let mut p = QuiescentUrb::with_rule(PruneRule::Literal);
        h.receive(&mut p, ack(7, 100, "m", &[1, 2, 3]));
        h.receive(&mut p, ack(7, 101, "m", &[1, 2, 3]));
        h.fd = FdSnapshot::new(theta(&[(1, 2), (2, 2)]), theta(&[(1, 2), (2, 2)]));
        h.receive(&mut p, ack(7, 100, "m", &[1, 2]));
        let out = h.receive(&mut p, ack(7, 102, "m", &[1, 2]));
        assert!(out.deliveries.is_empty(), "literal rule is stuck");
        assert_eq!(p.label_counter(Tag(7), Label(1)), 3, "inflated forever");
    }

    #[test]
    fn literal_rule_blocks_on_stale_acker() {
        // Same scenario as above under PruneRule::Literal: the stale entry
        // keeps label 20 in the union and counter(10) at 2 ≠ 1, so the
        // paper's literal condition never fires — the E12 ablation.
        let mut h = fd_harness(18, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::with_rule(PruneRule::Literal);
        assert_eq!(p.algorithm_name(), "alg2-literal");
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10, 20]));
        h.receive(&mut p, ack(7, 101, "m", &[10, 20]));
        h.fd = FdSnapshot::new(theta(&[(10, 1)]), theta(&[(10, 1)]));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        for _ in 0..5 {
            h.tick(&mut p);
        }
        assert!(!p.is_quiescent(), "literal line 55 is blocked forever");
    }

    #[test]
    fn two_correct_processes_scenario_from_theorem3_proof() {
        // The proof of Theorem 3 walks p and q, both correct:
        // label_counter[ℓp]=2, label_counter[ℓq]=2 with a_p* = [(ℓp,2),(ℓq,2)].
        let mut h = fd_harness(19, &[(1, 2), (2, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[1, 2])); // own ACK
        let out = h.receive(&mut p, ack(7, 101, "m", &[1, 2])); // q's ACK
        assert_eq!(out.deliveries.len(), 1);
        h.tick(&mut p);
        assert!(p.is_quiescent(), "the proof's happy case prunes");
    }

    #[test]
    fn would_prune_is_side_effect_free() {
        let mut h = fd_harness(20, &[(10, 1)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        let view = theta(&[(10, 1)]);
        assert!(p.would_prune(Tag(7), &view));
        assert!(!p.is_quiescent(), "would_prune must not mutate");
        assert_eq!(p.stats().msg_set, 1);
    }

    #[test]
    fn stats_count_label_counters() {
        let mut h = fd_harness(21, &[(10, 2), (20, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, ack(7, 100, "m", &[10, 20]));
        h.receive(&mut p, ack(8, 101, "m", &[10]));
        let s = p.stats();
        assert_eq!(s.all_ack_entries, 2);
        assert_eq!(s.label_counters, 3); // {10,20} for tag 7, {10} for tag 8
    }

    // ---- bounded-memory mode (DESIGN.md §14) ------------------------------

    use urb_types::MemoryConfig;

    fn mem(grace: u32, conservative: bool) -> MemoryConfig {
        MemoryConfig {
            grace_ticks: grace,
            conservative,
            tombstones: 16,
            ceiling: None,
            spill: urb_types::SpillPolicy::StableOnly,
        }
    }

    /// Drives one tag to delivered + line-57 pruned state.
    fn settled_process(h: &mut StepHarness) -> QuiescentUrb {
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10])); // delivers
        h.tick(&mut p); // line-57 prune
        assert!(p.is_quiescent() && p.has_delivered(Tag(7)));
        p
    }

    #[test]
    fn compact_reclaims_after_grace_and_tombstones() {
        let mut h = fd_harness(40, &[(10, 1)]);
        let mut p = settled_process(&mut h);
        p.configure_memory(mem(1, false));
        let fd = h.fd.clone();
        assert_eq!(p.compact(&fd).tombstoned, 0, "sweep 1 arms the clock");
        let rep = p.compact(&fd);
        assert_eq!(rep.tombstoned, 1, "sweep 2 passes the grace period");
        assert!(
            rep.reclaimed >= 3,
            "MY_ACK + ALL_ACK entries + URB_DELIVERED"
        );
        let s = p.stats();
        assert_eq!(s.total(), 0, "every entry for tag 7 reclaimed");
        assert!(p.is_tombstoned(Tag(7)));
        assert_eq!(p.compacted_count(), 1);
    }

    #[test]
    fn compacted_tag_ignores_late_copies_entirely() {
        let mut h = fd_harness(41, &[(10, 1)]);
        let mut p = settled_process(&mut h);
        p.configure_memory(mem(0, false));
        let fd = h.fd.clone();
        p.compact(&fd);
        assert!(p.is_tombstoned(Tag(7)));
        // Late MSG copy: no ACK (would re-mint MY_ACK), no MSG re-entry.
        let out = h.receive(&mut p, msg(7, "m"));
        assert!(out.is_silent(), "late MSG of a tombstoned tag is dropped");
        // Late ACK: no table rebuild, and crucially no re-delivery.
        let out = h.receive(&mut p, ack(7, 101, "m", &[10]));
        assert!(out.deliveries.is_empty() && p.stats().total() == 0);
        assert!(p.is_quiescent());
    }

    #[test]
    fn compaction_off_is_inert() {
        let mut h = fd_harness(42, &[(10, 1)]);
        let mut p = settled_process(&mut h);
        let fd = h.fd.clone();
        let before = p.stats();
        assert_eq!(p.compact(&fd), urb_types::CompactionReport::default());
        assert_eq!(p.stats(), before, "no MemoryConfig, no reclamation");
    }

    #[test]
    fn undelivered_or_uncovered_tags_are_never_reclaimed() {
        let mut h = fd_harness(43, &[(10, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10])); // counter 1 < number 2
        p.configure_memory(mem(0, false));
        let fd = h.fd.clone();
        for _ in 0..5 {
            assert_eq!(p.compact(&fd).tombstoned, 0);
        }
        assert!(!p.is_tombstoned(Tag(7)), "unstable state is untouchable");
    }

    #[test]
    fn conservative_mode_restarts_clock_on_view_change() {
        let mut h = fd_harness(44, &[(10, 1)]);
        let mut p = settled_process(&mut h);
        p.configure_memory(mem(2, true));
        let fd = h.fd.clone();
        p.compact(&fd); // clock 1 (and records the view signature)
        p.compact(&fd); // clock 2
                        // Detector wobbles: a new label appears — suspicion resets clocks.
        h.fd = FdSnapshot::new(theta(&[(10, 1), (20, 1)]), theta(&[(10, 1)]));
        assert_eq!(p.compact(&h.fd).tombstoned, 0, "clock restarted at 1");
        assert_eq!(p.compact(&h.fd).tombstoned, 0); // clock 2
        assert_eq!(p.compact(&h.fd).tombstoned, 1, "stable stretch completes");
    }

    #[test]
    fn ceiling_waives_grace_for_stable_tags() {
        let mut h = fd_harness(45, &[(10, 1)]);
        let mut p = settled_process(&mut h);
        p.configure_memory(MemoryConfig {
            grace_ticks: 1000,
            ceiling: Some(0),
            ..mem(0, false)
        });
        let fd = h.fd.clone();
        assert_eq!(p.compact(&fd).tombstoned, 1, "over ceiling: no waiting");
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_behavior() {
        let mut h = fd_harness(46, &[(10, 2)]);
        let mut p = QuiescentUrb::new();
        h.receive(&mut p, msg(7, "m"));
        h.receive(&mut p, ack(7, 100, "m", &[10]));
        h.receive(&mut p, ack(8, 101, "x", &[10]));
        let body = p.save_state().expect("alg2 snapshots");
        let mut q = QuiescentUrb::new();
        q.restore_state(&body).unwrap();
        assert_eq!(q.stats(), p.stats());
        assert_eq!(q.save_state().unwrap(), body, "byte-deterministic");
        // The restored process completes delivery exactly like the original.
        let a = h.receive(&mut p, ack(7, 101, "m", &[10]));
        let mut h2 = fd_harness(46, &[(10, 2)]);
        let b = h2.receive(&mut q, ack(7, 101, "m", &[10]));
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.deliveries.len(), 1);
    }

    #[test]
    fn restore_rejects_wrong_rule_and_garbage() {
        let p = QuiescentUrb::new();
        let body = p.save_state().unwrap();
        let mut literal = QuiescentUrb::with_rule(PruneRule::Literal);
        assert!(matches!(
            literal.restore_state(&body),
            Err(urb_types::SnapshotError::Malformed(_))
        ));
        let mut q = QuiescentUrb::new();
        assert!(q.restore_state(&body[..body.len() - 1]).is_err());
    }

    // ---- property tests ---------------------------------------------------

    mod props {
        use super::*;
        use proptest::prelude::*;

        // Arbitrary reconcile sequences preserve the counter invariant
        // `counters[l] == |{ta : l ∈ entries[ta]}|` (DESIGN.md D3).
        proptest! {
            #[test]
            fn counter_invariant_under_reconcile(
                ops in proptest::collection::vec(
                    (0u8..6, proptest::collection::btree_set(0u64..8, 0..5)),
                    0..60
                )
            ) {
                let mut table = AckTable::new(Payload::from("m"));
                for (ta, ls) in ops {
                    let set = LabelSet::from_iter(ls.into_iter().map(Label));
                    table.reconcile(TagAck(ta as u128), set);
                    prop_assert_eq!(&table.counters, &table.recomputed_counters());
                }
            }

            #[test]
            fn counter_invariant_survives_purge(
                ops in proptest::collection::vec(
                    (0u8..6, proptest::collection::btree_set(0u64..8, 0..5)),
                    0..40
                ),
                live in proptest::collection::btree_set(0u64..8, 0..8)
            ) {
                let mut table = AckTable::new(Payload::from("m"));
                for (ta, ls) in ops {
                    table.reconcile(
                        TagAck(ta as u128),
                        LabelSet::from_iter(ls.into_iter().map(Label)),
                    );
                }
                let live = LabelSet::from_iter(live.into_iter().map(Label));
                table.purge_dead(&live);
                prop_assert_eq!(&table.counters, &table.recomputed_counters());
                // And every surviving entry is within the live set.
                for ls in table.entries.values() {
                    prop_assert!(ls.is_subset(&live));
                }
            }

            #[test]
            fn integrity_under_arbitrary_ack_interleavings(
                events in proptest::collection::vec(
                    (0u8..3, 0u8..5, proptest::collection::btree_set(0u64..4, 0..4)),
                    0..80
                )
            ) {
                // a_theta fixed at {(0,2),(1,2),(2,2),(3,2)}.
                let pairs: Vec<(u64, u32)> = (0..4).map(|l| (l, 2)).collect();
                let mut h = fd_harness(999, &pairs);
                let mut p = QuiescentUrb::new();
                let mut seen = std::collections::BTreeSet::new();
                for (tg, ta, ls) in events {
                    let set: Vec<u64> = ls.into_iter().collect();
                    let out = h.receive(
                        &mut p,
                        ack(tg as u128, ta as u128, "m", &set),
                    );
                    for d in &out.deliveries {
                        prop_assert!(seen.insert(d.tag), "duplicate delivery");
                    }
                }
            }
        }
    }
}
