//! **Extension** — Algorithm 1 with exponential retransmission backoff.
//!
//! The paper's Task 1 rebroadcasts every message in `MSG` on *every* sweep,
//! forever. Fairness only requires each message to be sent *infinitely
//! often* — nothing says how densely. This variant spaces retransmissions
//! of each message exponentially (1, 2, 4, … sweeps apart, capped), which:
//!
//! * preserves every URB property — the fairness precondition ("sent
//!   infinitely often") still holds, so all of the paper's proofs go
//!   through unchanged;
//! * cuts steady-state traffic from `Θ(messages)` per sweep to
//!   `Θ(messages / cap)` per sweep;
//! * pays with tail latency under loss: a dropped wave now waits up to
//!   `cap` sweeps for the next attempt.
//!
//! Experiment E13 quantifies the trade-off against the faithful algorithm.
//! This is exactly the kind of engineering the paper leaves on the table by
//! never evaluating its algorithms; the variant keeps the delivery logic
//! byte-identical to [`MajorityUrb`](crate::MajorityUrb) and only re-paces
//! Task 1.

use std::collections::{BTreeMap, BTreeSet};
use urb_types::{AnonProcess, Context, Payload, ProcessStats, Tag, TagAck, WireMessage};

/// Per-message retransmission pacing.
#[derive(Clone, Copy, Debug)]
struct Pacing {
    /// Current gap between sends, in sweeps.
    interval: u32,
    /// Sweeps until the next send (0 = send on this sweep).
    countdown: u32,
}

impl Pacing {
    fn fresh() -> Self {
        Pacing {
            interval: 1,
            countdown: 0,
        }
    }
}

/// Algorithm 1 with exponential Task-1 backoff (cap in sweeps).
///
/// Reception paths (lines 7–27) are identical to the faithful algorithm;
/// only the Task-1 schedule differs.
#[derive(Debug)]
pub struct BackoffUrb {
    n: usize,
    threshold: usize,
    cap: u32,
    msgs: BTreeMap<Tag, (Payload, Pacing)>,
    my_acks: BTreeMap<Tag, TagAck>,
    all_acks: BTreeMap<Tag, (BTreeSet<TagAck>, Payload)>,
    delivered: BTreeSet<Tag>,
}

impl BackoffUrb {
    /// New instance for `n` processes with retransmission gaps capped at
    /// `cap` sweeps (`cap = 1` reproduces the faithful algorithm exactly).
    pub fn new(n: usize, cap: u32) -> Self {
        assert!(n >= 1);
        assert!(cap >= 1, "a zero cap would stop retransmission entirely");
        BackoffUrb {
            n,
            threshold: n / 2 + 1,
            cap,
            msgs: BTreeMap::new(),
            my_acks: BTreeMap::new(),
            all_acks: BTreeMap::new(),
            delivered: BTreeSet::new(),
        }
    }

    /// The configured cap, in sweeps.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// The system size this instance was configured for.
    pub fn n(&self) -> usize {
        self.n
    }

    fn ack_for(&mut self, tag: Tag, payload: Payload, ctx: &mut Context<'_>) {
        let tag_ack = match self.my_acks.get(&tag) {
            Some(ta) => *ta,
            None => {
                let ta = TagAck::random(ctx.rng);
                self.my_acks.insert(tag, ta);
                ta
            }
        };
        ctx.broadcast(WireMessage::Ack {
            tag,
            tag_ack,
            payload,
            labels: None,
        });
    }
}

impl AnonProcess for BackoffUrb {
    fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
        let tag = Tag::random(ctx.rng);
        self.msgs.insert(tag, (payload.clone(), Pacing::fresh()));
        ctx.broadcast(WireMessage::Msg { tag, payload });
        tag
    }

    fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
        match msg {
            WireMessage::Msg { tag, payload } => {
                self.msgs
                    .entry(tag)
                    .or_insert_with(|| (payload.clone(), Pacing::fresh()));
                self.ack_for(tag, payload, ctx);
            }
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels: _,
            } => {
                let (acks, body) = self
                    .all_acks
                    .entry(tag)
                    .or_insert_with(|| (BTreeSet::new(), payload));
                acks.insert(tag_ack);
                if acks.len() >= self.threshold && !self.delivered.contains(&tag) {
                    self.delivered.insert(tag);
                    let fast = !self.msgs.contains_key(&tag);
                    let body = body.clone();
                    ctx.deliver(tag, body, fast);
                }
            }
            WireMessage::Heartbeat { .. } => {}
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_>) {
        for (tag, (payload, pacing)) in self.msgs.iter_mut() {
            if pacing.countdown == 0 {
                ctx.broadcast(WireMessage::Msg {
                    tag: *tag,
                    payload: payload.clone(),
                });
                pacing.interval = (pacing.interval * 2).min(self.cap);
                pacing.countdown = pacing.interval;
            } else {
                pacing.countdown -= 1;
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.msgs.is_empty()
    }

    fn stats(&self) -> ProcessStats {
        ProcessStats {
            msg_set: self.msgs.len(),
            my_acks: self.my_acks.len(),
            all_ack_entries: self.all_acks.values().map(|(a, _)| a.len()).sum(),
            delivered: self.delivered.len(),
            label_counters: 0,
        }
    }

    fn algorithm_name(&self) -> &'static str {
        "alg1-backoff"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StepHarness;

    fn msg(tag: u128) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from("m"),
        }
    }

    #[test]
    fn backoff_spaces_retransmissions_exponentially() {
        let mut h = StepHarness::new(1);
        let mut p = BackoffUrb::new(3, 8);
        h.receive(&mut p, msg(1));
        // Sweep schedule for cap 8: gaps 2, 4, 8, 8, … after the first send
        // (interval doubles when a send happens).
        let mut sent_at = Vec::new();
        for sweep in 0..40 {
            if !h.tick(&mut p).msgs().is_empty() {
                sent_at.push(sweep);
            }
        }
        assert_eq!(&sent_at[..5], &[0, 3, 8, 17, 26]);
        let gaps: Vec<_> = sent_at.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g <= 9), "gap never exceeds cap+1");
        assert!(gaps[gaps.len() - 1] == 9, "steady-state gap = cap+1 sweeps");
    }

    #[test]
    fn cap_one_matches_faithful_schedule() {
        let mut h = StepHarness::new(2);
        let mut p = BackoffUrb::new(3, 1);
        h.receive(&mut p, msg(1));
        let mut sends = 0;
        for _ in 0..10 {
            sends += h.tick(&mut p).msgs().len();
        }
        // cap=1: interval stays 1 → send every other sweep at worst
        // (send, countdown=1, skip, send, …).
        assert!(sends >= 5, "cap-1 backoff sends at least every other sweep");
    }

    #[test]
    fn delivery_logic_identical_to_majority() {
        let mut h = StepHarness::new(3);
        let mut p = BackoffUrb::new(5, 8); // threshold 3
        let ack = |ta: u128| WireMessage::Ack {
            tag: Tag(9),
            tag_ack: TagAck(ta),
            payload: Payload::from("m"),
            labels: None,
        };
        assert!(h.receive(&mut p, ack(1)).deliveries.is_empty());
        assert!(h.receive(&mut p, ack(2)).deliveries.is_empty());
        let out = h.receive(&mut p, ack(3));
        assert_eq!(out.deliveries.len(), 1);
        assert!(out.deliveries[0].fast);
        assert!(h.receive(&mut p, ack(4)).deliveries.is_empty());
    }

    #[test]
    fn stable_tag_ack_across_retransmissions() {
        let mut h = StepHarness::new(4);
        let mut p = BackoffUrb::new(3, 4);
        let ta = |o: &crate::harness::StepOut| match o.acks()[0] {
            WireMessage::Ack { tag_ack, .. } => *tag_ack,
            _ => panic!(),
        };
        let a = ta(&h.receive(&mut p, msg(1)));
        let b = ta(&h.receive(&mut p, msg(1)));
        assert_eq!(a, b);
    }

    #[test]
    fn never_quiescent_like_the_original() {
        let mut h = StepHarness::new(5);
        let mut p = BackoffUrb::new(3, 4);
        h.receive(&mut p, msg(1));
        assert!(
            !p.is_quiescent(),
            "backoff thins traffic, it does not stop it"
        );
        // Over any long window there are still sends (fairness preserved).
        let mut sends = 0;
        for _ in 0..50 {
            sends += h.tick(&mut p).msgs().len();
        }
        assert!(sends >= 9, "roughly one send per cap+1 sweeps");
    }

    #[test]
    #[should_panic(expected = "zero cap")]
    fn zero_cap_rejected() {
        let _ = BackoffUrb::new(3, 0);
    }
}
