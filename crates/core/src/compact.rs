//! Shared machinery of the bounded-memory mode (DESIGN.md §14).
//!
//! Both paper algorithms compact the same way: a tag whose entries have
//! become *stable* — provably present at every correct process under the
//! per-algorithm stability rule — survives a grace period of consecutive
//! stable sweeps, then its `MSG`/`MY_ACK`/`ALL_ACK`/`URB_DELIVERED` entries
//! are reclaimed and the tag moves into a bounded [`TombstoneRing`]. A late
//! copy of a tombstoned tag is dropped on receipt: it is never acknowledged
//! again (re-minting a `tag_ack` would break the distinct-ACK counting) and
//! never re-enters state (re-entering `URB_DELIVERED` empty would permit a
//! duplicate delivery).

use serde::Serialize;
use std::collections::{BTreeSet, VecDeque};
use urb_types::snapshot::{fnv1a, SnapshotError, SnapshotReader, SnapshotWriter};
use urb_types::{FdSnapshot, Tag};

/// Bounded FIFO memory of compacted tags.
///
/// Oldest tags are evicted first once the ring is full; an evicted tag that
/// still has copies in flight could re-enter state as a fresh message, so
/// the capacity (with the grace period) bounds how old a duplicate the
/// suppression can still catch — the trade-off DESIGN.md §14 spells out.
#[derive(Clone, Debug, Default, Serialize)]
pub struct TombstoneRing {
    ring: VecDeque<Tag>,
    set: BTreeSet<Tag>,
    cap: usize,
}

impl TombstoneRing {
    /// An empty ring holding at most `cap` tags (`cap == 0` disables
    /// tombstoning entirely).
    pub fn new(cap: usize) -> Self {
        TombstoneRing {
            ring: VecDeque::new(),
            set: BTreeSet::new(),
            cap,
        }
    }

    /// True when `tag` was compacted and is still remembered.
    pub fn contains(&self, tag: Tag) -> bool {
        self.set.contains(&tag)
    }

    /// Remembers a compacted tag, evicting the oldest when full.
    pub fn push(&mut self, tag: Tag) {
        if self.cap == 0 || !self.set.insert(tag) {
            return;
        }
        self.ring.push_back(tag);
        while self.ring.len() > self.cap {
            if let Some(old) = self.ring.pop_front() {
                self.set.remove(&old);
            }
        }
    }

    /// Number of tags currently remembered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no tags are remembered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Evicts the oldest half of the ring (the [`SpillPolicy::Tombstones`]
    /// response to memory pressure). Returns how many tags went.
    ///
    /// [`SpillPolicy::Tombstones`]: urb_types::SpillPolicy::Tombstones
    pub fn shed_half(&mut self) -> usize {
        let drop = self.ring.len() / 2;
        for _ in 0..drop {
            if let Some(old) = self.ring.pop_front() {
                self.set.remove(&old);
            }
        }
        drop
    }

    /// Serializes the ring (oldest-first order preserved).
    pub fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.ring.len() as u64);
        for tag in &self.ring {
            w.put_u128(tag.0);
        }
    }

    /// Restores a ring saved by [`TombstoneRing::save`]. The capacity is
    /// `cap`, raised if needed so no restored tag is evicted on load.
    pub fn restore(r: &mut SnapshotReader<'_>, cap: usize) -> Result<Self, SnapshotError> {
        let len = r.get_u64()? as usize;
        let mut ring = TombstoneRing::new(cap.max(len));
        for _ in 0..len {
            ring.push(Tag(r.get_u128()?));
        }
        Ok(ring)
    }
}

/// Order-stable fingerprint of a failure-detector snapshot, used by the
/// conservative mode to notice "the view changed" and reset grace clocks.
pub fn fd_signature(fd: &FdSnapshot) -> u64 {
    let mut w = SnapshotWriter::new();
    for view in [&fd.a_theta, &fd.a_p_star] {
        w.put_u64(view.len() as u64);
        for pair in view.iter() {
            w.put_u64(pair.label.0);
            w.put_u32(pair.number);
        }
    }
    fnv1a(w.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_types::{FdPair, FdView, Label};

    #[test]
    fn ring_remembers_then_evicts_oldest() {
        let mut r = TombstoneRing::new(2);
        r.push(Tag(1));
        r.push(Tag(2));
        assert!(r.contains(Tag(1)) && r.contains(Tag(2)));
        r.push(Tag(3));
        assert!(!r.contains(Tag(1)), "oldest evicted");
        assert!(r.contains(Tag(2)) && r.contains(Tag(3)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn duplicate_push_is_idempotent() {
        let mut r = TombstoneRing::new(3);
        r.push(Tag(1));
        r.push(Tag(1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut r = TombstoneRing::new(0);
        r.push(Tag(1));
        assert!(!r.contains(Tag(1)));
        assert!(r.is_empty());
    }

    #[test]
    fn shed_half_drops_oldest() {
        let mut r = TombstoneRing::new(8);
        for t in 0..4u128 {
            r.push(Tag(t));
        }
        assert_eq!(r.shed_half(), 2);
        assert!(!r.contains(Tag(0)) && !r.contains(Tag(1)));
        assert!(r.contains(Tag(2)) && r.contains(Tag(3)));
    }

    #[test]
    fn ring_snapshot_round_trip() {
        let mut r = TombstoneRing::new(4);
        for t in [9u128, 5, 7] {
            r.push(Tag(t));
        }
        let mut w = SnapshotWriter::new();
        r.save(&mut w);
        let body = w.into_body();
        let mut reader = SnapshotReader::new(&body);
        let back = TombstoneRing::restore(&mut reader, 4).unwrap();
        reader.finish().unwrap();
        assert_eq!(back.len(), 3);
        assert!(back.contains(Tag(9)) && back.contains(Tag(5)) && back.contains(Tag(7)));
        // Eviction order survives: pushing two more drops 9 then 5.
        let mut back = back;
        back.push(Tag(1));
        back.push(Tag(2));
        assert!(!back.contains(Tag(9)));
        assert!(back.contains(Tag(5)));
    }

    #[test]
    fn fd_signature_tracks_view_changes() {
        let v1 = FdView::from_pairs([FdPair {
            label: Label(1),
            number: 2,
        }]);
        let v2 = FdView::from_pairs([FdPair {
            label: Label(1),
            number: 3,
        }]);
        let a = fd_signature(&FdSnapshot::new(v1.clone(), v1.clone()));
        let b = fd_signature(&FdSnapshot::new(v1.clone(), v2));
        let c = fd_signature(&FdSnapshot::new(v1.clone(), v1));
        assert_ne!(a, b);
        assert_eq!(a, c);
    }
}
