//! Baseline broadcast abstractions (paper §I).
//!
//! The introduction motivates URB by walking the broadcast hierarchy:
//!
//! * **Best-effort broadcast** — `send`/`receive` with no delivery guarantee
//!   when the sender crashes: receivers deliver what arrives, nothing is
//!   retransmitted. Under fair-lossy channels even a *correct* sender gives
//!   no guarantee, since the single transmission can be lost.
//! * **Reliable broadcast (RB)** — all *correct* processes deliver the same
//!   set of messages, but a process may deliver and then crash, leaving a
//!   message nobody else ever delivers — the inconsistency URB exists to
//!   rule out.
//!
//! Both are implemented here as [`AnonProcess`] state machines so the
//! experiment harness can put numbers on the hierarchy (experiment E11):
//! delivery ratios and uniformity violations under crash/loss adversaries,
//! side by side with the paper's two URB algorithms.

use std::collections::{BTreeMap, BTreeSet};
use urb_types::{AnonProcess, Context, Payload, ProcessStats, Tag, WireMessage};

/// Best-effort broadcast: transmit once, deliver on first receipt.
///
/// Quiescent by construction, but offers no agreement: a lost transmission
/// or a crashed sender simply loses the message for some receivers.
#[derive(Debug, Default)]
pub struct BestEffortBroadcast {
    delivered: BTreeSet<Tag>,
}

impl BestEffortBroadcast {
    /// New best-effort instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnonProcess for BestEffortBroadcast {
    fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
        let tag = Tag::random(ctx.rng);
        // One transmission, no bookkeeping, no retransmission.
        ctx.broadcast(WireMessage::Msg { tag, payload });
        tag
    }

    fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
        if let WireMessage::Msg { tag, payload } = msg {
            if self.delivered.insert(tag) {
                ctx.deliver(tag, payload, false);
            }
        }
    }

    fn on_tick(&mut self, _ctx: &mut Context<'_>) {}

    fn is_quiescent(&self) -> bool {
        true
    }

    fn stats(&self) -> ProcessStats {
        ProcessStats {
            delivered: self.delivered.len(),
            ..ProcessStats::default()
        }
    }

    fn algorithm_name(&self) -> &'static str {
        "best-effort"
    }
}

/// Eager (non-uniform) reliable broadcast with retransmission.
///
/// Delivers on *first receipt* — before any evidence that anyone else has
/// the message — then joins the retransmission effort forever (it must:
/// with fair-lossy channels a single relay can be lost, so RB needs the same
/// forever-rebroadcast as Algorithm 1).
///
/// Correct processes eventually agree (same argument as Algorithm 1's
/// Task 1), but **uniform** agreement fails: a process that delivers and
/// immediately crashes may be the only process that ever saw the message.
/// Experiment E11 counts exactly those violations.
#[derive(Debug, Default)]
pub struct EagerReliableBroadcast {
    msgs: BTreeMap<Tag, Payload>,
    delivered: BTreeSet<Tag>,
}

impl EagerReliableBroadcast {
    /// New eager-RB instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when this process has RB-delivered `tag`.
    pub fn has_delivered(&self, tag: Tag) -> bool {
        self.delivered.contains(&tag)
    }
}

impl AnonProcess for EagerReliableBroadcast {
    fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
        let tag = Tag::random(ctx.rng);
        self.msgs.insert(tag, payload.clone());
        // RB-deliver locally right away (validity is trivial here).
        self.delivered.insert(tag);
        ctx.deliver(tag, payload.clone(), false);
        ctx.broadcast(WireMessage::Msg { tag, payload });
        tag
    }

    fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
        if let WireMessage::Msg { tag, payload } = msg {
            if self.delivered.insert(tag) {
                // Deliver first …
                ctx.deliver(tag, payload.clone(), false);
            }
            // … then relay forever (fair-lossy channels force the forever).
            self.msgs.entry(tag).or_insert(payload);
        }
    }

    fn on_tick(&mut self, ctx: &mut Context<'_>) {
        for (tag, payload) in &self.msgs {
            ctx.broadcast(WireMessage::Msg {
                tag: *tag,
                payload: payload.clone(),
            });
        }
    }

    fn is_quiescent(&self) -> bool {
        self.msgs.is_empty()
    }

    fn stats(&self) -> ProcessStats {
        ProcessStats {
            msg_set: self.msgs.len(),
            delivered: self.delivered.len(),
            ..ProcessStats::default()
        }
    }

    fn algorithm_name(&self) -> &'static str {
        "eager-rb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StepHarness;

    fn msg(tag: u128, body: &str) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from(body),
        }
    }

    #[test]
    fn best_effort_sends_once_and_never_retransmits() {
        let mut h = StepHarness::new(1);
        let mut p = BestEffortBroadcast::new();
        let (_, out) = h.broadcast(&mut p, Payload::from("m"));
        assert_eq!(out.broadcasts.len(), 1);
        assert!(h.tick(&mut p).is_silent(), "no Task 1");
        assert!(p.is_quiescent());
    }

    #[test]
    fn best_effort_delivers_once_per_tag() {
        let mut h = StepHarness::new(2);
        let mut p = BestEffortBroadcast::new();
        assert_eq!(h.receive(&mut p, msg(7, "m")).deliveries.len(), 1);
        assert!(h.receive(&mut p, msg(7, "m")).deliveries.is_empty());
        assert_eq!(p.stats().delivered, 1);
    }

    #[test]
    fn eager_rb_delivers_immediately_on_first_receipt() {
        let mut h = StepHarness::new(3);
        let mut p = EagerReliableBroadcast::new();
        let out = h.receive(&mut p, msg(7, "m"));
        assert_eq!(out.deliveries.len(), 1, "deliver before any agreement");
        assert!(h.receive(&mut p, msg(7, "m")).deliveries.is_empty());
    }

    #[test]
    fn eager_rb_sender_self_delivers() {
        let mut h = StepHarness::new(4);
        let mut p = EagerReliableBroadcast::new();
        let (tag, out) = h.broadcast(&mut p, Payload::from("m"));
        assert_eq!(out.deliveries.len(), 1);
        assert!(p.has_delivered(tag));
    }

    #[test]
    fn eager_rb_relays_forever() {
        let mut h = StepHarness::new(5);
        let mut p = EagerReliableBroadcast::new();
        h.receive(&mut p, msg(7, "m"));
        for _ in 0..3 {
            assert_eq!(h.tick(&mut p).msgs().len(), 1);
        }
        assert!(!p.is_quiescent(), "eager RB is as non-quiescent as Alg. 1");
    }

    #[test]
    fn baselines_ignore_acks_and_heartbeats() {
        let mut h = StepHarness::new(6);
        let mut be = BestEffortBroadcast::new();
        let mut rb = EagerReliableBroadcast::new();
        let stray_ack = WireMessage::Ack {
            tag: Tag(1),
            tag_ack: urb_types::TagAck(2),
            payload: Payload::from("m"),
            labels: None,
        };
        assert!(h.receive(&mut be, stray_ack.clone()).is_silent());
        assert!(h.receive(&mut rb, stray_ack).is_silent());
    }
}
