//! # `urb-core`
//!
//! The broadcast algorithms of Tang, Larrea, Arévalo & Jiménez,
//! *"Implementing Uniform Reliable Broadcast in Anonymous Distributed
//! Systems with Fair Lossy Channels"* (IPPS 2015), as deterministic sans-io
//! state machines:
//!
//! * [`majority::MajorityUrb`] — **Algorithm 1**: non-quiescent
//!   URB for `AAS_F[t < n/2]` (anonymous, asynchronous, fair-lossy channels,
//!   a majority of correct processes). Delivery happens on receipt of a
//!   strict majority of distinct acknowledgment tags.
//! * [`quiescent::QuiescentUrb`] — **Algorithm 2**: quiescent
//!   URB for `AAS_F[AΘ, AP*]`, tolerating any number of crashes. The
//!   anonymous failure detector `AΘ` replaces the majority quorum in the
//!   delivery condition and `AP*` lets Task 1 stop retransmitting.
//! * [`baseline`] — the weaker broadcast abstractions the paper's
//!   introduction contrasts against (best-effort broadcast and an eager,
//!   non-uniform reliable broadcast), used by the experiment harness to
//!   demonstrate *why* uniformity needs the paper's machinery.
//!
//! Every state machine implements [`urb_types::AnonProcess`]; the
//! discrete-event simulator (`urb-sim`) and the threaded runtime
//! (`urb-runtime`) both drive the exact same code.
//!
//! The pseudocode line numbers quoted throughout refer to the paper's
//! Algorithm 1 and Algorithm 2 listings; intentional deviations are the
//! D1–D7 notes in `DESIGN.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backoff;
pub mod baseline;
pub mod compact;
pub mod harness;
pub mod majority;
pub mod quiescent;

pub use backoff::BackoffUrb;
pub use baseline::{BestEffortBroadcast, EagerReliableBroadcast};
pub use compact::TombstoneRing;
pub use majority::MajorityUrb;
pub use quiescent::{PruneRule, QuiescentUrb};

use urb_types::AnonProcess;

/// Which algorithm a driver should instantiate. Used by the simulator's
/// scenario builders and the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 — majority-based, non-quiescent URB.
    Majority,
    /// Algorithm 1 with a deliberately weakened delivery threshold
    /// (`count >= threshold` instead of a strict majority). Exists solely to
    /// demonstrate Theorem 2: below a majority, uniform agreement breaks.
    WeakenedMajority {
        /// The (sub-majority) number of distinct ACKs that triggers delivery.
        threshold: u32,
    },
    /// Algorithm 2 — quiescent URB using `AΘ` and `AP*`.
    Quiescent,
    /// Algorithm 2 with the D4 dead-ACKer purge disabled (the paper's
    /// literal line-55 condition). Exists for ablation E12.
    QuiescentLiteral,
    /// Extension: Algorithm 1 with exponential Task-1 backoff capped at
    /// `cap` sweeps (ablation E13). `cap = 1` ≈ the faithful algorithm.
    MajorityBackoff {
        /// Maximum gap between retransmissions of one message, in sweeps.
        cap: u32,
    },
    /// Best-effort broadcast baseline (send once, deliver on first receipt).
    BestEffort,
    /// Eager non-uniform reliable broadcast baseline.
    EagerRb,
}

impl Algorithm {
    /// Instantiates the protocol state machine for a system of `n` processes.
    pub fn instantiate(self, n: usize) -> Box<dyn AnonProcess + Send> {
        match self {
            Algorithm::Majority => Box::new(MajorityUrb::new(n)),
            Algorithm::WeakenedMajority { threshold } => {
                Box::new(MajorityUrb::with_threshold(n, threshold as usize))
            }
            Algorithm::Quiescent => Box::new(QuiescentUrb::new()),
            Algorithm::QuiescentLiteral => Box::new(QuiescentUrb::with_rule(PruneRule::Literal)),
            Algorithm::MajorityBackoff { cap } => Box::new(BackoffUrb::new(n, cap)),
            Algorithm::BestEffort => Box::new(BestEffortBroadcast::new()),
            Algorithm::EagerRb => Box::new(EagerReliableBroadcast::new()),
        }
    }

    /// Whether this algorithm consults the failure detectors.
    pub fn needs_fd(self) -> bool {
        matches!(self, Algorithm::Quiescent | Algorithm::QuiescentLiteral)
    }

    /// Wire code for this algorithm as an `(algorithm, param)` pair — the
    /// payload of a `TopicControl::Create` control message (DESIGN.md §15).
    /// `param` carries the threshold / backoff cap for the parameterized
    /// variants and is `0` otherwise. Round-trips through
    /// [`Algorithm::from_wire`].
    pub fn to_wire(self) -> (u8, u32) {
        match self {
            Algorithm::Majority => (0, 0),
            Algorithm::WeakenedMajority { threshold } => (1, threshold),
            Algorithm::Quiescent => (2, 0),
            Algorithm::QuiescentLiteral => (3, 0),
            Algorithm::MajorityBackoff { cap } => (4, cap),
            Algorithm::BestEffort => (5, 0),
            Algorithm::EagerRb => (6, 0),
        }
    }

    /// Decodes an `(algorithm, param)` wire pair produced by
    /// [`Algorithm::to_wire`]. Returns `None` for unknown codes — a
    /// receiver drops the create rather than instantiating something it
    /// does not understand.
    pub fn from_wire(code: u8, param: u32) -> Option<Algorithm> {
        match code {
            0 => Some(Algorithm::Majority),
            1 => Some(Algorithm::WeakenedMajority { threshold: param }),
            2 => Some(Algorithm::Quiescent),
            3 => Some(Algorithm::QuiescentLiteral),
            4 => Some(Algorithm::MajorityBackoff { cap: param }),
            5 => Some(Algorithm::BestEffort),
            6 => Some(Algorithm::EagerRb),
            _ => None,
        }
    }

    /// Short name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Majority => "alg1-majority",
            Algorithm::WeakenedMajority { .. } => "alg1-weakened",
            Algorithm::Quiescent => "alg2-quiescent",
            Algorithm::QuiescentLiteral => "alg2-literal",
            Algorithm::MajorityBackoff { .. } => "alg1-backoff",
            Algorithm::BestEffort => "best-effort",
            Algorithm::EagerRb => "eager-rb",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_names_match() {
        for (alg, name) in [
            (Algorithm::Majority, "alg1-majority"),
            (Algorithm::Quiescent, "alg2-quiescent"),
            (Algorithm::BestEffort, "best-effort"),
            (Algorithm::EagerRb, "eager-rb"),
        ] {
            assert_eq!(alg.name(), name);
            let p = alg.instantiate(5);
            assert!(!p.algorithm_name().is_empty());
        }
    }

    #[test]
    fn wire_codes_round_trip() {
        for alg in [
            Algorithm::Majority,
            Algorithm::WeakenedMajority { threshold: 2 },
            Algorithm::Quiescent,
            Algorithm::QuiescentLiteral,
            Algorithm::MajorityBackoff { cap: 8 },
            Algorithm::BestEffort,
            Algorithm::EagerRb,
        ] {
            let (code, param) = alg.to_wire();
            assert_eq!(Algorithm::from_wire(code, param), Some(alg));
        }
        assert_eq!(Algorithm::from_wire(200, 0), None);
    }

    #[test]
    fn fd_requirements() {
        assert!(!Algorithm::Majority.needs_fd());
        assert!(Algorithm::Quiescent.needs_fd());
        assert!(Algorithm::QuiescentLiteral.needs_fd());
        assert!(!Algorithm::BestEffort.needs_fd());
    }
}
