//! **Algorithm 1** — Uniform Reliable Broadcast in `AAS_F[t < n/2]`
//! (paper §III).
//!
//! The idea: anonymity prevents processes from *naming* the correct process
//! that is guaranteed to hold a copy of a message, so the algorithm counts
//! *anonymous acknowledgments* instead. Each message gets a unique random
//! `tag`; each acknowledgment a unique random `tag_ack`. Because a process
//! re-uses the same `tag_ack` on every retransmission of its ACK for a given
//! `(m, tag)` (the `MY_ACK` set enforces this, lines 11–16), receiving a
//! strict majority of *distinct* `tag_ack`s proves a majority of processes
//! hold `m` — and with `t < n/2`, at least one of them is correct, which is
//! exactly the classic URB delivery condition.
//!
//! The algorithm is **not quiescent**: Task 1 (lines 28–32) rebroadcasts
//! every message in `MSG` forever, because with fair-lossy channels and no
//! failure detector a process can never learn that everyone has the message.
//! Experiment E4 measures this directly.

use crate::compact::TombstoneRing;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use urb_types::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use urb_types::{
    AnonProcess, CompactionReport, Context, FdSnapshot, MemoryConfig, Payload, ProcessStats,
    SpillPolicy, Tag, TagAck, WireMessage,
};

/// Per-tag acknowledgment bookkeeping (the `ALL_ACK_i` slice for one tag).
#[derive(Clone, Debug, Serialize)]
struct AckRecord {
    /// Distinct acknowledgment tags received for this message (line 19–21).
    acks: BTreeSet<TagAck>,
    /// Payload learned from the ACKs (they piggyback `m`; DESIGN.md D1).
    payload: Payload,
}

/// Algorithm 1: majority-based, non-quiescent URB (code of `p_i`).
///
/// ```
/// use urb_core::{harness::StepHarness, MajorityUrb};
/// use urb_types::{AnonProcess, Payload, WireMessage, Tag, TagAck};
///
/// // A 3-process system: delivery needs 2 distinct anonymous ACKs.
/// let mut h = StepHarness::new(7);
/// let mut p = MajorityUrb::new(3);
/// let ack = |ta: u128| WireMessage::Ack {
///     tag: Tag(9), tag_ack: TagAck(ta),
///     payload: Payload::from("m"), labels: None,
/// };
/// assert!(h.receive(&mut p, ack(1)).deliveries.is_empty());
/// let out = h.receive(&mut p, ack(2));
/// assert_eq!(out.deliveries.len(), 1);          // majority reached
/// assert!(out.deliveries[0].fast);              // before any MSG copy!
/// assert!(p.is_quiescent() == false || p.stats().msg_set == 0);
/// ```
///
/// State maps one-to-one to the paper's four sets:
///
/// | paper              | field        |
/// |--------------------|--------------|
/// | `MSG_i`            | `msgs`       |
/// | `MY_ACK_i`         | `my_acks`    |
/// | `ALL_ACK_i`        | `all_acks`   |
/// | `URB_DELIVERED_i`  | `delivered`  |
///
/// All collections are ordered (`BTreeMap`/`BTreeSet`) so iteration — and
/// therefore the whole protocol — is deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct MajorityUrb {
    n: usize,
    /// Deliver when `|distinct tag_acks| >= threshold`. For the faithful
    /// algorithm this is the strict majority `⌊n/2⌋ + 1` (line 22); the
    /// Theorem-2 demonstration weakens it below a majority.
    threshold: usize,
    msgs: BTreeMap<Tag, Payload>,
    my_acks: BTreeMap<Tag, TagAck>,
    all_acks: BTreeMap<Tag, AckRecord>,
    delivered: BTreeSet<Tag>,
    weakened: bool,
    /// Bounded-memory mode (DESIGN.md §14); `None` = compaction off and
    /// behavior byte-identical to the unbounded algorithm.
    mem: Option<MemoryConfig>,
    /// Grace clocks: consecutive stable compaction sweeps per candidate tag.
    grace: BTreeMap<Tag, u32>,
    /// Tags already compacted; late copies are dropped on receipt.
    tombs: TombstoneRing,
    /// Count of tags compacted so far, for diagnostics.
    compacted: u64,
}

impl MajorityUrb {
    /// Faithful Algorithm 1 for a system of `n` processes: delivery requires
    /// a strict majority (`> n/2`) of distinct `tag_ack`s.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a system needs at least one process");
        Self {
            n,
            threshold: n / 2 + 1,
            msgs: BTreeMap::new(),
            my_acks: BTreeMap::new(),
            all_acks: BTreeMap::new(),
            delivered: BTreeSet::new(),
            weakened: false,
            mem: None,
            grace: BTreeMap::new(),
            tombs: TombstoneRing::new(0),
            compacted: 0,
        }
    }

    /// Number of tags reclaimed by the bounded-memory mode so far.
    pub fn compacted_count(&self) -> u64 {
        self.compacted
    }

    /// True when `tag` was compacted and is still tombstoned.
    pub fn is_tombstoned(&self, tag: Tag) -> bool {
        self.tombs.contains(tag)
    }

    /// Reclaims every entry held for `tag` and tombstones it. Returns the
    /// number of state entries dropped (in [`ProcessStats::total`] units).
    fn reclaim(&mut self, tag: Tag) -> usize {
        let mut freed = 0;
        if self.msgs.remove(&tag).is_some() {
            freed += 1;
        }
        if self.my_acks.remove(&tag).is_some() {
            freed += 1;
        }
        if let Some(rec) = self.all_acks.remove(&tag) {
            freed += rec.acks.len();
        }
        if self.delivered.remove(&tag) {
            freed += 1;
        }
        self.grace.remove(&tag);
        self.tombs.push(tag);
        self.compacted += 1;
        freed
    }

    /// Algorithm 1 with an explicit delivery threshold.
    ///
    /// Only meaningful for the Theorem-2 impossibility demonstration (E2):
    /// with `threshold <= n/2` the algorithm can URB-deliver a message held
    /// exclusively by processes that then crash, violating uniform
    /// agreement — exactly the run `R2` of the paper's proof.
    pub fn with_threshold(n: usize, threshold: usize) -> Self {
        assert!(threshold >= 1 && threshold <= n);
        let mut p = Self::new(n);
        p.weakened = threshold <= n / 2;
        p.threshold = threshold;
        p
    }

    /// The system size this instance was configured for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The delivery threshold in force.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Number of distinct acknowledgment tags seen for `tag`.
    pub fn ack_count(&self, tag: Tag) -> usize {
        self.all_acks.get(&tag).map_or(0, |r| r.acks.len())
    }

    /// True when this process has URB-delivered `tag`.
    pub fn has_delivered(&self, tag: Tag) -> bool {
        self.delivered.contains(&tag)
    }

    /// Lines 7–17: handle `(MSG, m, tag)`.
    fn handle_msg(&mut self, tag: Tag, payload: Payload, ctx: &mut Context<'_>) {
        // DESIGN.md §14: a compacted tag's late copies are dropped whole —
        // re-acknowledging would mint a second tag_ack for the same process
        // and break the distinct-ACK majority count.
        if self.tombs.contains(tag) {
            return;
        }
        // Lines 8–10: record the message for Task-1 retransmission.
        self.msgs.entry(tag).or_insert_with(|| payload.clone());
        // Lines 11–17: acknowledge with a *stable* tag_ack. First reception
        // (from anyone, ourselves included) mints the tag_ack; every further
        // reception re-broadcasts the identical ACK to beat message loss.
        let tag_ack = match self.my_acks.get(&tag) {
            Some(ta) => *ta, // lines 11–12
            None => {
                let ta = TagAck::random(ctx.rng); // line 14
                self.my_acks.insert(tag, ta); // line 15
                ta
            }
        };
        ctx.broadcast(WireMessage::Ack {
            tag,
            tag_ack,
            payload,
            labels: None,
        }); // lines 12 / 16
    }

    /// Lines 18–27: handle `(ACK, m, tag, tag_ack)`.
    fn handle_ack(&mut self, tag: Tag, tag_ack: TagAck, payload: Payload, ctx: &mut Context<'_>) {
        // DESIGN.md §14: ignore ACKs for compacted (already delivered) tags.
        if self.tombs.contains(tag) {
            return;
        }
        let rec = self.all_acks.entry(tag).or_insert_with(|| AckRecord {
            acks: BTreeSet::new(),
            payload,
        });
        rec.acks.insert(tag_ack); // lines 19–21

        // Line 22: "a majority of (m, tag, −) in ALL_ACK" — strict majority
        // of *distinct* tag_acks (or the configured threshold).
        if rec.acks.len() >= self.threshold && !self.delivered.contains(&tag) {
            // Lines 23–26.
            self.delivered.insert(tag);
            // The paper's fast-deliver remark: delivery may precede the
            // reception of the MSG copy; we flag it for experiment E10.
            let fast = !self.msgs.contains_key(&tag);
            let body = rec.payload.clone();
            ctx.deliver(tag, body, fast);
        }
    }
}

impl AnonProcess for MajorityUrb {
    /// Lines 4–6, plus an immediate first Task-1 transmission (D7).
    fn urb_broadcast(&mut self, payload: Payload, ctx: &mut Context<'_>) -> Tag {
        let tag = Tag::random(ctx.rng); // line 5
        self.msgs.insert(tag, payload.clone()); // line 6
                                                // Task 1 would send this on its next sweep anyway; sending now just
                                                // shifts phase, and matches how the loop-forever task behaves from
                                                // the moment the message enters MSG.
        ctx.broadcast(WireMessage::Msg { tag, payload });
        tag
    }

    fn on_receive(&mut self, msg: WireMessage, ctx: &mut Context<'_>) {
        match msg {
            WireMessage::Msg { tag, payload } => self.handle_msg(tag, payload, ctx),
            WireMessage::Ack {
                tag,
                tag_ack,
                payload,
                labels: _,
            } => self.handle_ack(tag, tag_ack, payload, ctx),
            // Algorithm 1 runs without failure detectors; stray heartbeats
            // (e.g. mixed deployments) are ignored.
            WireMessage::Heartbeat { .. } => {}
        }
    }

    /// Task 1, lines 28–32: rebroadcast every message in `MSG_i`, forever.
    fn on_tick(&mut self, ctx: &mut Context<'_>) {
        for (tag, payload) in &self.msgs {
            ctx.broadcast(WireMessage::Msg {
                tag: *tag,
                payload: payload.clone(),
            });
        }
    }

    /// Never quiescent once `MSG_i` is non-empty — the defining limitation
    /// of Algorithm 1 (Theorem 3's motivation).
    fn is_quiescent(&self) -> bool {
        self.msgs.is_empty()
    }

    fn stats(&self) -> ProcessStats {
        ProcessStats {
            msg_set: self.msgs.len(),
            my_acks: self.my_acks.len(),
            all_ack_entries: self.all_acks.values().map(|r| r.acks.len()).sum(),
            delivered: self.delivered.len(),
            label_counters: 0,
        }
    }

    fn algorithm_name(&self) -> &'static str {
        if self.weakened {
            "alg1-weakened"
        } else {
            "alg1-majority"
        }
    }

    fn configure_memory(&mut self, cfg: MemoryConfig) {
        self.tombs = TombstoneRing::new(cfg.tombstones);
        self.mem = Some(cfg);
    }

    /// Algorithm 1 stability rule (DESIGN.md §14): with no failure detector,
    /// the only proof that *every* correct process holds a message is `n`
    /// distinct `tag_ack`s — each process re-uses one stable tag_ack per
    /// tag, so `n` distinct ones mean all `n` processes acknowledged. After
    /// the grace period the tag's entries (including its `MSG` entry) are
    /// reclaimed; Task 1 stops rebroadcasting it, a deliberate deviation
    /// from the rebroadcast-forever loop that is active only in
    /// bounded-memory mode. With crashed processes `n` ACKs never arrive
    /// and those tags are never reclaimed — Algorithm 1 has no way to rule
    /// out a slow correct process, which is exactly why the paper needs
    /// `AP*` for quiescence.
    fn compact(&mut self, _fd: &FdSnapshot) -> CompactionReport {
        let Some(cfg) = self.mem else {
            return CompactionReport::default();
        };
        let mut report = CompactionReport::default();
        // No detector exists to signal suspicion, so conservative mode
        // simply doubles the grace period.
        let need = if cfg.conservative {
            cfg.grace_ticks.saturating_mul(2)
        } else {
            cfg.grace_ticks
        };
        let over = cfg.ceiling.is_some_and(|c| self.stats().total() > c);
        let candidates: Vec<Tag> = self.delivered.iter().copied().collect();
        for tag in candidates {
            let stable = self
                .all_acks
                .get(&tag)
                .is_some_and(|r| r.acks.len() >= self.n);
            if !stable {
                self.grace.remove(&tag);
                continue;
            }
            let clock = self.grace.entry(tag).or_insert(0);
            *clock += 1;
            if *clock > need || over {
                report.reclaimed += self.reclaim(tag);
                report.tombstoned += 1;
            }
        }
        if over && cfg.spill == SpillPolicy::Tombstones {
            self.tombs.shed_half();
        }
        report
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        let mut w = SnapshotWriter::new();
        w.put_u64(self.n as u64);
        w.put_u64(self.threshold as u64);
        w.put_u8(self.weakened as u8);
        w.put_u64(self.compacted);
        w.put_u64(self.msgs.len() as u64);
        for (tag, payload) in &self.msgs {
            w.put_u128(tag.0);
            w.put_bytes(payload.as_slice());
        }
        w.put_u64(self.my_acks.len() as u64);
        for (tag, ta) in &self.my_acks {
            w.put_u128(tag.0);
            w.put_u128(ta.0);
        }
        w.put_u64(self.all_acks.len() as u64);
        for (tag, rec) in &self.all_acks {
            w.put_u128(tag.0);
            w.put_bytes(rec.payload.as_slice());
            w.put_u64(rec.acks.len() as u64);
            for ta in &rec.acks {
                w.put_u128(ta.0);
            }
        }
        w.put_u64(self.delivered.len() as u64);
        for tag in &self.delivered {
            w.put_u128(tag.0);
        }
        self.tombs.save(&mut w);
        w.put_u64(self.grace.len() as u64);
        for (tag, clock) in &self.grace {
            w.put_u128(tag.0);
            w.put_u32(*clock);
        }
        Some(w.into_body())
    }

    fn restore_state(&mut self, body: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(body);
        let n = r.get_u64()? as usize;
        let threshold = r.get_u64()? as usize;
        if n != self.n || threshold != self.threshold {
            return Err(SnapshotError::Malformed(format!(
                "snapshot is for n={n} threshold={threshold}, instance has n={} threshold={}",
                self.n, self.threshold
            )));
        }
        let weakened = r.get_u8()?;
        if weakened > 1 {
            return Err(SnapshotError::Malformed(format!(
                "weakened flag byte {weakened} is not a bool"
            )));
        }
        if (weakened == 1) != self.weakened {
            return Err(SnapshotError::Malformed(
                "snapshot weakened flag does not match instance".to_string(),
            ));
        }
        self.compacted = r.get_u64()?;
        self.msgs.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let payload = Payload::copy_from_slice(r.get_bytes()?);
            self.msgs.insert(tag, payload);
        }
        self.my_acks.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let ta = TagAck(r.get_u128()?);
            self.my_acks.insert(tag, ta);
        }
        self.all_acks.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let payload = Payload::copy_from_slice(r.get_bytes()?);
            let mut rec = AckRecord {
                acks: BTreeSet::new(),
                payload,
            };
            for _ in 0..r.get_u64()? {
                rec.acks.insert(TagAck(r.get_u128()?));
            }
            self.all_acks.insert(tag, rec);
        }
        self.delivered.clear();
        for _ in 0..r.get_u64()? {
            self.delivered.insert(Tag(r.get_u128()?));
        }
        self.tombs = TombstoneRing::restore(&mut r, self.mem.map_or(0, |m| m.tombstones))?;
        self.grace.clear();
        for _ in 0..r.get_u64()? {
            let tag = Tag(r.get_u128()?);
            let clock = r.get_u32()?;
            self.grace.insert(tag, clock);
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StepHarness;

    fn msg(tag: u128, body: &str) -> WireMessage {
        WireMessage::Msg {
            tag: Tag(tag),
            payload: Payload::from(body),
        }
    }

    fn ack(tag: u128, ta: u128, body: &str) -> WireMessage {
        WireMessage::Ack {
            tag: Tag(tag),
            tag_ack: TagAck(ta),
            payload: Payload::from(body),
            labels: None,
        }
    }

    #[test]
    fn broadcast_assigns_unique_tags_and_stores_message() {
        let mut h = StepHarness::new(1);
        let mut p = MajorityUrb::new(5);
        let (t1, _) = h.broadcast(&mut p, Payload::from("a"));
        let (t2, _) = h.broadcast(&mut p, Payload::from("b"));
        assert_ne!(t1, t2);
        assert_eq!(p.stats().msg_set, 2);
    }

    #[test]
    fn first_msg_reception_mints_ack_and_stores() {
        let mut h = StepHarness::new(2);
        let mut p = MajorityUrb::new(3);
        let out = h.receive(&mut p, msg(7, "hi"));
        assert_eq!(out.acks().len(), 1, "exactly one ACK per reception");
        assert_eq!(p.stats().msg_set, 1, "message entered MSG set");
        assert_eq!(p.stats().my_acks, 1);
        match out.acks()[0] {
            WireMessage::Ack {
                tag,
                payload,
                labels,
                ..
            } => {
                assert_eq!(*tag, Tag(7));
                assert_eq!(payload.as_slice(), b"hi");
                assert!(labels.is_none(), "Algorithm 1 ACKs carry no labels");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn repeated_msg_reception_rebroadcasts_identical_ack() {
        // Lines 11–12: the tag_ack must be stable across retransmissions —
        // this is what makes distinct tag_acks count distinct processes.
        let mut h = StepHarness::new(3);
        let mut p = MajorityUrb::new(3);
        let first = h.receive(&mut p, msg(7, "hi"));
        let second = h.receive(&mut p, msg(7, "hi"));
        let get_ta = |o: &crate::harness::StepOut| match o.acks()[0] {
            WireMessage::Ack { tag_ack, .. } => *tag_ack,
            _ => panic!(),
        };
        assert_eq!(get_ta(&first), get_ta(&second));
        assert_eq!(p.stats().my_acks, 1, "MY_ACK holds one entry per tag");
    }

    #[test]
    fn distinct_messages_get_distinct_tag_acks() {
        let mut h = StepHarness::new(4);
        let mut p = MajorityUrb::new(3);
        let o1 = h.receive(&mut p, msg(1, "a"));
        let o2 = h.receive(&mut p, msg(2, "b"));
        let ta = |o: &crate::harness::StepOut| match o.acks()[0] {
            WireMessage::Ack { tag_ack, .. } => *tag_ack,
            _ => panic!(),
        };
        assert_ne!(ta(&o1), ta(&o2));
    }

    #[test]
    fn delivery_at_exactly_strict_majority() {
        // n = 5 ⇒ threshold 3. Two distinct ACKs: no delivery; third: deliver.
        let mut h = StepHarness::new(5);
        let mut p = MajorityUrb::new(5);
        assert!(h.receive(&mut p, ack(9, 100, "m")).deliveries.is_empty());
        assert!(h.receive(&mut p, ack(9, 101, "m")).deliveries.is_empty());
        let out = h.receive(&mut p, ack(9, 102, "m"));
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].tag, Tag(9));
        assert_eq!(out.deliveries[0].payload.as_slice(), b"m");
    }

    #[test]
    fn duplicate_tag_acks_do_not_count_twice() {
        let mut h = StepHarness::new(6);
        let mut p = MajorityUrb::new(3); // threshold 2
        assert!(h.receive(&mut p, ack(9, 100, "m")).deliveries.is_empty());
        // Same tag_ack again (retransmission): still one distinct ACK.
        assert!(h.receive(&mut p, ack(9, 100, "m")).deliveries.is_empty());
        assert_eq!(p.ack_count(Tag(9)), 1);
        assert_eq!(h.receive(&mut p, ack(9, 101, "m")).deliveries.len(), 1);
    }

    #[test]
    fn no_duplicate_delivery() {
        // Uniform Integrity: at most one delivery per message.
        let mut h = StepHarness::new(7);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, ack(9, 1, "m"));
        let out = h.receive(&mut p, ack(9, 2, "m"));
        assert_eq!(out.deliveries.len(), 1);
        // Further ACKs for the same tag change nothing.
        let out = h.receive(&mut p, ack(9, 3, "m"));
        assert!(out.deliveries.is_empty());
        assert_eq!(h.all_deliveries().len(), 1);
    }

    #[test]
    fn fast_delivery_flag_set_when_msg_copy_never_arrived() {
        // The §III remark: majority of ACKs can precede the MSG copy.
        let mut h = StepHarness::new(8);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, ack(9, 1, "m"));
        let out = h.receive(&mut p, ack(9, 2, "m"));
        assert!(out.deliveries[0].fast, "delivered without the MSG copy");
    }

    #[test]
    fn normal_delivery_flag_unset_when_msg_arrived_first() {
        let mut h = StepHarness::new(9);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, msg(9, "m"));
        h.receive(&mut p, ack(9, 1, "m"));
        let out = h.receive(&mut p, ack(9, 2, "m"));
        assert!(!out.deliveries[0].fast);
    }

    #[test]
    fn task1_rebroadcasts_all_known_messages_forever() {
        let mut h = StepHarness::new(10);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, msg(1, "a"));
        h.receive(&mut p, msg(2, "b"));
        for _ in 0..3 {
            let out = h.tick(&mut p);
            assert_eq!(out.msgs().len(), 2, "every MSG rebroadcast each sweep");
        }
        assert!(!p.is_quiescent(), "Algorithm 1 is non-quiescent");
    }

    #[test]
    fn quiescent_only_before_any_message() {
        let p = MajorityUrb::new(3);
        assert!(p.is_quiescent());
    }

    #[test]
    fn own_broadcast_echo_generates_self_ack() {
        // The broadcast primitive includes the sender; receiving our own MSG
        // must produce our ACK (first case in the paper's description).
        let mut h = StepHarness::new(11);
        let mut p = MajorityUrb::new(3);
        let (tag, _) = h.broadcast(&mut p, Payload::from("mine"));
        let out = h.receive(
            &mut p,
            WireMessage::Msg {
                tag,
                payload: Payload::from("mine"),
            },
        );
        assert_eq!(out.acks().len(), 1);
        assert_eq!(p.stats().my_acks, 1);
    }

    #[test]
    fn weakened_threshold_delivers_below_majority() {
        let mut h = StepHarness::new(12);
        let mut p = MajorityUrb::with_threshold(6, 2); // majority would be 4
        assert_eq!(p.algorithm_name(), "alg1-weakened");
        h.receive(&mut p, ack(9, 1, "m"));
        let out = h.receive(&mut p, ack(9, 2, "m"));
        assert_eq!(out.deliveries.len(), 1, "delivers on sub-majority quorum");
    }

    #[test]
    fn threshold_accessors() {
        let p = MajorityUrb::new(7);
        assert_eq!(p.threshold(), 4);
        assert_eq!(p.n(), 7);
        let p = MajorityUrb::new(8);
        assert_eq!(p.threshold(), 5, "strict majority for even n");
    }

    #[test]
    fn heartbeats_are_ignored() {
        let mut h = StepHarness::new(13);
        let mut p = MajorityUrb::new(3);
        let out = h.receive(
            &mut p,
            WireMessage::Heartbeat {
                label: urb_types::Label(1),
                seq: 0,
            },
        );
        assert!(out.is_silent());
    }

    #[test]
    fn ack_before_msg_then_msg_is_still_acked() {
        // Interleaving: ACKs arrive first (fast path), then the MSG copy;
        // the process must still acknowledge the MSG for others' quorums.
        let mut h = StepHarness::new(14);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, ack(9, 1, "m"));
        h.receive(&mut p, ack(9, 2, "m")); // delivers (fast)
        let out = h.receive(&mut p, msg(9, "m"));
        assert_eq!(out.acks().len(), 1);
        assert_eq!(h.all_deliveries().len(), 1, "no re-delivery");
    }

    #[test]
    fn stats_track_all_sets() {
        let mut h = StepHarness::new(15);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, msg(1, "a"));
        h.receive(&mut p, ack(1, 10, "a"));
        h.receive(&mut p, ack(1, 11, "a"));
        let s = p.stats();
        assert_eq!(s.msg_set, 1);
        assert_eq!(s.my_acks, 1);
        assert_eq!(s.all_ack_entries, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.label_counters, 0);
    }

    // ---- bounded-memory mode (DESIGN.md §14) ----------------------------

    use urb_types::{FdSnapshot, MemoryConfig};

    fn mem(grace: u32) -> MemoryConfig {
        MemoryConfig {
            grace_ticks: grace,
            conservative: false,
            tombstones: 16,
            ceiling: None,
            spill: urb_types::SpillPolicy::StableOnly,
        }
    }

    /// n=3 process with tag 9 delivered and acked by all three processes.
    fn fully_acked(h: &mut StepHarness) -> MajorityUrb {
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, msg(9, "m"));
        for ta in [1, 2, 3] {
            h.receive(&mut p, ack(9, ta, "m"));
        }
        assert!(p.has_delivered(Tag(9)));
        assert_eq!(p.ack_count(Tag(9)), 3);
        p
    }

    #[test]
    fn compact_waits_for_all_n_acks() {
        let mut h = StepHarness::new(50);
        let mut p = MajorityUrb::new(3);
        h.receive(&mut p, msg(9, "m"));
        h.receive(&mut p, ack(9, 1, "m"));
        h.receive(&mut p, ack(9, 2, "m")); // delivers (majority) — but 2 < n
        p.configure_memory(mem(0));
        let fd = FdSnapshot::none();
        for _ in 0..5 {
            assert_eq!(p.compact(&fd).tombstoned, 0, "majority is not stability");
        }
        // The third ACK completes the stability evidence.
        h.receive(&mut p, ack(9, 3, "m"));
        assert_eq!(p.compact(&fd).tombstoned, 1);
        assert_eq!(p.stats().total(), 0, "MSG included: Task 1 goes silent");
        assert!(
            p.is_quiescent(),
            "bounded-memory Alg 1 quiesces on stability"
        );
    }

    #[test]
    fn compacted_tag_is_ignored_and_never_reacked() {
        let mut h = StepHarness::new(51);
        let mut p = fully_acked(&mut h);
        p.configure_memory(mem(0));
        p.compact(&FdSnapshot::none());
        assert!(p.is_tombstoned(Tag(9)));
        let out = h.receive(&mut p, msg(9, "m"));
        assert!(out.is_silent(), "no second tag_ack for a compacted tag");
        let out = h.receive(&mut p, ack(9, 4, "m"));
        assert!(out.deliveries.is_empty());
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn grace_clock_counts_consecutive_stable_sweeps() {
        let mut h = StepHarness::new(52);
        let mut p = fully_acked(&mut h);
        p.configure_memory(mem(2));
        let fd = FdSnapshot::none();
        assert_eq!(p.compact(&fd).tombstoned, 0); // clock 1
        assert_eq!(p.compact(&fd).tombstoned, 0); // clock 2
        assert_eq!(p.compact(&fd).tombstoned, 1); // clock 3 > 2
        assert_eq!(p.compacted_count(), 1);
    }

    #[test]
    fn snapshot_round_trip_is_byte_deterministic() {
        let mut h = StepHarness::new(53);
        let p = fully_acked(&mut h);
        let body = p.save_state().expect("alg1 snapshots");
        let mut q = MajorityUrb::new(3);
        q.restore_state(&body).unwrap();
        assert_eq!(q.stats(), p.stats());
        assert_eq!(q.ack_count(Tag(9)), 3);
        assert!(q.has_delivered(Tag(9)));
        assert_eq!(q.save_state().unwrap(), body);
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let p = MajorityUrb::new(3);
        let body = p.save_state().unwrap();
        let mut wrong_n = MajorityUrb::new(5);
        assert!(wrong_n.restore_state(&body).is_err());
        let mut weak = MajorityUrb::with_threshold(3, 1);
        assert!(weak.restore_state(&body).is_err());
        let mut ok = MajorityUrb::new(3);
        ok.restore_state(&body).unwrap();
    }

    // ---- property tests -------------------------------------------------

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary interleavings of MSG/ACK receptions never produce a
        /// duplicate delivery, never deliver below the threshold, and always
        /// deliver once the threshold is met (Uniform Integrity + the line-22
        /// condition).
        fn event_strategy() -> impl Strategy<Value = Vec<(bool, u8, u8)>> {
            // (is_ack, tag 0..4, tag_ack 0..8)
            proptest::collection::vec((any::<bool>(), 0u8..4, 0u8..8), 1..120)
        }

        proptest! {
            #[test]
            fn integrity_under_arbitrary_interleavings(events in event_strategy()) {
                let mut h = StepHarness::new(99);
                let mut p = MajorityUrb::new(5); // threshold 3
                let mut delivered_tags: Vec<Tag> = Vec::new();
                for (is_ack, tg, ta) in events {
                    let out = if is_ack {
                        h.receive(&mut p, ack(tg as u128, ta as u128, "m"))
                    } else {
                        h.receive(&mut p, msg(tg as u128, "m"))
                    };
                    for d in &out.deliveries {
                        prop_assert!(
                            !delivered_tags.contains(&d.tag),
                            "duplicate delivery of {:?}", d.tag
                        );
                        delivered_tags.push(d.tag);
                        prop_assert!(p.ack_count(d.tag) >= 3,
                            "delivered below threshold");
                    }
                }
                // Post-condition: every tag with >= threshold distinct acks
                // was delivered.
                for tg in 0u8..4 {
                    let tag = Tag(tg as u128);
                    if p.ack_count(tag) >= 3 {
                        prop_assert!(p.has_delivered(tag));
                    }
                }
            }

            #[test]
            fn tick_output_equals_msg_set(seeds in proptest::collection::vec(0u8..4, 0..10)) {
                let mut h = StepHarness::new(7);
                let mut p = MajorityUrb::new(5);
                for s in &seeds {
                    h.receive(&mut p, msg(*s as u128, "x"));
                }
                let distinct: std::collections::BTreeSet<_> = seeds.iter().collect();
                let out = h.tick(&mut p);
                prop_assert_eq!(out.msgs().len(), distinct.len());
            }

            #[test]
            fn tag_acks_never_collide_across_tags(tags in proptest::collection::vec(0u8..20, 1..40)) {
                let mut h = StepHarness::new(1234);
                let mut p = MajorityUrb::new(5);
                let mut seen = std::collections::BTreeSet::new();
                for tg in tags {
                    let out = h.receive(&mut p, msg(tg as u128, "x"));
                    if let WireMessage::Ack { tag_ack, .. } = out.acks()[0] {
                        seen.insert(*tag_ack);
                    }
                }
                // one tag_ack per *distinct* tag, all unique
                let distinct_tags = p.stats().my_acks;
                prop_assert_eq!(seen.len(), distinct_tags);
            }
        }

        #[test]
        fn rng_is_actually_used_for_tags() {
            // Two harnesses with different seeds produce different tags.
            let mut h1 = StepHarness::new(1);
            let mut h2 = StepHarness::new(2);
            let t1 = Tag::random(h1.rng());
            let t2 = Tag::random(h2.rng());
            assert_ne!(t1, t2);
        }
    }
}
