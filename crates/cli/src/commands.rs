//! Command implementations for the `urb` binary.
//!
//! Every `--json` output — `run`, `scenario` and `bench` alike — wears
//! the shared envelope from [`urb_bench::report`]
//! (`schema_version`/`kind`/`seed`/`git_rev` around a kind-specific
//! `data` body), so scripts consume one shape (DESIGN.md §10).

use crate::args::{BenchArgs, CheckArgs, ClusterArgs, FdChoice, NodeArgs, RunArgs, ScenarioArgs};
use crate::summary::RunSummary;
use urb_bench::report;
use urb_bench::trajectory::{self, TrajectoryConfig};
use urb_check::{
    check_scenario_with, CacheBinding, CacheSession, CheckOutcome, Counterexample, ExploreOptions,
    Strategy,
};
use urb_fd::{HeartbeatConfig, OracleConfig};
use urb_runtime::NodeReport;
use urb_sim::{scenario, CrashPlan, FdKind, LossModel, ScenarioSpec, SimConfig, TraceConfig};

/// Envelope kind of `urb run --json` / `urb scenario --json` bodies.
pub const RUN_SUMMARY_KIND: &str = "run-summary";

/// Envelope kind of `urb check --json` report bodies.
pub const CHECK_REPORT_KIND: &str = "check-report";

/// Builds a [`SimConfig`] from CLI flags.
pub fn build_config(args: &RunArgs) -> SimConfig {
    let mut cfg = SimConfig::new(args.n, args.algorithm)
        .seed(args.seed)
        .topics(args.topics)
        .workload_topics(args.msgs, 100)
        .max_time(args.horizon);
    cfg.loss = if args.loss <= 0.0 {
        LossModel::None
    } else if args.burst {
        LossModel::Burst {
            p_enter: args.loss / 4.0,
            p_exit: 0.2,
            p_loss: 0.9,
        }
    } else {
        LossModel::Bernoulli { p: args.loss }
    };
    if args.crashes > 0 {
        cfg.crashes = CrashPlan::random(args.n, args.crashes, 400, args.seed ^ 0xC11, Some(0));
    }
    match args.fd {
        Some(FdChoice::Oracle) => cfg.fd = FdKind::Oracle(OracleConfig::default()),
        Some(FdChoice::Heartbeat) => cfg.fd = FdKind::Heartbeat(HeartbeatConfig::default()),
        Some(FdChoice::None) => cfg.fd = FdKind::None,
        None => {} // SimConfig::new already picked by algorithm
    }
    if args.trace.is_some() {
        cfg.trace = TraceConfig::full(1_000_000);
    }
    // Non-quiescent algorithms would run to the horizon; end once the URB
    // verdict is decided (quiescent ones still get their quiescence flag
    // because stop_on_quiescence remains on and is checked first).
    cfg.stop_on_full_delivery = true;
    cfg
}

/// `urb run`.
pub fn run_cmd(args: RunArgs) {
    let cfg = build_config(&args);
    let out = urb_sim::run(cfg);
    if let Some(path) = &args.trace {
        match std::fs::write(path, out.trace.to_json()) {
            Ok(()) => eprintln!("trace: {} events written to {path}", out.trace.len()),
            Err(e) => {
                eprintln!("error writing trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let summary = RunSummary::from_outcome(&out);
    if args.json {
        println!(
            "{}",
            report::envelope(RUN_SUMMARY_KIND, args.seed, &summary.to_json())
        );
    } else {
        print!("{}", summary.render_text());
    }
    if !out.all_ok() {
        std::process::exit(1);
    }
}

/// Loads and compiles a scenario spec file, applying CLI overrides.
/// Returns the spec plus its runnable config (split out for tests).
pub fn load_scenario(args: &ScenarioArgs) -> Result<(ScenarioSpec, urb_sim::SimConfig), String> {
    let text = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let mut spec = ScenarioSpec::from_named_str(&args.path, &text)
        .map_err(|e| format!("{}: {e}", args.path))?;
    if let Some(seed) = args.seed {
        spec.seed = seed;
    }
    let mut cfg = spec.compile().map_err(|e| format!("{}: {e}", args.path))?;
    if args.trace.is_some() {
        cfg.trace = TraceConfig::full(1_000_000);
    }
    Ok((spec, cfg))
}

/// `urb scenario <file>`: replay a declarative scenario and check its
/// `[expect]` verdict on top of the per-run URB property checker.
pub fn scenario_cmd(args: ScenarioArgs) {
    let (spec, cfg) = match load_scenario(&args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let out = urb_sim::run(cfg);
    if let Some(path) = &args.trace {
        match std::fs::write(path, out.trace.to_json()) {
            Ok(()) => eprintln!("trace: {} events written to {path}", out.trace.len()),
            Err(e) => {
                eprintln!("error writing trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let summary = RunSummary::from_outcome(&out);
    if args.json {
        println!(
            "{}",
            report::envelope(RUN_SUMMARY_KIND, spec.seed, &summary.to_json())
        );
    } else {
        println!(
            "scenario: {} ({}){}",
            spec.name,
            args.path,
            if spec.description.is_empty() {
                String::new()
            } else {
                format!("\n  {}", spec.description)
            }
        );
        print!("{}", summary.render_text());
    }
    let fails = spec.expect.check(&out);
    if fails.is_empty() {
        if !args.json {
            println!("scenario verdict: PASS");
        }
    } else {
        for f in &fails {
            eprintln!("scenario expectation failed: {f}");
        }
        eprintln!("scenario verdict: FAIL ({})", spec.name);
        std::process::exit(1);
    }
}

/// The JSON body of a check report (split out for tests). The optional
/// counterexample body is inlined under `counterexample` so a `--json`
/// consumer needs no second file.
pub fn check_report_body(outcome: &CheckOutcome) -> String {
    use std::fmt::Write as _;
    let s = &outcome.stats;
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"scenario\": \"{}\",",
        serde_json::escape(&outcome.scenario)
    );
    let _ = writeln!(out, "  \"strategy\": \"{}\",", outcome.strategy.as_str());
    let _ = writeln!(out, "  \"depth\": {},", outcome.depth);
    let _ = writeln!(out, "  \"jobs\": {},", outcome.jobs);
    let _ = writeln!(
        out,
        "  \"expects_violation\": {},",
        outcome.expects_violation
    );
    let _ = writeln!(out, "  \"passed\": {},", outcome.passed());
    let _ = writeln!(out, "  \"stats\": {{");
    let _ = writeln!(out, "    \"states\": {},", s.states);
    let _ = writeln!(out, "    \"engine_steps\": {},", s.engine_steps);
    let _ = writeln!(out, "    \"dedup_hits\": {},", s.dedup_hits);
    let _ = writeln!(out, "    \"dedup_hit_rate\": {:?},", s.dedup_hit_rate());
    let _ = writeln!(out, "    \"states_per_sec\": {:?},", s.states_per_sec());
    let _ = writeln!(out, "    \"max_depth\": {},", s.max_depth);
    let _ = writeln!(out, "    \"silent_states\": {},", s.silent_states);
    let _ = writeln!(out, "    \"depth_prunes\": {},", s.depth_prunes);
    let _ = writeln!(out, "    \"delay_prunes\": {},", s.delay_prunes);
    let _ = writeln!(out, "    \"dpor_pruned\": {},", s.dpor_pruned);
    let _ = writeln!(
        out,
        "    \"mismatched_violations\": {},",
        s.mismatched_violations
    );
    let _ = writeln!(out, "    \"truncated\": {}", s.truncated);
    let _ = writeln!(out, "  }},");
    match &outcome.cache {
        None => {
            let _ = writeln!(out, "  \"cache\": null,");
        }
        Some(c) => {
            let _ = writeln!(out, "  \"cache\": {{");
            let _ = writeln!(out, "    \"hits\": {},", c.hits);
            let _ = writeln!(out, "    \"misses\": {},", c.misses);
            let _ = writeln!(out, "    \"hit_rate\": {:?},", c.hit_rate());
            let _ = writeln!(out, "    \"loaded\": {},", c.loaded);
            let _ = writeln!(out, "    \"persisted\": {}", c.persisted);
            let _ = writeln!(out, "  }},");
        }
    }
    match &outcome.counterexample {
        None => {
            let _ = writeln!(out, "  \"counterexample\": null");
        }
        Some(cx) => {
            let body = cx.body_json();
            let mut indented = String::with_capacity(body.len() + 64);
            for (i, line) in body.lines().enumerate() {
                if i > 0 {
                    indented.push_str("\n  ");
                }
                indented.push_str(line);
            }
            let _ = writeln!(out, "  \"counterexample\": {indented}");
        }
    }
    out.push('}');
    out
}

/// `urb check --replay <file>`: re-execute a recorded counterexample and
/// verify it reproduces the recorded violation and delivery trace.
fn check_replay_cmd(path: &str, json: bool) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let cx = match Counterexample::parse(&text) {
        Ok(cx) => cx,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    match cx.replay() {
        Ok(violation) => {
            if json {
                let body = format!(
                    "{{\n  \"scenario\": \"{}\",\n  \"reproduced\": true,\n  \
                     \"violation\": [{}]\n}}",
                    serde_json::escape(&cx.scenario),
                    violation
                        .iter()
                        .map(|v| format!("\"{}\"", serde_json::escape(v)))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                println!("{}", report::envelope("check-replay", cx.seed, &body));
            } else {
                println!(
                    "replay: {} ({} choices) reproduced the recorded violation:",
                    cx.scenario,
                    cx.choices.len()
                );
                for v in &violation {
                    println!("  {v}");
                }
            }
        }
        Err(e) => {
            eprintln!("replay FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// `urb check <scenario>`: systematic bounded exploration of the
/// scenario's schedule space (DESIGN.md §11). Exit codes: 0 = the check
/// passed (expected violation found, or clean scenario survived), 1 =
/// check failed, 2 = usage/spec errors.
pub fn check_cmd(args: CheckArgs) {
    if let Some(path) = &args.replay {
        check_replay_cmd(path, args.json);
        return;
    }
    let path = args.path.as_deref().expect("parser enforces FILE");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let spec = match ScenarioSpec::from_named_str(path, &text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    let strategy_override = args
        .strategy
        .as_deref()
        .map(|s| Strategy::parse(s).expect("parser validated"));
    // Resolve the strategy up front: the cache binding must name the
    // mode the run will actually use.
    let strategy = match Strategy::resolve(&spec, strategy_override) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut session = match &args.cache {
        None => None,
        Some(cache_path) => {
            let dpor = strategy == Strategy::DporLite;
            let seed = args.seed.unwrap_or(spec.seed);
            let binding = CacheBinding::new(&spec, strategy, dpor, seed);
            match CacheSession::open(cache_path, binding) {
                Ok(s) => {
                    if let Some(reason) = s.stale() {
                        eprintln!("cache: ignoring {cache_path} ({reason})");
                    }
                    Some(s)
                }
                Err(e) => {
                    eprintln!("error: {cache_path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let opts = ExploreOptions {
        strategy: Some(strategy),
        depth: args.depth,
        seed: args.seed,
        jobs: args.jobs.unwrap_or(1),
        ..ExploreOptions::default()
    };
    let mut outcome = match check_scenario_with(&spec, &opts, session.as_mut()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    if let Some(session) = &session {
        // A failed save degrades the next run to a cold start — warn,
        // don't fail the verdict.
        match session.save() {
            Ok(persisted) => {
                if let Some(cache) = &mut outcome.cache {
                    cache.persisted = persisted;
                }
                if persisted > 0 {
                    eprintln!(
                        "cache: {persisted} subtree rows persisted to {}",
                        args.cache.as_deref().unwrap_or("?")
                    );
                }
            }
            Err(e) => eprintln!("warning: cache not persisted: {e}"),
        }
    }
    if let Some(trace_path) = &args.trace {
        match &outcome.counterexample {
            Some(cx) => {
                let file = report::envelope(
                    urb_check::counterexample::KIND,
                    outcome.seed,
                    &cx.body_json(),
                );
                if let Err(e) = std::fs::write(trace_path, file) {
                    eprintln!("error writing counterexample to {trace_path}: {e}");
                    std::process::exit(1);
                }
                eprintln!(
                    "counterexample: {} choices written to {trace_path}",
                    cx.choices.len()
                );
            }
            None => eprintln!("counterexample: none found, {trace_path} not written"),
        }
    }
    if args.json {
        println!(
            "{}",
            report::envelope(
                CHECK_REPORT_KIND,
                outcome.seed,
                &check_report_body(&outcome)
            )
        );
    } else {
        let s = &outcome.stats;
        println!("check: {} ({path})", outcome.scenario);
        println!(
            "  strategy {}, depth ≤ {}, seed {}, jobs {}",
            outcome.strategy.as_str(),
            outcome.depth,
            outcome.seed,
            outcome.jobs
        );
        println!(
            "  explored {} states ({} engine steps, {:.0} states/sec){}",
            s.states,
            s.engine_steps,
            s.states_per_sec(),
            if s.truncated { " [truncated]" } else { "" }
        );
        println!(
            "  dedup hit-rate {:.3}, max depth {}, silent states {}, dpor pruned {}",
            s.dedup_hit_rate(),
            s.max_depth,
            s.silent_states,
            s.dpor_pruned
        );
        if let Some(c) = &outcome.cache {
            println!(
                "  cache: {} hits / {} misses (rate {:.3}), {} loaded, {} persisted",
                c.hits,
                c.misses,
                c.hit_rate(),
                c.loaded,
                c.persisted
            );
        }
        println!("check verdict: {}", outcome.verdict_line());
    }
    if !outcome.passed() {
        std::process::exit(1);
    }
}

/// Builds the trajectory configuration from CLI flags (split out for
/// tests).
pub fn build_trajectory_config(args: &BenchArgs) -> TrajectoryConfig {
    let mut cfg = TrajectoryConfig::full(args.seed);
    cfg.seeds_per_cell = args.seeds;
    if let Some(ids) = &args.experiments {
        cfg.ids = ids.clone();
    }
    cfg.load_topics = args.load_topics.clone();
    cfg.rates = args.rates.clone();
    cfg
}

/// `urb bench`: either validates an existing trajectory file
/// (`--validate`) or runs the reduced experiment grids, prints the human
/// summary plus the codec A/B footer, and — with `--json` — writes the
/// schema-versioned trajectory file (DESIGN.md §10).
pub fn bench_cmd(args: BenchArgs) {
    if let Some((old, new)) = &args.diff {
        let read = |path: &str| -> String {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            })
        };
        let (old_text, new_text) = (read(old), read(new));
        match trajectory::diff_json(&old_text, &new_text) {
            Ok(diff) => {
                println!("bench diff: {old} → {new}");
                print!("{}", diff.render());
                if diff.is_clean() {
                    println!(
                        "bench diff: OK ({} overlapping points identical)",
                        diff.matched.len()
                    );
                } else {
                    eprintln!("bench diff: FAIL");
                    std::process::exit(1);
                }
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &args.validate {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match trajectory::validate_json(&text) {
            Ok(()) => {
                println!(
                    "{path}: valid bench trajectory (schema v{})",
                    report::SCHEMA_VERSION
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violations: {e}");
                std::process::exit(1);
            }
        }
    }
    let cfg = build_trajectory_config(&args);
    eprintln!(
        "bench: collecting {} experiment grids, {} seeds/cell, seed {} …",
        cfg.ids.len(),
        cfg.seeds_per_cell,
        cfg.seed
    );
    let traj = trajectory::collect(&cfg);
    traj.summary_table().print();
    println!();
    print!("{}", urb_bench::compare::run(args.seed, 5).render_text());
    print!(
        "{}",
        urb_bench::compare::run_dispatch(args.seed, 1 << 14, 3).render_text()
    );
    if let Some(path) = &args.json {
        let json = traj.to_json();
        trajectory::validate_json(&json).expect("fresh trajectory conforms to its schema");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!(
                "bench: trajectory ({} experiments) written to {path}",
                traj.points.len()
            ),
            Err(e) => {
                eprintln!("error writing trajectory to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The loss rates `urb sweep` visits.
pub const SWEEP_LOSSES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// `urb sweep`: one row per loss rate, everything else from flags. The
/// rows are independent simulated runs, so they are fanned across all
/// cores via `urb_sim::parallel` and printed in order afterwards.
pub fn sweep_cmd(args: RunArgs) {
    println!(
        "loss sweep: n={} alg={} crashes={} msgs={} (seed {})",
        args.n,
        args.algorithm.name(),
        args.crashes,
        args.msgs,
        args.seed
    );
    println!("loss   ok     median  p99     transmissions");
    let configs = SWEEP_LOSSES
        .iter()
        .map(|&loss| {
            let mut a = args.clone();
            a.loss = loss;
            a.trace = None;
            build_config(&a)
        })
        .collect();
    for (loss, out) in SWEEP_LOSSES.iter().zip(urb_sim::run_many(configs)) {
        let s = RunSummary::from_outcome(&out);
        println!(
            "{:<6.2} {:<6} {:<7} {:<7} {}",
            loss,
            s.validity_ok && s.agreement_ok && s.integrity_ok,
            s.median_latency.map_or("—".into(), |v| v.to_string()),
            s.p99_latency.map_or("—".into(), |v| v.to_string()),
            s.protocol_transmissions
        );
    }
}

/// Envelope kind of `urb theorem2 --json` bodies.
pub const THEOREM2_KIND: &str = "theorem2-report";

/// The combined Theorem-2 verdict: arm 1 (weakened threshold) violated
/// uniform agreement AND arm 2 (faithful majority) blocked. The single
/// definition both the JSON body and the exit code gate on.
pub fn theorem2_demonstrated(arm1: &urb_sim::RunOutcome, arm2: &urb_sim::RunOutcome) -> bool {
    !arm1.report.agreement.ok() && arm2.metrics.deliveries.is_empty()
}

/// The JSON body of a theorem2 report (split out for tests): both horns'
/// observations plus the combined `demonstrated` verdict the exit code
/// gates on.
pub fn theorem2_body(n: usize, arm1: &urb_sim::RunOutcome, arm2: &urb_sim::RunOutcome) -> String {
    let demonstrated = theorem2_demonstrated(arm1, arm2);
    format!(
        "{{\n  \"n\": {n},\n  \"threshold\": {},\n  \"arm1_deliveries\": {},\n  \
         \"arm1_agreement_ok\": {},\n  \"arm2_deliveries\": {},\n  \
         \"arm2_blocked\": {},\n  \"demonstrated\": {demonstrated}\n}}",
        n.div_ceil(2),
        arm1.metrics.deliveries.len(),
        arm1.report.agreement.ok(),
        arm2.metrics.deliveries.len(),
        arm2.metrics.deliveries.is_empty(),
    )
}

/// `urb theorem2`: executes both horns of the impossibility proof. With
/// `--json`, the observations wear the shared envelope
/// (`schema_version`/`kind`/`seed`/`git_rev`/`data`) every other
/// subcommand emits. Exit 1 when either horn fails to materialize (the
/// adversary regressed).
pub fn theorem2_cmd(n: usize, seed: u64, json: bool) {
    let s1 = n.div_ceil(2);
    let arm1 = urb_sim::run(scenario::theorem2_partition(n, seed));
    let arm2 = urb_sim::run(scenario::theorem2_control(n, seed));
    let demonstrated = theorem2_demonstrated(&arm1, &arm2);
    if json {
        println!(
            "{}",
            report::envelope(THEOREM2_KIND, seed, &theorem2_body(n, &arm1, &arm2))
        );
    } else {
        println!("Theorem 2 (impossibility of URB with t >= n/2), executable — n={n}\n");
        println!(
            "adversary: S1 = processes 0..{s1} (deliver then crash, outbound links severed), \
             S2 = the rest\n"
        );
        println!("arm 1: delivery threshold ⌈n/2⌉ = {s1} (what any t ≥ n/2 algorithm needs)");
        println!(
            "  deliveries: {} (all inside S1), uniform agreement: {}",
            arm1.metrics.deliveries.len(),
            if arm1.report.agreement.ok() {
                "holds"
            } else {
                "VIOLATED — S2 never delivers"
            }
        );
        println!(
            "\narm 2: faithful Algorithm 1 (strict majority = {})",
            n / 2 + 1
        );
        println!(
            "  deliveries: {} — {}",
            arm2.metrics.deliveries.len(),
            if arm2.metrics.deliveries.is_empty() {
                "blocked forever (safe, but URB's liveness is lost)"
            } else {
                "unexpected delivery!"
            }
        );
        println!(
            "\nboth horns observed: deliver-and-violate or block — hence URB needs t < n/2 \
             (or the AΘ/AP* detectors of Algorithm 2)."
        );
    }
    if !demonstrated {
        eprintln!("theorem2: expected adversary behaviour not observed");
        std::process::exit(1);
    }
}

/// Envelope kind of `urb node --json` bodies.
pub const NODE_REPORT_KIND: &str = "node-report";

/// Envelope kind of `urb cluster --json` bodies.
pub const CLUSTER_REPORT_KIND: &str = "cluster-report";

/// The CLI token for `--alg` that parses back to `alg` (the launcher
/// spawns `urb node` children with it; `Algorithm::name()` strings are
/// report labels, not flag values).
fn alg_flag(alg: urb_core::Algorithm) -> &'static str {
    use urb_core::Algorithm;
    match alg {
        Algorithm::Majority => "majority",
        Algorithm::Quiescent => "quiescent",
        Algorithm::QuiescentLiteral => "quiescent-literal",
        Algorithm::BestEffort => "best-effort",
        Algorithm::EagerRb => "eager-rb",
        // Parameterized variants are sim-only; the node parser never
        // produces them.
        other => unreachable!("{} has no CLI flag token", other.name()),
    }
}

/// The JSON body of a node report (split out for tests; the cluster
/// launcher parses it back out of each child's envelope).
pub fn node_report_body(n: usize, alg: urb_core::Algorithm, report: &NodeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"id\": {},", report.id);
    let _ = writeln!(out, "  \"n\": {n},");
    let _ = writeln!(out, "  \"algorithm\": \"{}\",", alg.name());
    let _ = writeln!(out, "  \"complete\": {},", report.complete);
    let _ = writeln!(out, "  \"topics_live\": {},", report.topics_live);
    let _ = writeln!(out, "  \"topics_reclaimed\": {},", report.topics_reclaimed);
    out.push_str("  \"per_topic\": [\n");
    for (i, t) in report.per_topic.iter().enumerate() {
        let payloads = t
            .payloads
            .iter()
            .map(|p| format!("\"{}\"", serde_json::escape(p)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\"topic\": {}, \"deliveries\": {}, \"payloads\": [{payloads}]}}",
            t.topic.0,
            t.payloads.len()
        );
        out.push_str(if i + 1 < report.per_topic.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    let s = &report.net;
    let _ = writeln!(out, "  \"net\": {{");
    let _ = writeln!(out, "    \"accepted\": {},", s.accepted);
    let _ = writeln!(out, "    \"dials_ok\": {},", s.dials_ok);
    let _ = writeln!(out, "    \"dials_failed\": {},", s.dials_failed);
    let _ = writeln!(out, "    \"reconnects\": {},", s.reconnects);
    let _ = writeln!(out, "    \"frames_sent\": {},", s.frames_sent);
    let _ = writeln!(out, "    \"frames_recv\": {},", s.frames_recv);
    let _ = writeln!(out, "    \"bytes_sent\": {},", s.bytes_sent);
    let _ = writeln!(out, "    \"bytes_recv\": {},", s.bytes_recv);
    let _ = writeln!(
        out,
        "    \"dropped_backpressure\": {},",
        s.dropped_backpressure
    );
    let _ = writeln!(out, "    \"send_failures\": {},", s.send_failures);
    let _ = writeln!(out, "    \"frame_errors\": {}", s.frame_errors);
    out.push_str("  }\n}");
    out
}

/// `urb node`: run one OS process of a socket cluster (DESIGN.md §13).
/// Exit codes: 0 = ran to completion (expectation met or none set),
/// 1 = `--expect` unmet at the deadline, 2 = bad config / bind failure.
pub fn node_cmd(args: NodeArgs) {
    let n = args.addrs.len();
    let mut cfg = urb_runtime::NodeConfig::new(args.id, n, args.algorithm, args.addrs.clone());
    cfg.topics = args.topics;
    cfg.seed = args.seed;
    cfg.msgs = args.msgs;
    cfg.listen = args.listen.clone();
    cfg.run_for = std::time::Duration::from_millis(args.run_ms);
    cfg.linger = std::time::Duration::from_millis(args.linger_ms);
    cfg.expect = args.expect;
    cfg.state_dir = args.state_dir.as_ref().map(std::path::PathBuf::from);
    let report = match urb_runtime::run_node(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.json {
        println!(
            "{}",
            report::envelope(
                NODE_REPORT_KIND,
                args.seed,
                &node_report_body(n, args.algorithm, &report)
            )
        );
    } else {
        println!(
            "node {}/{} ({}): {}",
            report.id,
            n,
            args.algorithm.name(),
            if report.complete {
                "complete"
            } else {
                "INCOMPLETE"
            }
        );
        for t in &report.per_topic {
            println!("  topic {}: {} deliveries", t.topic.0, t.payloads.len());
        }
        println!(
            "  topics: {} live, {} reclaimed",
            report.topics_live, report.topics_reclaimed
        );
        let s = &report.net;
        println!(
            "  net: {} frames out / {} in, {} accepted, {} reconnects, {} dropped",
            s.frames_sent, s.frames_recv, s.accepted, s.reconnects, s.dropped_backpressure
        );
    }
    if !report.complete {
        eprintln!(
            "node {}: --expect {} not met within {} ms",
            args.id,
            args.expect.unwrap_or(0),
            args.run_ms
        );
        std::process::exit(1);
    }
}

/// `urb topic <op>`: one-shot lifecycle control client (DESIGN.md §15).
/// Connects to a running `urb node` at `--addr`, sends one control-only
/// frame, and exits. The node applies the operation and gossips it to
/// the rest of the cluster. Exit codes: 0 = sent, 2 = connect/send
/// failure (the daemon's config-error convention).
pub fn topic_cmd(args: crate::args::TopicArgs) {
    use crate::args::TopicOp;
    use urb_types::{TopicControl, TopicId};
    let topic = TopicId(args.topic);
    let ctl = match args.op {
        TopicOp::Create => {
            let (algorithm, param) = args.algorithm.to_wire();
            TopicControl::Create {
                topic,
                algorithm,
                param,
            }
        }
        TopicOp::Retire => TopicControl::Retire { topic },
        TopicOp::Subscribe => TopicControl::Subscribe { topic },
        TopicOp::Unsubscribe => TopicControl::Unsubscribe { topic },
    };
    match urb_runtime::send_control(&args.addr, ctl) {
        Ok(()) => {
            let verb = match args.op {
                TopicOp::Create => "create",
                TopicOp::Retire => "retire",
                TopicOp::Subscribe => "subscribe",
                TopicOp::Unsubscribe => "unsubscribe",
            };
            println!("topic {}: {verb} sent to {}", args.topic, args.addr);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// One child's contribution to the cluster verdict.
pub struct ChildVerdict {
    /// Node id (the child's `--id`).
    pub id: usize,
    /// Child process exited 0.
    pub exit_ok: bool,
    /// The child reported its `--expect` deliveries met.
    pub complete: bool,
    /// Live topic instances at report time, from the child's
    /// `topics_live` field (the dynamic control plane, DESIGN.md §15).
    pub topics_live: u64,
    /// Retired-and-reclaimed instances, from `topics_reclaimed`.
    pub topics_reclaimed: u64,
    /// Per-topic delivered payload sets parsed from the child's report.
    pub per_topic: Vec<std::collections::BTreeSet<String>>,
}

/// The JSON body of the cluster report (split out for tests). Rolls the
/// per-node topic-lifecycle counters — `topics_live` / `topics_reclaimed`
/// from each child's node report, which earlier envelopes silently
/// dropped — into per-node rows AND cluster-wide sums.
#[allow(clippy::too_many_arguments)]
pub fn cluster_report_body(
    n: usize,
    algorithm: urb_core::Algorithm,
    topics: u32,
    msgs: usize,
    expect: usize,
    verdicts: &[ChildVerdict],
    topic_ok: &[bool],
    parity_ok: bool,
) -> String {
    use std::fmt::Write as _;
    let live: u64 = verdicts.iter().map(|v| v.topics_live).sum();
    let reclaimed: u64 = verdicts.iter().map(|v| v.topics_reclaimed).sum();
    let mut body = String::with_capacity(512);
    body.push_str("{\n");
    let _ = writeln!(body, "  \"n\": {n},");
    let _ = writeln!(body, "  \"algorithm\": \"{}\",", algorithm.name());
    let _ = writeln!(body, "  \"topics\": {topics},");
    let _ = writeln!(body, "  \"msgs_per_node\": {msgs},");
    let _ = writeln!(body, "  \"expected_per_topic\": {expect},");
    let _ = writeln!(body, "  \"topics_live\": {live},");
    let _ = writeln!(body, "  \"topics_reclaimed\": {reclaimed},");
    body.push_str("  \"nodes\": [\n");
    for (i, v) in verdicts.iter().enumerate() {
        let _ = write!(
            body,
            "    {{\"id\": {}, \"exit_ok\": {}, \"complete\": {}, \
             \"topics_live\": {}, \"topics_reclaimed\": {}}}",
            v.id, v.exit_ok, v.complete, v.topics_live, v.topics_reclaimed
        );
        body.push_str(if i + 1 < verdicts.len() { ",\n" } else { "\n" });
    }
    body.push_str("  ],\n");
    body.push_str("  \"per_topic\": [\n");
    for (topic, ok) in topic_ok.iter().enumerate() {
        let _ = write!(body, "    {{\"topic\": {topic}, \"ok\": {ok}}}");
        body.push_str(if topic + 1 < topic_ok.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    body.push_str("  ],\n");
    let _ = writeln!(body, "  \"verdict\": {parity_ok}");
    body.push('}');
    body
}

/// `urb cluster --local N`: reserve N loopback ports, spawn N `urb node`
/// children on them, wait for all, and check every node delivered the
/// full expected payload set on every topic. Exit codes: 0 = all
/// verdicts pass, 1 = a node failed or a delivery set diverged, 2 = bad
/// config / spawn failure.
pub fn cluster_cmd(args: ClusterArgs) {
    let n = args.local;
    // Reserve concrete loopback ports by binding ephemeral listeners,
    // recording their addresses, then releasing them for the children.
    // (The standard reserve-then-rebind pattern; the race window is
    // harmless on a workstation/CI loopback.)
    let addrs: Vec<String> = {
        let listeners: Vec<std::net::TcpListener> = (0..n)
            .map(|_| {
                std::net::TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
                    eprintln!("error: cannot reserve a loopback port: {e}");
                    std::process::exit(2);
                })
            })
            .collect();
        listeners
            .iter()
            .map(|l| {
                l.local_addr()
                    .expect("bound listener has an address")
                    .to_string()
            })
            .collect()
    };
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("error: cannot locate the urb binary: {e}");
        std::process::exit(2);
    });
    let expect = n * args.msgs;
    let addr_list = addrs.join(",");
    let mut children = Vec::with_capacity(n);
    for id in 0..n {
        let child = std::process::Command::new(&exe)
            .args([
                "node",
                "--id",
                &id.to_string(),
                "--addrs",
                &addr_list,
                "--alg",
                alg_flag(args.algorithm),
                "--topics",
                &args.topics.to_string(),
                "--msgs",
                &args.msgs.to_string(),
                "--seed",
                &args.seed.to_string(),
                "--expect",
                &expect.to_string(),
                "--run-ms",
                &args.run_ms.to_string(),
                "--json",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("error: cannot spawn node {id}: {e}");
                std::process::exit(2);
            });
        children.push(child);
    }
    // Every child self-terminates by its --run-ms deadline, so a plain
    // wait is already bounded.
    let mut verdicts = Vec::with_capacity(n);
    for (id, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().unwrap_or_else(|e| {
            eprintln!("error: node {id} did not exit cleanly: {e}");
            std::process::exit(2);
        });
        let text = String::from_utf8_lossy(&out.stdout);
        let mut verdict = ChildVerdict {
            id,
            exit_ok: out.status.success(),
            complete: false,
            topics_live: 0,
            topics_reclaimed: 0,
            per_topic: vec![std::collections::BTreeSet::new(); args.topics as usize],
        };
        if let Ok(v) = serde_json::from_str(text.trim()) {
            verdict.complete = v["data"]["complete"].as_bool().unwrap_or(false);
            verdict.topics_live = v["data"]["topics_live"].as_u64().unwrap_or(0);
            verdict.topics_reclaimed = v["data"]["topics_reclaimed"].as_u64().unwrap_or(0);
            if let Some(rows) = v["data"]["per_topic"].as_array() {
                for row in rows {
                    let topic = row["topic"].as_u64().unwrap_or(u64::MAX) as usize;
                    if topic >= verdict.per_topic.len() {
                        continue;
                    }
                    if let Some(payloads) = row["payloads"].as_array() {
                        verdict.per_topic[topic] = payloads
                            .iter()
                            .filter_map(|p| p.as_str().map(String::from))
                            .collect();
                    }
                }
            }
        }
        verdicts.push(verdict);
    }

    // Per-topic verdict: every node's delivered set equals the full
    // expected workload set — URB validity + uniform agreement, observed
    // over real sockets.
    let mut topic_ok = Vec::with_capacity(args.topics as usize);
    for topic in 0..args.topics {
        let want = urb_runtime::expected_payloads(n, urb_types::TopicId(topic), args.msgs);
        let ok = verdicts.iter().all(|v| v.per_topic[topic as usize] == want);
        topic_ok.push(ok);
    }
    let nodes_ok = verdicts.iter().all(|v| v.exit_ok && v.complete);
    let parity_ok = nodes_ok && topic_ok.iter().all(|&ok| ok);

    if args.json {
        let body = cluster_report_body(
            n,
            args.algorithm,
            args.topics,
            args.msgs,
            expect,
            &verdicts,
            &topic_ok,
            parity_ok,
        );
        println!(
            "{}",
            report::envelope(CLUSTER_REPORT_KIND, args.seed, &body)
        );
    } else {
        println!(
            "cluster: {} loopback nodes ({}), {} topics × {} msgs/node",
            n,
            args.algorithm.name(),
            args.topics,
            args.msgs
        );
        for v in &verdicts {
            println!(
                "  node {}: exit {}, {}, {} live / {} reclaimed topics",
                v.id,
                if v.exit_ok { "ok" } else { "FAIL" },
                if v.complete { "complete" } else { "INCOMPLETE" },
                v.topics_live,
                v.topics_reclaimed
            );
        }
        for (topic, ok) in topic_ok.iter().enumerate() {
            println!(
                "  topic {topic}: {}",
                if *ok {
                    "all nodes delivered the full set"
                } else {
                    "DELIVERY SETS DIVERGED"
                }
            );
        }
        println!(
            "cluster verdict: {}",
            if parity_ok { "PASS" } else { "FAIL" }
        );
    }
    if !parity_ok {
        std::process::exit(1);
    }
}

/// `urb run` used by tests: returns the summary instead of printing.
pub fn run_for_test(args: &RunArgs) -> RunSummary {
    let out = urb_sim::run(build_config(args));
    RunSummary::from_outcome(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::RunArgs;

    #[test]
    fn build_config_maps_flags() {
        let args = RunArgs {
            n: 7,
            loss: 0.0,
            crashes: 2,
            fd: Some(FdChoice::None),
            ..RunArgs::default()
        };
        let cfg = build_config(&args);
        assert_eq!(cfg.n, 7);
        assert!(matches!(cfg.loss, LossModel::None));
        assert!(matches!(cfg.fd, FdKind::None));
        assert_eq!(cfg.crashes.faulty_count(), 2);
        assert!(cfg.stop_on_full_delivery);
    }

    #[test]
    fn burst_flag_switches_model() {
        let args = RunArgs {
            burst: true,
            loss: 0.2,
            ..RunArgs::default()
        };
        let cfg = build_config(&args);
        assert!(matches!(cfg.loss, LossModel::Burst { .. }));
    }

    #[test]
    fn trace_flag_enables_recording() {
        let args = RunArgs {
            trace: Some("/tmp/x.json".into()),
            ..RunArgs::default()
        };
        let cfg = build_config(&args);
        assert!(cfg.trace.enabled);
    }

    #[test]
    fn run_for_test_produces_clean_verdict() {
        let args = RunArgs {
            n: 4,
            msgs: 1,
            loss: 0.1,
            ..RunArgs::default()
        };
        let s = run_for_test(&args);
        assert!(s.validity_ok && s.agreement_ok && s.integrity_ok);
        assert_eq!(s.deliveries, 4);
    }

    #[test]
    fn load_scenario_compiles_corpus_files_with_overrides() {
        // Round-trip through a real file, as the subcommand does.
        let (_, text) = urb_sim::spec::corpus()
            .into_iter()
            .find(|(name, _)| *name == "partition_heal")
            .unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join("urb_cli_test_partition_heal.toml");
        std::fs::write(&path, text).unwrap();
        let args = ScenarioArgs {
            path: path.to_string_lossy().into_owned(),
            seed: Some(999),
            trace: Some("/tmp/unused.json".into()),
            json: false,
        };
        let (spec, cfg) = load_scenario(&args).unwrap();
        assert_eq!(spec.name, "partition_heal");
        assert_eq!(spec.seed, 999, "CLI seed override wins");
        assert_eq!(cfg.seed, 999);
        assert!(cfg.trace.enabled, "--trace enables recording");
        let out = urb_sim::run(cfg);
        assert!(spec.expect.check(&out).is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_scenario_reports_missing_file_and_bad_spec() {
        let args = ScenarioArgs {
            path: "/nonexistent/spec.toml".into(),
            seed: None,
            trace: None,
            json: false,
        };
        assert!(load_scenario(&args).unwrap_err().contains("cannot read"));
        let path = std::env::temp_dir().join("urb_cli_test_bad.toml");
        std::fs::write(&path, "name = \"bad\"\nn = 4\nwat = 1\n").unwrap();
        let args = ScenarioArgs {
            path: path.to_string_lossy().into_owned(),
            seed: None,
            trace: None,
            json: false,
        };
        assert!(load_scenario(&args).unwrap_err().contains("unknown key"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bench_config_maps_flags() {
        let cfg = build_trajectory_config(&BenchArgs::default());
        assert_eq!(cfg.ids.len(), 23, "all experiments by default");
        assert_eq!(cfg.seeds_per_cell, 3);
        assert_eq!(cfg.load_topics, None, "pinned open-loop defaults");
        assert_eq!(cfg.rates, None);
        let cfg = build_trajectory_config(&BenchArgs {
            seed: 9,
            seeds: 2,
            experiments: Some(vec!["e1".into(), "e4".into()]),
            load_topics: Some(vec![1, 64]),
            rates: Some(vec![500, 9_000]),
            ..BenchArgs::default()
        });
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.seeds_per_cell, 2);
        assert_eq!(cfg.ids, vec!["e1".to_string(), "e4".to_string()]);
        assert_eq!(cfg.load_topics, Some(vec![1, 64]));
        assert_eq!(cfg.rates, Some(vec![500, 9_000]));
    }

    #[test]
    fn cluster_report_rolls_up_topic_lifecycle_counters() {
        // The fix pinned here: the cluster envelope used to drop the
        // node reports' topics_live / topics_reclaimed on the floor.
        // Both must now surface per node AND as cluster-wide sums.
        let verdicts = vec![
            ChildVerdict {
                id: 0,
                exit_ok: true,
                complete: true,
                topics_live: 3,
                topics_reclaimed: 1,
                per_topic: vec![],
            },
            ChildVerdict {
                id: 1,
                exit_ok: true,
                complete: true,
                topics_live: 3,
                topics_reclaimed: 2,
                per_topic: vec![],
            },
        ];
        let body = cluster_report_body(
            2,
            urb_core::Algorithm::Majority,
            3,
            1,
            2,
            &verdicts,
            &[true, true, true],
            true,
        );
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["topics_live"].as_u64(), Some(6), "sum across nodes");
        assert_eq!(v["topics_reclaimed"].as_u64(), Some(3));
        let nodes = v["nodes"].as_array().unwrap();
        assert_eq!(nodes[0]["topics_live"].as_u64(), Some(3));
        assert_eq!(nodes[0]["topics_reclaimed"].as_u64(), Some(1));
        assert_eq!(nodes[1]["topics_reclaimed"].as_u64(), Some(2));
        assert_eq!(v["verdict"].as_bool(), Some(true));
        // The body still nests cleanly inside the shared envelope.
        let wrapped = report::envelope(CLUSTER_REPORT_KIND, 7, &body);
        let w: serde_json::Value = serde_json::from_str(&wrapped).unwrap();
        assert_eq!(w["data"]["topics_live"].as_u64(), Some(6));
    }

    #[test]
    fn json_outputs_share_one_envelope() {
        // `urb run --json`, `urb scenario --json` and `urb bench --json`
        // all wrap their bodies in the same envelope; this pins the run/
        // scenario side (the trajectory side is pinned in urb-bench).
        let out = urb_sim::run(scenario::clean(3, urb_core::Algorithm::Majority, 1, 7));
        let summary = RunSummary::from_outcome(&out);
        let json = report::envelope(RUN_SUMMARY_KIND, 7, &summary.to_json());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["schema_version"], 1u64);
        assert_eq!(v["kind"], RUN_SUMMARY_KIND);
        assert_eq!(v["seed"], 7u64);
        assert!(v["git_rev"].as_str().is_some());
        assert_eq!(v["data"]["n"], 3u64);
        assert_eq!(v["data"]["agreement_ok"], true);
    }

    #[test]
    fn topics_flag_round_robins_workload_and_reports_per_topic_rows() {
        let args = RunArgs {
            n: 4,
            topics: 2,
            msgs: 4,
            loss: 0.0,
            ..RunArgs::default()
        };
        let cfg = build_config(&args);
        assert_eq!(cfg.topics, 2);
        let on_t1 = cfg
            .broadcasts
            .iter()
            .filter(|b| b.topic == urb_types::TopicId(1))
            .count();
        assert_eq!(on_t1, 2, "4 msgs round-robin 2 topics");
        let out = urb_sim::run(cfg);
        let s = RunSummary::from_outcome(&out);
        assert_eq!(s.per_topic.len(), 2);
        assert!(s.per_topic.iter().all(|t| t.agreement_ok));
        assert_eq!(s.per_topic[1].deliveries, 8, "2 msgs × 4 procs");
        // The per-topic rows ride the shared envelope like everything else.
        let json = report::envelope(RUN_SUMMARY_KIND, 1, &s.to_json());
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["data"]["per_topic"].as_array().unwrap().len(), 2);
        assert_eq!(v["data"]["per_topic"][1]["topic"], 1u64);
        assert_eq!(v["data"]["per_topic"][1]["validity_ok"], true);
        assert!(v["data"]["frames_sent"].as_u64().unwrap() > 0);
    }

    #[test]
    fn theorem2_body_wears_the_envelope() {
        let arm1 = urb_sim::run(scenario::theorem2_partition(6, 42));
        let arm2 = urb_sim::run(scenario::theorem2_control(6, 42));
        let json = report::envelope(THEOREM2_KIND, 42, &theorem2_body(6, &arm1, &arm2));
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["kind"], THEOREM2_KIND);
        assert_eq!(v["seed"], 42u64);
        assert_eq!(v["data"]["n"], 6u64);
        assert_eq!(v["data"]["threshold"], 3u64);
        assert_eq!(v["data"]["arm1_agreement_ok"], false);
        assert_eq!(v["data"]["arm2_blocked"], true);
        assert_eq!(v["data"]["demonstrated"], true);
    }

    #[test]
    fn quiescent_default_algorithm_reports_audit() {
        let args = RunArgs::default(); // quiescent + oracle by default
        let s = run_for_test(&args);
        assert_eq!(s.fd_audit_ok, Some(true));
    }
}
