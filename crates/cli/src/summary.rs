//! Machine-readable run summary (`urb run --json`).

use serde::Serialize;
use urb_sim::RunOutcome;

/// One topic's verdict row inside a [`RunSummary`] (DESIGN.md §12).
#[derive(Debug, Clone, Serialize)]
pub struct TopicSummary {
    /// Topic id.
    pub topic: u32,
    /// Broadcasts issued on this topic.
    pub broadcasts: usize,
    /// Deliveries produced on this topic.
    pub deliveries: usize,
    /// Validity verdict for this topic's instance.
    pub validity_ok: bool,
    /// Uniform-agreement verdict.
    pub agreement_ok: bool,
    /// Uniform-integrity verdict.
    pub integrity_ok: bool,
}

/// Everything a script needs from one run, JSON-serializable.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// System size.
    pub n: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Plan-correct process indices.
    pub correct: Vec<usize>,
    /// Number of URB broadcasts issued.
    pub broadcasts: usize,
    /// Number of URB deliveries (across all processes).
    pub deliveries: usize,
    /// Fraction of deliveries that were "fast" (§III remark).
    pub fast_fraction: f64,
    /// URB property verdicts.
    pub validity_ok: bool,
    /// Uniform agreement verdict.
    pub agreement_ok: bool,
    /// Uniform integrity verdict.
    pub integrity_ok: bool,
    /// Violation messages (empty when all properties hold).
    pub violations: Vec<String>,
    /// Oracle audit: `None` when not applicable.
    pub fd_audit_ok: Option<bool>,
    /// Total MSG+ACK transmissions.
    pub protocol_transmissions: u64,
    /// Transmissions dropped by channels.
    pub dropped: u64,
    /// Median delivery latency in ticks (None if no deliveries).
    pub median_latency: Option<u64>,
    /// 99th-percentile delivery latency.
    pub p99_latency: Option<u64>,
    /// Did the run end quiescent?
    pub quiescent: bool,
    /// Last MSG/ACK transmission instant.
    pub last_protocol_send: u64,
    /// Simulated end time.
    pub ended_at: u64,
    /// Determinism hash of the full event sequence.
    pub trace_hash: u64,
    /// Frames offered to channels (the mux plane's routing unit).
    pub frames_sent: u64,
    /// Per-topic verdict rows, ascending by topic (exactly one row on
    /// single-topic runs).
    pub per_topic: Vec<TopicSummary>,
}

impl RunSummary {
    /// Projects a [`RunOutcome`] into its summary.
    pub fn from_outcome(out: &RunOutcome) -> Self {
        RunSummary {
            n: out.n,
            algorithm: out.algorithm.to_string(),
            correct: (0..out.n).filter(|&i| out.correct[i]).collect(),
            broadcasts: out.metrics.broadcasts.len(),
            deliveries: out.metrics.deliveries.len(),
            fast_fraction: out.metrics.fast_delivery_fraction(),
            validity_ok: out.report.validity.ok(),
            agreement_ok: out.report.agreement.ok(),
            integrity_ok: out.report.integrity.ok(),
            violations: out
                .report
                .violations()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            fd_audit_ok: out.fd_audit.as_ref().map(|r| r.is_ok()),
            protocol_transmissions: out.metrics.protocol_sends(),
            dropped: out.metrics.dropped.iter().sum(),
            median_latency: out.metrics.latency_percentile(50.0),
            p99_latency: out.metrics.latency_percentile(99.0),
            quiescent: out.quiescent,
            last_protocol_send: out.last_protocol_send,
            ended_at: out.metrics.ended_at,
            trace_hash: out.metrics.trace_hash,
            frames_sent: out.metrics.frames_sent,
            per_topic: out
                .per_topic
                .iter()
                .map(|t| TopicSummary {
                    topic: t.topic.0,
                    broadcasts: t.broadcasts,
                    deliveries: t.deliveries,
                    validity_ok: t.report.validity.ok(),
                    agreement_ok: t.report.agreement.ok(),
                    integrity_ok: t.report.integrity.ok(),
                })
                .collect(),
        }
    }

    /// Pretty JSON rendering.
    ///
    /// Hand-rolled emitter (the offline `serde` shim's derives generate
    /// nothing — see `vendor/README.md`); field names and layout match
    /// what `serde_json::to_string_pretty` would produce.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn num_list(v: &[usize]) -> String {
            let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
            format!("[{}]", items.join(", "))
        }
        fn opt_u64(v: Option<u64>) -> String {
            v.map_or("null".to_string(), |x| x.to_string())
        }
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", serde_json::escape(v)))
            .collect();
        let mut out = String::with_capacity(640);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"n\": {},", self.n);
        let _ = writeln!(
            out,
            "  \"algorithm\": \"{}\",",
            serde_json::escape(&self.algorithm)
        );
        let _ = writeln!(out, "  \"correct\": {},", num_list(&self.correct));
        let _ = writeln!(out, "  \"broadcasts\": {},", self.broadcasts);
        let _ = writeln!(out, "  \"deliveries\": {},", self.deliveries);
        let _ = writeln!(out, "  \"fast_fraction\": {:?},", self.fast_fraction);
        let _ = writeln!(out, "  \"validity_ok\": {},", self.validity_ok);
        let _ = writeln!(out, "  \"agreement_ok\": {},", self.agreement_ok);
        let _ = writeln!(out, "  \"integrity_ok\": {},", self.integrity_ok);
        let _ = writeln!(out, "  \"violations\": [{}],", violations.join(", "));
        let _ = writeln!(
            out,
            "  \"fd_audit_ok\": {},",
            self.fd_audit_ok
                .map_or("null".to_string(), |b| b.to_string())
        );
        let _ = writeln!(
            out,
            "  \"protocol_transmissions\": {},",
            self.protocol_transmissions
        );
        let _ = writeln!(out, "  \"dropped\": {},", self.dropped);
        let _ = writeln!(
            out,
            "  \"median_latency\": {},",
            opt_u64(self.median_latency)
        );
        let _ = writeln!(out, "  \"p99_latency\": {},", opt_u64(self.p99_latency));
        let _ = writeln!(out, "  \"quiescent\": {},", self.quiescent);
        let _ = writeln!(
            out,
            "  \"last_protocol_send\": {},",
            self.last_protocol_send
        );
        let _ = writeln!(out, "  \"ended_at\": {},", self.ended_at);
        let _ = writeln!(out, "  \"trace_hash\": {},", self.trace_hash);
        let _ = writeln!(out, "  \"frames_sent\": {},", self.frames_sent);
        let rows: Vec<String> = self
            .per_topic
            .iter()
            .map(|t| {
                format!(
                    "    {{\"topic\": {}, \"broadcasts\": {}, \"deliveries\": {}, \
                     \"validity_ok\": {}, \"agreement_ok\": {}, \"integrity_ok\": {}}}",
                    t.topic,
                    t.broadcasts,
                    t.deliveries,
                    t.validity_ok,
                    t.agreement_ok,
                    t.integrity_ok
                )
            })
            .collect();
        if rows.is_empty() {
            out.push_str("  \"per_topic\": []\n");
        } else {
            let _ = writeln!(out, "  \"per_topic\": [\n{}\n  ]", rows.join(",\n"));
        }
        out.push('}');
        out
    }

    /// Human rendering (the default CLI output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "run: n={} algorithm={} correct={:?}",
            self.n, self.algorithm, self.correct
        );
        let _ = writeln!(
            s,
            "workload: {} broadcasts → {} deliveries ({:.1}% fast)",
            self.broadcasts,
            self.deliveries,
            self.fast_fraction * 100.0
        );
        let _ = writeln!(
            s,
            "URB: validity={} agreement={} integrity={}{}",
            self.validity_ok,
            self.agreement_ok,
            self.integrity_ok,
            match self.fd_audit_ok {
                Some(ok) => format!(" fd-audit={ok}"),
                None => String::new(),
            }
        );
        for v in &self.violations {
            let _ = writeln!(s, "  violation: {v}");
        }
        if let (Some(med), Some(p99)) = (self.median_latency, self.p99_latency) {
            let _ = writeln!(s, "latency: median={med} p99={p99} ticks");
        }
        let _ = writeln!(
            s,
            "traffic: {} MSG/ACK transmissions, {} dropped",
            self.protocol_transmissions, self.dropped
        );
        let _ = writeln!(
            s,
            "quiescent: {} (last protocol send t={}, run ended t={})",
            self.quiescent, self.last_protocol_send, self.ended_at
        );
        if self.per_topic.len() > 1 {
            for t in &self.per_topic {
                let _ = writeln!(
                    s,
                    "topic {}: {} broadcasts → {} deliveries, validity={} agreement={} integrity={}",
                    t.topic,
                    t.broadcasts,
                    t.deliveries,
                    t.validity_ok,
                    t.agreement_ok,
                    t.integrity_ok
                );
            }
        }
        let _ = writeln!(s, "trace hash: {:#018x}", self.trace_hash);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urb_core::Algorithm;
    use urb_sim::scenario;

    #[test]
    fn summary_projects_outcome() {
        let out = urb_sim::run(scenario::clean(3, Algorithm::Majority, 1, 7));
        let s = RunSummary::from_outcome(&out);
        assert_eq!(s.n, 3);
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.deliveries, 3);
        assert!(s.validity_ok && s.agreement_ok && s.integrity_ok);
        assert!(s.violations.is_empty());
        assert_eq!(s.correct, vec![0, 1, 2]);
    }

    #[test]
    fn json_roundtrips_and_text_renders() {
        let out = urb_sim::run(scenario::clean(3, Algorithm::Quiescent, 1, 9));
        let s = RunSummary::from_outcome(&out);
        let json = s.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["n"], 3);
        assert_eq!(v["agreement_ok"], true);
        let text = s.render_text();
        assert!(text.contains("URB: validity=true"));
        assert!(text.contains("trace hash"));
    }
}
